/root/repo/target/debug/deps/rand-be4e7a389c6379e0.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-be4e7a389c6379e0.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
