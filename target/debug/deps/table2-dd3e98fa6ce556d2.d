/root/repo/target/debug/deps/table2-dd3e98fa6ce556d2.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-dd3e98fa6ce556d2: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
