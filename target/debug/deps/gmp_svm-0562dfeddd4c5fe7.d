/root/repo/target/debug/deps/gmp_svm-0562dfeddd4c5fe7.d: crates/core/src/lib.rs crates/core/src/cv.rs crates/core/src/model.rs crates/core/src/model_selection.rs crates/core/src/oneclass.rs crates/core/src/ovo.rs crates/core/src/ovr.rs crates/core/src/params.rs crates/core/src/predict.rs crates/core/src/svr.rs crates/core/src/telemetry.rs crates/core/src/trainer.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_svm-0562dfeddd4c5fe7.rmeta: crates/core/src/lib.rs crates/core/src/cv.rs crates/core/src/model.rs crates/core/src/model_selection.rs crates/core/src/oneclass.rs crates/core/src/ovo.rs crates/core/src/ovr.rs crates/core/src/params.rs crates/core/src/predict.rs crates/core/src/svr.rs crates/core/src/telemetry.rs crates/core/src/trainer.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cv.rs:
crates/core/src/model.rs:
crates/core/src/model_selection.rs:
crates/core/src/oneclass.rs:
crates/core/src/ovo.rs:
crates/core/src/ovr.rs:
crates/core/src/params.rs:
crates/core/src/predict.rs:
crates/core/src/svr.rs:
crates/core/src/telemetry.rs:
crates/core/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
