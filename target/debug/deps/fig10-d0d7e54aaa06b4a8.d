/root/repo/target/debug/deps/fig10-d0d7e54aaa06b4a8.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-d0d7e54aaa06b4a8: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
