/root/repo/target/debug/deps/bench_buffer-4713f81b0d223efc.d: crates/bench/benches/bench_buffer.rs

/root/repo/target/debug/deps/bench_buffer-4713f81b0d223efc: crates/bench/benches/bench_buffer.rs

crates/bench/benches/bench_buffer.rs:
