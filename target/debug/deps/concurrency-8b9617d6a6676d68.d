/root/repo/target/debug/deps/concurrency-8b9617d6a6676d68.d: crates/core/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-8b9617d6a6676d68: crates/core/tests/concurrency.rs

crates/core/tests/concurrency.rs:
