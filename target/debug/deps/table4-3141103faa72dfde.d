/root/repo/target/debug/deps/table4-3141103faa72dfde.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-3141103faa72dfde: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
