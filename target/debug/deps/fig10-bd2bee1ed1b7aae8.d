/root/repo/target/debug/deps/fig10-bd2bee1ed1b7aae8.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-bd2bee1ed1b7aae8.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
