/root/repo/target/debug/deps/gmp_integration-0d933ca954d9d6a1.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_integration-0d933ca954d9d6a1.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
