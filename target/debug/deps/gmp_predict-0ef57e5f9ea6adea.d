/root/repo/target/debug/deps/gmp_predict-0ef57e5f9ea6adea.d: crates/cli/src/bin/gmp_predict.rs

/root/repo/target/debug/deps/gmp_predict-0ef57e5f9ea6adea: crates/cli/src/bin/gmp_predict.rs

crates/cli/src/bin/gmp_predict.rs:
