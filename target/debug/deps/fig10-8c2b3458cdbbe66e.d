/root/repo/target/debug/deps/fig10-8c2b3458cdbbe66e.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-8c2b3458cdbbe66e: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
