/root/repo/target/debug/deps/proptest_csr-1b876cc553da46c3.d: crates/sparse/tests/proptest_csr.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_csr-1b876cc553da46c3.rmeta: crates/sparse/tests/proptest_csr.rs Cargo.toml

crates/sparse/tests/proptest_csr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
