/root/repo/target/debug/deps/proptest_csr-dd913292b6c7087f.d: crates/sparse/tests/proptest_csr.rs

/root/repo/target/debug/deps/proptest_csr-dd913292b6c7087f: crates/sparse/tests/proptest_csr.rs

crates/sparse/tests/proptest_csr.rs:
