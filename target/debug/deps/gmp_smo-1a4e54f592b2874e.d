/root/repo/target/debug/deps/gmp_smo-1a4e54f592b2874e.d: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs

/root/repo/target/debug/deps/libgmp_smo-1a4e54f592b2874e.rlib: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs

/root/repo/target/debug/deps/libgmp_smo-1a4e54f592b2874e.rmeta: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs

crates/smo/src/lib.rs:
crates/smo/src/batched.rs:
crates/smo/src/classic.rs:
crates/smo/src/common.rs:
crates/smo/src/decision.rs:
