/root/repo/target/debug/deps/gmp_train-6ed769278cc8e16c.d: crates/cli/src/bin/gmp_train.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_train-6ed769278cc8e16c.rmeta: crates/cli/src/bin/gmp_train.rs Cargo.toml

crates/cli/src/bin/gmp_train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
