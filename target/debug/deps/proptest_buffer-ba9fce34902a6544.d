/root/repo/target/debug/deps/proptest_buffer-ba9fce34902a6544.d: crates/kernel/tests/proptest_buffer.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_buffer-ba9fce34902a6544.rmeta: crates/kernel/tests/proptest_buffer.rs Cargo.toml

crates/kernel/tests/proptest_buffer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
