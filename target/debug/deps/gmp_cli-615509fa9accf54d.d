/root/repo/target/debug/deps/gmp_cli-615509fa9accf54d.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/gmp_cli-615509fa9accf54d: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
