/root/repo/target/debug/deps/bench_predict-43045d04d675acc4.d: crates/bench/benches/bench_predict.rs Cargo.toml

/root/repo/target/debug/deps/libbench_predict-43045d04d675acc4.rmeta: crates/bench/benches/bench_predict.rs Cargo.toml

crates/bench/benches/bench_predict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
