/root/repo/target/debug/deps/gmp_gpusim-a526f24b5e0d7d1b.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs

/root/repo/target/debug/deps/libgmp_gpusim-a526f24b5e0d7d1b.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs

/root/repo/target/debug/deps/libgmp_gpusim-a526f24b5e0d7d1b.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/cost.rs:
crates/gpu-sim/src/exec.rs:
crates/gpu-sim/src/memory.rs:
crates/gpu-sim/src/pool.rs:
crates/gpu-sim/src/reduce.rs:
crates/gpu-sim/src/stats.rs:
