/root/repo/target/debug/deps/gmp_bench-b20f3011b394c856.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_bench-b20f3011b394c856.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
