/root/repo/target/debug/deps/table4-6473cae669ca020c.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-6473cae669ca020c: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
