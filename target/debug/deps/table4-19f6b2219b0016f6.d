/root/repo/target/debug/deps/table4-19f6b2219b0016f6.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-19f6b2219b0016f6: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
