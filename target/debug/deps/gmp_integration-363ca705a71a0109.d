/root/repo/target/debug/deps/gmp_integration-363ca705a71a0109.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/gmp_integration-363ca705a71a0109: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
