/root/repo/target/debug/deps/fig4_5-1476dcb401a1b049.d: crates/bench/src/bin/fig4_5.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_5-1476dcb401a1b049.rmeta: crates/bench/src/bin/fig4_5.rs Cargo.toml

crates/bench/src/bin/fig4_5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
