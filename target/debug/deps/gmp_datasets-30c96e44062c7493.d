/root/repo/target/debug/deps/gmp_datasets-30c96e44062c7493.d: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

/root/repo/target/debug/deps/libgmp_datasets-30c96e44062c7493.rlib: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

/root/repo/target/debug/deps/libgmp_datasets-30c96e44062c7493.rmeta: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

crates/datasets/src/lib.rs:
crates/datasets/src/dataset.rs:
crates/datasets/src/libsvm_format.rs:
crates/datasets/src/paper.rs:
crates/datasets/src/preprocess.rs:
crates/datasets/src/synth.rs:
