/root/repo/target/debug/deps/fig4_5-c52e7b9e0fa2bc19.d: crates/bench/src/bin/fig4_5.rs

/root/repo/target/debug/deps/fig4_5-c52e7b9e0fa2bc19: crates/bench/src/bin/fig4_5.rs

crates/bench/src/bin/fig4_5.rs:
