/root/repo/target/debug/deps/gmp_predict-02aaae793573c942.d: crates/cli/src/bin/gmp_predict.rs

/root/repo/target/debug/deps/gmp_predict-02aaae793573c942: crates/cli/src/bin/gmp_predict.rs

crates/cli/src/bin/gmp_predict.rs:
