/root/repo/target/debug/deps/bench_rowbatch-f8bd61b78d2ff363.d: crates/bench/benches/bench_rowbatch.rs

/root/repo/target/debug/deps/bench_rowbatch-f8bd61b78d2ff363: crates/bench/benches/bench_rowbatch.rs

crates/bench/benches/bench_rowbatch.rs:
