/root/repo/target/debug/deps/table2-bab6dfce2c4948ab.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-bab6dfce2c4948ab: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
