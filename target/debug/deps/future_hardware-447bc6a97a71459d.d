/root/repo/target/debug/deps/future_hardware-447bc6a97a71459d.d: crates/bench/src/bin/future_hardware.rs

/root/repo/target/debug/deps/future_hardware-447bc6a97a71459d: crates/bench/src/bin/future_hardware.rs

crates/bench/src/bin/future_hardware.rs:
