/root/repo/target/debug/deps/fig8-2e0174367240aa46.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-2e0174367240aa46: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
