/root/repo/target/debug/deps/table2-3329f50f1db3f7ad.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-3329f50f1db3f7ad: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
