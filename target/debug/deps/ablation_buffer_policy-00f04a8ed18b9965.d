/root/repo/target/debug/deps/ablation_buffer_policy-00f04a8ed18b9965.d: crates/bench/src/bin/ablation_buffer_policy.rs

/root/repo/target/debug/deps/ablation_buffer_policy-00f04a8ed18b9965: crates/bench/src/bin/ablation_buffer_policy.rs

crates/bench/src/bin/ablation_buffer_policy.rs:
