/root/repo/target/debug/deps/table4-e682b02d48d579be.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-e682b02d48d579be: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
