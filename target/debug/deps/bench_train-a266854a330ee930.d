/root/repo/target/debug/deps/bench_train-a266854a330ee930.d: crates/bench/benches/bench_train.rs

/root/repo/target/debug/deps/bench_train-a266854a330ee930: crates/bench/benches/bench_train.rs

crates/bench/benches/bench_train.rs:
