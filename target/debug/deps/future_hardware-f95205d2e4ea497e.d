/root/repo/target/debug/deps/future_hardware-f95205d2e4ea497e.d: crates/bench/src/bin/future_hardware.rs

/root/repo/target/debug/deps/future_hardware-f95205d2e4ea497e: crates/bench/src/bin/future_hardware.rs

crates/bench/src/bin/future_hardware.rs:
