/root/repo/target/debug/deps/gmp_bench-366f6e7f33e93016.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_bench-366f6e7f33e93016.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
