/root/repo/target/debug/deps/gmp_cli-01b70c8f44e4260f.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_cli-01b70c8f44e4260f.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
