/root/repo/target/debug/deps/memory_budget-1bfbf673cec42a71.d: crates/integration/../../tests/memory_budget.rs

/root/repo/target/debug/deps/memory_budget-1bfbf673cec42a71: crates/integration/../../tests/memory_budget.rs

crates/integration/../../tests/memory_budget.rs:
