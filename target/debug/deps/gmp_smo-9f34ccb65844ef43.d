/root/repo/target/debug/deps/gmp_smo-9f34ccb65844ef43.d: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_smo-9f34ccb65844ef43.rmeta: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs Cargo.toml

crates/smo/src/lib.rs:
crates/smo/src/batched.rs:
crates/smo/src/classic.rs:
crates/smo/src/common.rs:
crates/smo/src/decision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
