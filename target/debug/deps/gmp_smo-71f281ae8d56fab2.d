/root/repo/target/debug/deps/gmp_smo-71f281ae8d56fab2.d: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs

/root/repo/target/debug/deps/gmp_smo-71f281ae8d56fab2: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs

crates/smo/src/lib.rs:
crates/smo/src/batched.rs:
crates/smo/src/classic.rs:
crates/smo/src/common.rs:
crates/smo/src/decision.rs:
