/root/repo/target/debug/deps/fig11_12-e9fb74fda0b39eb8.d: crates/bench/src/bin/fig11_12.rs

/root/repo/target/debug/deps/fig11_12-e9fb74fda0b39eb8: crates/bench/src/bin/fig11_12.rs

crates/bench/src/bin/fig11_12.rs:
