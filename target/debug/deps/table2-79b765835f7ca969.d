/root/repo/target/debug/deps/table2-79b765835f7ca969.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-79b765835f7ca969: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
