/root/repo/target/debug/deps/gmp_bench-02a458a9a39dbde5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gmp_bench-02a458a9a39dbde5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
