/root/repo/target/debug/deps/fig7-1ee0e465bb075822.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-1ee0e465bb075822: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
