/root/repo/target/debug/deps/gmp_svm-ab6e9cf8d76f7e24.d: crates/core/src/lib.rs crates/core/src/cv.rs crates/core/src/model.rs crates/core/src/model_selection.rs crates/core/src/oneclass.rs crates/core/src/ovo.rs crates/core/src/ovr.rs crates/core/src/params.rs crates/core/src/predict.rs crates/core/src/svr.rs crates/core/src/telemetry.rs crates/core/src/trainer.rs

/root/repo/target/debug/deps/libgmp_svm-ab6e9cf8d76f7e24.rlib: crates/core/src/lib.rs crates/core/src/cv.rs crates/core/src/model.rs crates/core/src/model_selection.rs crates/core/src/oneclass.rs crates/core/src/ovo.rs crates/core/src/ovr.rs crates/core/src/params.rs crates/core/src/predict.rs crates/core/src/svr.rs crates/core/src/telemetry.rs crates/core/src/trainer.rs

/root/repo/target/debug/deps/libgmp_svm-ab6e9cf8d76f7e24.rmeta: crates/core/src/lib.rs crates/core/src/cv.rs crates/core/src/model.rs crates/core/src/model_selection.rs crates/core/src/oneclass.rs crates/core/src/ovo.rs crates/core/src/ovr.rs crates/core/src/params.rs crates/core/src/predict.rs crates/core/src/svr.rs crates/core/src/telemetry.rs crates/core/src/trainer.rs

crates/core/src/lib.rs:
crates/core/src/cv.rs:
crates/core/src/model.rs:
crates/core/src/model_selection.rs:
crates/core/src/oneclass.rs:
crates/core/src/ovo.rs:
crates/core/src/ovr.rs:
crates/core/src/params.rs:
crates/core/src/predict.rs:
crates/core/src/svr.rs:
crates/core/src/telemetry.rs:
crates/core/src/trainer.rs:
