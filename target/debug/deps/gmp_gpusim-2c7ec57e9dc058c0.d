/root/repo/target/debug/deps/gmp_gpusim-2c7ec57e9dc058c0.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs

/root/repo/target/debug/deps/libgmp_gpusim-2c7ec57e9dc058c0.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs

/root/repo/target/debug/deps/libgmp_gpusim-2c7ec57e9dc058c0.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/cost.rs:
crates/gpu-sim/src/exec.rs:
crates/gpu-sim/src/memory.rs:
crates/gpu-sim/src/pool.rs:
crates/gpu-sim/src/reduce.rs:
crates/gpu-sim/src/stats.rs:
