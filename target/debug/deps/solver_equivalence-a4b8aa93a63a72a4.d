/root/repo/target/debug/deps/solver_equivalence-a4b8aa93a63a72a4.d: crates/integration/../../tests/solver_equivalence.rs

/root/repo/target/debug/deps/solver_equivalence-a4b8aa93a63a72a4: crates/integration/../../tests/solver_equivalence.rs

crates/integration/../../tests/solver_equivalence.rs:
