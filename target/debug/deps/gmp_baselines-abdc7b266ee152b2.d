/root/repo/target/debug/deps/gmp_baselines-abdc7b266ee152b2.d: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_baselines-abdc7b266ee152b2.rmeta: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/comparators.rs:
crates/baselines/src/uncached.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
