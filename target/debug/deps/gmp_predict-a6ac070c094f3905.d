/root/repo/target/debug/deps/gmp_predict-a6ac070c094f3905.d: crates/cli/src/bin/gmp_predict.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_predict-a6ac070c094f3905.rmeta: crates/cli/src/bin/gmp_predict.rs Cargo.toml

crates/cli/src/bin/gmp_predict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
