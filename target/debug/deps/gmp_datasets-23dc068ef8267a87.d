/root/repo/target/debug/deps/gmp_datasets-23dc068ef8267a87.d: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

/root/repo/target/debug/deps/libgmp_datasets-23dc068ef8267a87.rlib: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

/root/repo/target/debug/deps/libgmp_datasets-23dc068ef8267a87.rmeta: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

crates/datasets/src/lib.rs:
crates/datasets/src/dataset.rs:
crates/datasets/src/libsvm_format.rs:
crates/datasets/src/paper.rs:
crates/datasets/src/preprocess.rs:
crates/datasets/src/synth.rs:
