/root/repo/target/debug/deps/fig9-cf3f5992380da718.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-cf3f5992380da718: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
