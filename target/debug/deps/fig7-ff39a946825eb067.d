/root/repo/target/debug/deps/fig7-ff39a946825eb067.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-ff39a946825eb067: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
