/root/repo/target/debug/deps/gmp_integration-238486f6549c244b.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libgmp_integration-238486f6549c244b.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libgmp_integration-238486f6549c244b.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
