/root/repo/target/debug/deps/fig9-5c10ff70b0bd4493.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-5c10ff70b0bd4493.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
