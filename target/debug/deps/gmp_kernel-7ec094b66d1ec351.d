/root/repo/target/debug/deps/gmp_kernel-7ec094b66d1ec351.d: crates/kernel/src/lib.rs crates/kernel/src/buffer.rs crates/kernel/src/functions.rs crates/kernel/src/oracle.rs crates/kernel/src/rows.rs crates/kernel/src/shared.rs

/root/repo/target/debug/deps/gmp_kernel-7ec094b66d1ec351: crates/kernel/src/lib.rs crates/kernel/src/buffer.rs crates/kernel/src/functions.rs crates/kernel/src/oracle.rs crates/kernel/src/rows.rs crates/kernel/src/shared.rs

crates/kernel/src/lib.rs:
crates/kernel/src/buffer.rs:
crates/kernel/src/functions.rs:
crates/kernel/src/oracle.rs:
crates/kernel/src/rows.rs:
crates/kernel/src/shared.rs:
