/root/repo/target/debug/deps/ablation_buffer_policy-ba9d8c37318ea2a3.d: crates/bench/src/bin/ablation_buffer_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_buffer_policy-ba9d8c37318ea2a3.rmeta: crates/bench/src/bin/ablation_buffer_policy.rs Cargo.toml

crates/bench/src/bin/ablation_buffer_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
