/root/repo/target/debug/deps/ablation_buffer_policy-dc8f19c53d63dc4e.d: crates/bench/src/bin/ablation_buffer_policy.rs

/root/repo/target/debug/deps/ablation_buffer_policy-dc8f19c53d63dc4e: crates/bench/src/bin/ablation_buffer_policy.rs

crates/bench/src/bin/ablation_buffer_policy.rs:
