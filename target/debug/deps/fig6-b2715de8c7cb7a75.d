/root/repo/target/debug/deps/fig6-b2715de8c7cb7a75.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-b2715de8c7cb7a75: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
