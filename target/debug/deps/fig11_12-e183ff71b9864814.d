/root/repo/target/debug/deps/fig11_12-e183ff71b9864814.d: crates/bench/src/bin/fig11_12.rs

/root/repo/target/debug/deps/fig11_12-e183ff71b9864814: crates/bench/src/bin/fig11_12.rs

crates/bench/src/bin/fig11_12.rs:
