/root/repo/target/debug/deps/fig11_12-4a1f07f06bbd90e0.d: crates/bench/src/bin/fig11_12.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_12-4a1f07f06bbd90e0.rmeta: crates/bench/src/bin/fig11_12.rs Cargo.toml

crates/bench/src/bin/fig11_12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
