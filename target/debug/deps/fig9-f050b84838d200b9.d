/root/repo/target/debug/deps/fig9-f050b84838d200b9.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-f050b84838d200b9: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
