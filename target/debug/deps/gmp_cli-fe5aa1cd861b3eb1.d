/root/repo/target/debug/deps/gmp_cli-fe5aa1cd861b3eb1.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libgmp_cli-fe5aa1cd861b3eb1.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libgmp_cli-fe5aa1cd861b3eb1.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
