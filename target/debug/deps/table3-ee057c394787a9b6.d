/root/repo/target/debug/deps/table3-ee057c394787a9b6.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-ee057c394787a9b6: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
