/root/repo/target/debug/deps/gmp_gpusim-2612761501107165.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_gpusim-2612761501107165.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs Cargo.toml

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/cost.rs:
crates/gpu-sim/src/exec.rs:
crates/gpu-sim/src/memory.rs:
crates/gpu-sim/src/pool.rs:
crates/gpu-sim/src/reduce.rs:
crates/gpu-sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
