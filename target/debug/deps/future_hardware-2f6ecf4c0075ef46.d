/root/repo/target/debug/deps/future_hardware-2f6ecf4c0075ef46.d: crates/bench/src/bin/future_hardware.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_hardware-2f6ecf4c0075ef46.rmeta: crates/bench/src/bin/future_hardware.rs Cargo.toml

crates/bench/src/bin/future_hardware.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
