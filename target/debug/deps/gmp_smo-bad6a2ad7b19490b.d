/root/repo/target/debug/deps/gmp_smo-bad6a2ad7b19490b.d: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_smo-bad6a2ad7b19490b.rmeta: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs Cargo.toml

crates/smo/src/lib.rs:
crates/smo/src/batched.rs:
crates/smo/src/classic.rs:
crates/smo/src/common.rs:
crates/smo/src/decision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
