/root/repo/target/debug/deps/bench_q-ffbcf3395caf8e91.d: crates/bench/benches/bench_q.rs

/root/repo/target/debug/deps/bench_q-ffbcf3395caf8e91: crates/bench/benches/bench_q.rs

crates/bench/benches/bench_q.rs:
