/root/repo/target/debug/deps/gmp_kernel-0057675054430b16.d: crates/kernel/src/lib.rs crates/kernel/src/buffer.rs crates/kernel/src/functions.rs crates/kernel/src/oracle.rs crates/kernel/src/rows.rs crates/kernel/src/shared.rs

/root/repo/target/debug/deps/libgmp_kernel-0057675054430b16.rlib: crates/kernel/src/lib.rs crates/kernel/src/buffer.rs crates/kernel/src/functions.rs crates/kernel/src/oracle.rs crates/kernel/src/rows.rs crates/kernel/src/shared.rs

/root/repo/target/debug/deps/libgmp_kernel-0057675054430b16.rmeta: crates/kernel/src/lib.rs crates/kernel/src/buffer.rs crates/kernel/src/functions.rs crates/kernel/src/oracle.rs crates/kernel/src/rows.rs crates/kernel/src/shared.rs

crates/kernel/src/lib.rs:
crates/kernel/src/buffer.rs:
crates/kernel/src/functions.rs:
crates/kernel/src/oracle.rs:
crates/kernel/src/rows.rs:
crates/kernel/src/shared.rs:
