/root/repo/target/debug/deps/fig9-4761a249c38586ab.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-4761a249c38586ab: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
