/root/repo/target/debug/deps/gmp_bench-81aa96c22b7c8062.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgmp_bench-81aa96c22b7c8062.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgmp_bench-81aa96c22b7c8062.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
