/root/repo/target/debug/deps/fig6-58e3332e21c9862c.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-58e3332e21c9862c: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
