/root/repo/target/debug/deps/solver_equivalence-ba176d27e2bc8ce9.d: crates/integration/../../tests/solver_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_equivalence-ba176d27e2bc8ce9.rmeta: crates/integration/../../tests/solver_equivalence.rs Cargo.toml

crates/integration/../../tests/solver_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
