/root/repo/target/debug/deps/alloc_free-621aebb1ba71da52.d: crates/kernel/tests/alloc_free.rs Cargo.toml

/root/repo/target/debug/deps/liballoc_free-621aebb1ba71da52.rmeta: crates/kernel/tests/alloc_free.rs Cargo.toml

crates/kernel/tests/alloc_free.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
