/root/repo/target/debug/deps/gmp_sparse-d4b105c3024922c9.d: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs

/root/repo/target/debug/deps/libgmp_sparse-d4b105c3024922c9.rlib: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs

/root/repo/target/debug/deps/libgmp_sparse-d4b105c3024922c9.rmeta: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs

crates/sparse/src/lib.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/ops.rs:
