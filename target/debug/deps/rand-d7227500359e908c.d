/root/repo/target/debug/deps/rand-d7227500359e908c.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-d7227500359e908c: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
