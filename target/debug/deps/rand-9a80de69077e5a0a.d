/root/repo/target/debug/deps/rand-9a80de69077e5a0a.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-9a80de69077e5a0a.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
