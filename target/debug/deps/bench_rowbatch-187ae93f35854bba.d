/root/repo/target/debug/deps/bench_rowbatch-187ae93f35854bba.d: crates/bench/benches/bench_rowbatch.rs Cargo.toml

/root/repo/target/debug/deps/libbench_rowbatch-187ae93f35854bba.rmeta: crates/bench/benches/bench_rowbatch.rs Cargo.toml

crates/bench/benches/bench_rowbatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
