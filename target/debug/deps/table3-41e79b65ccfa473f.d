/root/repo/target/debug/deps/table3-41e79b65ccfa473f.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-41e79b65ccfa473f: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
