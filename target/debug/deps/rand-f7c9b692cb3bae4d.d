/root/repo/target/debug/deps/rand-f7c9b692cb3bae4d.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f7c9b692cb3bae4d.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f7c9b692cb3bae4d.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
