/root/repo/target/debug/deps/end_to_end-937c5cabb8628fb9.d: crates/integration/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-937c5cabb8628fb9: crates/integration/../../tests/end_to_end.rs

crates/integration/../../tests/end_to_end.rs:
