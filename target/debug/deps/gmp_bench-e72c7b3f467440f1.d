/root/repo/target/debug/deps/gmp_bench-e72c7b3f467440f1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgmp_bench-e72c7b3f467440f1.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgmp_bench-e72c7b3f467440f1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
