/root/repo/target/debug/deps/gmp_sparse-3849e1907ecd91b0.d: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs

/root/repo/target/debug/deps/gmp_sparse-3849e1907ecd91b0: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs

crates/sparse/src/lib.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/ops.rs:
