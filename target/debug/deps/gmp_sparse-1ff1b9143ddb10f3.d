/root/repo/target/debug/deps/gmp_sparse-1ff1b9143ddb10f3.d: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_sparse-1ff1b9143ddb10f3.rmeta: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs Cargo.toml

crates/sparse/src/lib.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
