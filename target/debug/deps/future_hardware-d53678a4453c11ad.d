/root/repo/target/debug/deps/future_hardware-d53678a4453c11ad.d: crates/bench/src/bin/future_hardware.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_hardware-d53678a4453c11ad.rmeta: crates/bench/src/bin/future_hardware.rs Cargo.toml

crates/bench/src/bin/future_hardware.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
