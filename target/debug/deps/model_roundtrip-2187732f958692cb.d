/root/repo/target/debug/deps/model_roundtrip-2187732f958692cb.d: crates/integration/../../tests/model_roundtrip.rs

/root/repo/target/debug/deps/model_roundtrip-2187732f958692cb: crates/integration/../../tests/model_roundtrip.rs

crates/integration/../../tests/model_roundtrip.rs:
