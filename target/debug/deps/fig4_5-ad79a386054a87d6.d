/root/repo/target/debug/deps/fig4_5-ad79a386054a87d6.d: crates/bench/src/bin/fig4_5.rs

/root/repo/target/debug/deps/fig4_5-ad79a386054a87d6: crates/bench/src/bin/fig4_5.rs

crates/bench/src/bin/fig4_5.rs:
