/root/repo/target/debug/deps/end_to_end-e03447dbb8874976.d: crates/integration/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-e03447dbb8874976.rmeta: crates/integration/../../tests/end_to_end.rs Cargo.toml

crates/integration/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
