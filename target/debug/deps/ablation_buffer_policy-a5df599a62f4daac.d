/root/repo/target/debug/deps/ablation_buffer_policy-a5df599a62f4daac.d: crates/bench/src/bin/ablation_buffer_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_buffer_policy-a5df599a62f4daac.rmeta: crates/bench/src/bin/ablation_buffer_policy.rs Cargo.toml

crates/bench/src/bin/ablation_buffer_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
