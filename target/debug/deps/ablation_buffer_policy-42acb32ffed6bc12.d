/root/repo/target/debug/deps/ablation_buffer_policy-42acb32ffed6bc12.d: crates/bench/src/bin/ablation_buffer_policy.rs

/root/repo/target/debug/deps/ablation_buffer_policy-42acb32ffed6bc12: crates/bench/src/bin/ablation_buffer_policy.rs

crates/bench/src/bin/ablation_buffer_policy.rs:
