/root/repo/target/debug/deps/extensions-75819b8ff6d6bd71.d: crates/integration/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-75819b8ff6d6bd71: crates/integration/../../tests/extensions.rs

crates/integration/../../tests/extensions.rs:
