/root/repo/target/debug/deps/fig6-4bc81eda5cd3baca.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-4bc81eda5cd3baca: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
