/root/repo/target/debug/deps/bench_buffer-0d3b89582148f60c.d: crates/bench/benches/bench_buffer.rs Cargo.toml

/root/repo/target/debug/deps/libbench_buffer-0d3b89582148f60c.rmeta: crates/bench/benches/bench_buffer.rs Cargo.toml

crates/bench/benches/bench_buffer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
