/root/repo/target/debug/deps/fig8-10734c75b5eae9e1.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-10734c75b5eae9e1: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
