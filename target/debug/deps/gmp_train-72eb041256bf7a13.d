/root/repo/target/debug/deps/gmp_train-72eb041256bf7a13.d: crates/cli/src/bin/gmp_train.rs

/root/repo/target/debug/deps/gmp_train-72eb041256bf7a13: crates/cli/src/bin/gmp_train.rs

crates/cli/src/bin/gmp_train.rs:
