/root/repo/target/debug/deps/gmp_sparse-c307a14e2792f37f.d: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs

/root/repo/target/debug/deps/libgmp_sparse-c307a14e2792f37f.rlib: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs

/root/repo/target/debug/deps/libgmp_sparse-c307a14e2792f37f.rmeta: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs

crates/sparse/src/lib.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/ops.rs:
