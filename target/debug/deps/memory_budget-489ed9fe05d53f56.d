/root/repo/target/debug/deps/memory_budget-489ed9fe05d53f56.d: crates/integration/../../tests/memory_budget.rs Cargo.toml

/root/repo/target/debug/deps/libmemory_budget-489ed9fe05d53f56.rmeta: crates/integration/../../tests/memory_budget.rs Cargo.toml

crates/integration/../../tests/memory_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
