/root/repo/target/debug/deps/table3-19ae9f7f90133e3d.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-19ae9f7f90133e3d: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
