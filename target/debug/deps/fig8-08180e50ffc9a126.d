/root/repo/target/debug/deps/fig8-08180e50ffc9a126.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-08180e50ffc9a126: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
