/root/repo/target/debug/deps/ablation_buffer_policy-d907f37a227680b1.d: crates/bench/src/bin/ablation_buffer_policy.rs

/root/repo/target/debug/deps/ablation_buffer_policy-d907f37a227680b1: crates/bench/src/bin/ablation_buffer_policy.rs

crates/bench/src/bin/ablation_buffer_policy.rs:
