/root/repo/target/debug/deps/proptest_buffer-5459830c14542ec3.d: crates/kernel/tests/proptest_buffer.rs

/root/repo/target/debug/deps/proptest_buffer-5459830c14542ec3: crates/kernel/tests/proptest_buffer.rs

crates/kernel/tests/proptest_buffer.rs:
