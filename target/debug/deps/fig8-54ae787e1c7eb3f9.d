/root/repo/target/debug/deps/fig8-54ae787e1c7eb3f9.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-54ae787e1c7eb3f9: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
