/root/repo/target/debug/deps/gmp_datasets-0224f627b0861517.d: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_datasets-0224f627b0861517.rmeta: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs Cargo.toml

crates/datasets/src/lib.rs:
crates/datasets/src/dataset.rs:
crates/datasets/src/libsvm_format.rs:
crates/datasets/src/paper.rs:
crates/datasets/src/preprocess.rs:
crates/datasets/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
