/root/repo/target/debug/deps/proptest_buffer-47518df60c6fd988.d: crates/kernel/tests/proptest_buffer.rs

/root/repo/target/debug/deps/proptest_buffer-47518df60c6fd988: crates/kernel/tests/proptest_buffer.rs

crates/kernel/tests/proptest_buffer.rs:
