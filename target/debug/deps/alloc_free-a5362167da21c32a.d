/root/repo/target/debug/deps/alloc_free-a5362167da21c32a.d: crates/kernel/tests/alloc_free.rs

/root/repo/target/debug/deps/alloc_free-a5362167da21c32a: crates/kernel/tests/alloc_free.rs

crates/kernel/tests/alloc_free.rs:
