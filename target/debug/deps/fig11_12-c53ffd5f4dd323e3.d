/root/repo/target/debug/deps/fig11_12-c53ffd5f4dd323e3.d: crates/bench/src/bin/fig11_12.rs

/root/repo/target/debug/deps/fig11_12-c53ffd5f4dd323e3: crates/bench/src/bin/fig11_12.rs

crates/bench/src/bin/fig11_12.rs:
