/root/repo/target/debug/deps/fig6-4e2884563da67953.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-4e2884563da67953: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
