/root/repo/target/debug/deps/table3-f127c412bd0f2be0.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-f127c412bd0f2be0: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
