/root/repo/target/debug/deps/gmp_datasets-20dd54210e81c7a9.d: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

/root/repo/target/debug/deps/gmp_datasets-20dd54210e81c7a9: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

crates/datasets/src/lib.rs:
crates/datasets/src/dataset.rs:
crates/datasets/src/libsvm_format.rs:
crates/datasets/src/paper.rs:
crates/datasets/src/preprocess.rs:
crates/datasets/src/synth.rs:
