/root/repo/target/debug/deps/bench_predict-9c6b6662b1594cba.d: crates/bench/benches/bench_predict.rs

/root/repo/target/debug/deps/bench_predict-9c6b6662b1594cba: crates/bench/benches/bench_predict.rs

crates/bench/benches/bench_predict.rs:
