/root/repo/target/debug/deps/gmp_baselines-c7ff180be75d0971.d: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

/root/repo/target/debug/deps/libgmp_baselines-c7ff180be75d0971.rlib: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

/root/repo/target/debug/deps/libgmp_baselines-c7ff180be75d0971.rmeta: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

crates/baselines/src/lib.rs:
crates/baselines/src/comparators.rs:
crates/baselines/src/uncached.rs:
