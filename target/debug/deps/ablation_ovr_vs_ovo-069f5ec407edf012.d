/root/repo/target/debug/deps/ablation_ovr_vs_ovo-069f5ec407edf012.d: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

/root/repo/target/debug/deps/ablation_ovr_vs_ovo-069f5ec407edf012: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

crates/bench/src/bin/ablation_ovr_vs_ovo.rs:
