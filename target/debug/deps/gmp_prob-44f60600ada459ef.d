/root/repo/target/debug/deps/gmp_prob-44f60600ada459ef.d: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs

/root/repo/target/debug/deps/libgmp_prob-44f60600ada459ef.rlib: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs

/root/repo/target/debug/deps/libgmp_prob-44f60600ada459ef.rmeta: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs

crates/probability/src/lib.rs:
crates/probability/src/coupling.rs:
crates/probability/src/metrics.rs:
crates/probability/src/platt.rs:
