/root/repo/target/debug/deps/criterion-be1610e25c432dde.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-be1610e25c432dde.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-be1610e25c432dde.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
