/root/repo/target/debug/deps/gmp_baselines-9bafd343624dd2fd.d: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

/root/repo/target/debug/deps/gmp_baselines-9bafd343624dd2fd: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

crates/baselines/src/lib.rs:
crates/baselines/src/comparators.rs:
crates/baselines/src/uncached.rs:
