/root/repo/target/debug/deps/gmp_kernel-0a1d2453b875dc07.d: crates/kernel/src/lib.rs crates/kernel/src/buffer.rs crates/kernel/src/functions.rs crates/kernel/src/oracle.rs crates/kernel/src/rows.rs crates/kernel/src/shared.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_kernel-0a1d2453b875dc07.rmeta: crates/kernel/src/lib.rs crates/kernel/src/buffer.rs crates/kernel/src/functions.rs crates/kernel/src/oracle.rs crates/kernel/src/rows.rs crates/kernel/src/shared.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/buffer.rs:
crates/kernel/src/functions.rs:
crates/kernel/src/oracle.rs:
crates/kernel/src/rows.rs:
crates/kernel/src/shared.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
