/root/repo/target/debug/deps/proptest_solver-501208e6ae611a68.d: crates/smo/tests/proptest_solver.rs

/root/repo/target/debug/deps/proptest_solver-501208e6ae611a68: crates/smo/tests/proptest_solver.rs

crates/smo/tests/proptest_solver.rs:
