/root/repo/target/debug/deps/fig10-a055d3ccc8d5490e.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-a055d3ccc8d5490e: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
