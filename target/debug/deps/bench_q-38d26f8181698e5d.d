/root/repo/target/debug/deps/bench_q-38d26f8181698e5d.d: crates/bench/benches/bench_q.rs Cargo.toml

/root/repo/target/debug/deps/libbench_q-38d26f8181698e5d.rmeta: crates/bench/benches/bench_q.rs Cargo.toml

crates/bench/benches/bench_q.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
