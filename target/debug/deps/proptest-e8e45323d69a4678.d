/root/repo/target/debug/deps/proptest-e8e45323d69a4678.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e8e45323d69a4678.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e8e45323d69a4678.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
