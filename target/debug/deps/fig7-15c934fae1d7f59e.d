/root/repo/target/debug/deps/fig7-15c934fae1d7f59e.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-15c934fae1d7f59e: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
