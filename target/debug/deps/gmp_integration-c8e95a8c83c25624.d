/root/repo/target/debug/deps/gmp_integration-c8e95a8c83c25624.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_integration-c8e95a8c83c25624.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
