/root/repo/target/debug/deps/fig9-b296e6d297967458.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-b296e6d297967458: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
