/root/repo/target/debug/deps/proptest-d504b8109f3b5d78.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-d504b8109f3b5d78: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
