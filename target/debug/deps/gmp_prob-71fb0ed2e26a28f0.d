/root/repo/target/debug/deps/gmp_prob-71fb0ed2e26a28f0.d: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs

/root/repo/target/debug/deps/gmp_prob-71fb0ed2e26a28f0: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs

crates/probability/src/lib.rs:
crates/probability/src/coupling.rs:
crates/probability/src/metrics.rs:
crates/probability/src/platt.rs:
