/root/repo/target/debug/deps/proptest_solver-1c0043d2277336d5.d: crates/smo/tests/proptest_solver.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_solver-1c0043d2277336d5.rmeta: crates/smo/tests/proptest_solver.rs Cargo.toml

crates/smo/tests/proptest_solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
