/root/repo/target/debug/deps/bench_train-4e19a415306c7ac6.d: crates/bench/benches/bench_train.rs Cargo.toml

/root/repo/target/debug/deps/libbench_train-4e19a415306c7ac6.rmeta: crates/bench/benches/bench_train.rs Cargo.toml

crates/bench/benches/bench_train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
