/root/repo/target/debug/deps/future_hardware-53fc7e4bca8e5f80.d: crates/bench/src/bin/future_hardware.rs

/root/repo/target/debug/deps/future_hardware-53fc7e4bca8e5f80: crates/bench/src/bin/future_hardware.rs

crates/bench/src/bin/future_hardware.rs:
