/root/repo/target/debug/deps/fig10-d69dfb584b1f0f4b.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-d69dfb584b1f0f4b: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
