/root/repo/target/debug/deps/gmp_train-2585bdea538ee1b1.d: crates/cli/src/bin/gmp_train.rs

/root/repo/target/debug/deps/gmp_train-2585bdea538ee1b1: crates/cli/src/bin/gmp_train.rs

crates/cli/src/bin/gmp_train.rs:
