/root/repo/target/debug/deps/gmp_smo-410c7c986281b6e4.d: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs

/root/repo/target/debug/deps/libgmp_smo-410c7c986281b6e4.rlib: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs

/root/repo/target/debug/deps/libgmp_smo-410c7c986281b6e4.rmeta: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs

crates/smo/src/lib.rs:
crates/smo/src/batched.rs:
crates/smo/src/classic.rs:
crates/smo/src/common.rs:
crates/smo/src/decision.rs:
