/root/repo/target/debug/deps/fig7-6cfe41a89cab7a9b.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-6cfe41a89cab7a9b: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
