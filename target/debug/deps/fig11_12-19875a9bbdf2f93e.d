/root/repo/target/debug/deps/fig11_12-19875a9bbdf2f93e.d: crates/bench/src/bin/fig11_12.rs

/root/repo/target/debug/deps/fig11_12-19875a9bbdf2f93e: crates/bench/src/bin/fig11_12.rs

crates/bench/src/bin/fig11_12.rs:
