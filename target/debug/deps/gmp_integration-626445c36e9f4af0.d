/root/repo/target/debug/deps/gmp_integration-626445c36e9f4af0.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libgmp_integration-626445c36e9f4af0.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libgmp_integration-626445c36e9f4af0.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
