/root/repo/target/debug/deps/gmp_baselines-acb3a3111a3847b8.d: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

/root/repo/target/debug/deps/libgmp_baselines-acb3a3111a3847b8.rlib: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

/root/repo/target/debug/deps/libgmp_baselines-acb3a3111a3847b8.rmeta: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

crates/baselines/src/lib.rs:
crates/baselines/src/comparators.rs:
crates/baselines/src/uncached.rs:
