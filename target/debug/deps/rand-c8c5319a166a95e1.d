/root/repo/target/debug/deps/rand-c8c5319a166a95e1.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c8c5319a166a95e1.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c8c5319a166a95e1.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
