/root/repo/target/debug/deps/gmp_bench-47bc2f25bdb58f37.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gmp_bench-47bc2f25bdb58f37: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
