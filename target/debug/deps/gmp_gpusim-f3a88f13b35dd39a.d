/root/repo/target/debug/deps/gmp_gpusim-f3a88f13b35dd39a.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs

/root/repo/target/debug/deps/gmp_gpusim-f3a88f13b35dd39a: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/cost.rs:
crates/gpu-sim/src/exec.rs:
crates/gpu-sim/src/memory.rs:
crates/gpu-sim/src/pool.rs:
crates/gpu-sim/src/reduce.rs:
crates/gpu-sim/src/stats.rs:
