/root/repo/target/debug/deps/fig4_5-27448281e2b1db0a.d: crates/bench/src/bin/fig4_5.rs

/root/repo/target/debug/deps/fig4_5-27448281e2b1db0a: crates/bench/src/bin/fig4_5.rs

crates/bench/src/bin/fig4_5.rs:
