/root/repo/target/debug/deps/future_hardware-4082639944aa910f.d: crates/bench/src/bin/future_hardware.rs

/root/repo/target/debug/deps/future_hardware-4082639944aa910f: crates/bench/src/bin/future_hardware.rs

crates/bench/src/bin/future_hardware.rs:
