/root/repo/target/debug/deps/fig4_5-9a0be7f9501cb308.d: crates/bench/src/bin/fig4_5.rs

/root/repo/target/debug/deps/fig4_5-9a0be7f9501cb308: crates/bench/src/bin/fig4_5.rs

crates/bench/src/bin/fig4_5.rs:
