/root/repo/target/debug/deps/gmp_prob-52ed8ec026d0199f.d: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs

/root/repo/target/debug/deps/libgmp_prob-52ed8ec026d0199f.rlib: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs

/root/repo/target/debug/deps/libgmp_prob-52ed8ec026d0199f.rmeta: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs

crates/probability/src/lib.rs:
crates/probability/src/coupling.rs:
crates/probability/src/metrics.rs:
crates/probability/src/platt.rs:
