/root/repo/target/debug/deps/ablation_ovr_vs_ovo-fb9b6d5ee0c7796c.d: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

/root/repo/target/debug/deps/ablation_ovr_vs_ovo-fb9b6d5ee0c7796c: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

crates/bench/src/bin/ablation_ovr_vs_ovo.rs:
