/root/repo/target/debug/deps/gmp_cli-912f9757db87c82a.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libgmp_cli-912f9757db87c82a.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libgmp_cli-912f9757db87c82a.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
