/root/repo/target/debug/deps/model_roundtrip-347db8f8196ffaa3.d: crates/integration/../../tests/model_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_roundtrip-347db8f8196ffaa3.rmeta: crates/integration/../../tests/model_roundtrip.rs Cargo.toml

crates/integration/../../tests/model_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
