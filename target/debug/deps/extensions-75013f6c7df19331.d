/root/repo/target/debug/deps/extensions-75013f6c7df19331.d: crates/integration/../../tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-75013f6c7df19331.rmeta: crates/integration/../../tests/extensions.rs Cargo.toml

crates/integration/../../tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
