/root/repo/target/debug/deps/proptest_prob-640970a1b1f5870b.d: crates/probability/tests/proptest_prob.rs

/root/repo/target/debug/deps/proptest_prob-640970a1b1f5870b: crates/probability/tests/proptest_prob.rs

crates/probability/tests/proptest_prob.rs:
