/root/repo/target/debug/deps/criterion-bd004d73c5fedeaf.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-bd004d73c5fedeaf.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
