/root/repo/target/debug/deps/gmp_bench-6815766347b370ea.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgmp_bench-6815766347b370ea.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgmp_bench-6815766347b370ea.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
