/root/repo/target/debug/deps/criterion-2eb1f8f49130386c.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-2eb1f8f49130386c.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-2eb1f8f49130386c.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
