/root/repo/target/debug/deps/gmp_kernel-18eaa20ef2c76ebf.d: crates/kernel/src/lib.rs crates/kernel/src/buffer.rs crates/kernel/src/functions.rs crates/kernel/src/oracle.rs crates/kernel/src/rows.rs crates/kernel/src/shared.rs

/root/repo/target/debug/deps/gmp_kernel-18eaa20ef2c76ebf: crates/kernel/src/lib.rs crates/kernel/src/buffer.rs crates/kernel/src/functions.rs crates/kernel/src/oracle.rs crates/kernel/src/rows.rs crates/kernel/src/shared.rs

crates/kernel/src/lib.rs:
crates/kernel/src/buffer.rs:
crates/kernel/src/functions.rs:
crates/kernel/src/oracle.rs:
crates/kernel/src/rows.rs:
crates/kernel/src/shared.rs:
