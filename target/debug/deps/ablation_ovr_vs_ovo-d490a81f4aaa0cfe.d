/root/repo/target/debug/deps/ablation_ovr_vs_ovo-d490a81f4aaa0cfe.d: crates/bench/src/bin/ablation_ovr_vs_ovo.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ovr_vs_ovo-d490a81f4aaa0cfe.rmeta: crates/bench/src/bin/ablation_ovr_vs_ovo.rs Cargo.toml

crates/bench/src/bin/ablation_ovr_vs_ovo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
