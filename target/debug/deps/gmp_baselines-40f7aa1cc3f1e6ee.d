/root/repo/target/debug/deps/gmp_baselines-40f7aa1cc3f1e6ee.d: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

/root/repo/target/debug/deps/libgmp_baselines-40f7aa1cc3f1e6ee.rlib: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

/root/repo/target/debug/deps/libgmp_baselines-40f7aa1cc3f1e6ee.rmeta: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

crates/baselines/src/lib.rs:
crates/baselines/src/comparators.rs:
crates/baselines/src/uncached.rs:
