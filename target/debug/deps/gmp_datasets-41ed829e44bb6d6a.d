/root/repo/target/debug/deps/gmp_datasets-41ed829e44bb6d6a.d: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

/root/repo/target/debug/deps/libgmp_datasets-41ed829e44bb6d6a.rlib: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

/root/repo/target/debug/deps/libgmp_datasets-41ed829e44bb6d6a.rmeta: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

crates/datasets/src/lib.rs:
crates/datasets/src/dataset.rs:
crates/datasets/src/libsvm_format.rs:
crates/datasets/src/paper.rs:
crates/datasets/src/preprocess.rs:
crates/datasets/src/synth.rs:
