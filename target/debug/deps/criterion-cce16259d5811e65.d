/root/repo/target/debug/deps/criterion-cce16259d5811e65.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-cce16259d5811e65: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
