/root/repo/target/debug/deps/ablation_ovr_vs_ovo-87622ac671d05ab3.d: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

/root/repo/target/debug/deps/ablation_ovr_vs_ovo-87622ac671d05ab3: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

crates/bench/src/bin/ablation_ovr_vs_ovo.rs:
