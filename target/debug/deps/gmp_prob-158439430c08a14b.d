/root/repo/target/debug/deps/gmp_prob-158439430c08a14b.d: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs Cargo.toml

/root/repo/target/debug/deps/libgmp_prob-158439430c08a14b.rmeta: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs Cargo.toml

crates/probability/src/lib.rs:
crates/probability/src/coupling.rs:
crates/probability/src/metrics.rs:
crates/probability/src/platt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
