/root/repo/target/debug/deps/ablation_ovr_vs_ovo-ce6ebbf458eb4780.d: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

/root/repo/target/debug/deps/ablation_ovr_vs_ovo-ce6ebbf458eb4780: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

crates/bench/src/bin/ablation_ovr_vs_ovo.rs:
