/root/repo/target/debug/deps/proptest_prob-6005044767dd0551.d: crates/probability/tests/proptest_prob.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_prob-6005044767dd0551.rmeta: crates/probability/tests/proptest_prob.rs Cargo.toml

crates/probability/tests/proptest_prob.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
