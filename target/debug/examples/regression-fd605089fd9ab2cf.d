/root/repo/target/debug/examples/regression-fd605089fd9ab2cf.d: crates/core/../../examples/regression.rs

/root/repo/target/debug/examples/regression-fd605089fd9ab2cf: crates/core/../../examples/regression.rs

crates/core/../../examples/regression.rs:
