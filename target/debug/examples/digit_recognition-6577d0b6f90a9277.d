/root/repo/target/debug/examples/digit_recognition-6577d0b6f90a9277.d: crates/core/../../examples/digit_recognition.rs Cargo.toml

/root/repo/target/debug/examples/libdigit_recognition-6577d0b6f90a9277.rmeta: crates/core/../../examples/digit_recognition.rs Cargo.toml

crates/core/../../examples/digit_recognition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
