/root/repo/target/debug/examples/regression-49827900e17f6a55.d: crates/core/../../examples/regression.rs Cargo.toml

/root/repo/target/debug/examples/libregression-49827900e17f6a55.rmeta: crates/core/../../examples/regression.rs Cargo.toml

crates/core/../../examples/regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
