/root/repo/target/debug/examples/digit_recognition-977b4a20e73ed354.d: crates/core/../../examples/digit_recognition.rs

/root/repo/target/debug/examples/digit_recognition-977b4a20e73ed354: crates/core/../../examples/digit_recognition.rs

crates/core/../../examples/digit_recognition.rs:
