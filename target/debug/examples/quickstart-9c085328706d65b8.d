/root/repo/target/debug/examples/quickstart-9c085328706d65b8.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9c085328706d65b8: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
