/root/repo/target/debug/examples/text_classification-f6acb269986075c3.d: crates/core/../../examples/text_classification.rs Cargo.toml

/root/repo/target/debug/examples/libtext_classification-f6acb269986075c3.rmeta: crates/core/../../examples/text_classification.rs Cargo.toml

crates/core/../../examples/text_classification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
