/root/repo/target/debug/examples/text_classification-a76f42aabffdf4b7.d: crates/core/../../examples/text_classification.rs

/root/repo/target/debug/examples/text_classification-a76f42aabffdf4b7: crates/core/../../examples/text_classification.rs

crates/core/../../examples/text_classification.rs:
