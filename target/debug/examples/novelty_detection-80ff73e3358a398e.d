/root/repo/target/debug/examples/novelty_detection-80ff73e3358a398e.d: crates/core/../../examples/novelty_detection.rs Cargo.toml

/root/repo/target/debug/examples/libnovelty_detection-80ff73e3358a398e.rmeta: crates/core/../../examples/novelty_detection.rs Cargo.toml

crates/core/../../examples/novelty_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
