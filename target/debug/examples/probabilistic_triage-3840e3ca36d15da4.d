/root/repo/target/debug/examples/probabilistic_triage-3840e3ca36d15da4.d: crates/core/../../examples/probabilistic_triage.rs Cargo.toml

/root/repo/target/debug/examples/libprobabilistic_triage-3840e3ca36d15da4.rmeta: crates/core/../../examples/probabilistic_triage.rs Cargo.toml

crates/core/../../examples/probabilistic_triage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
