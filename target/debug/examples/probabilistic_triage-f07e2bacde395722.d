/root/repo/target/debug/examples/probabilistic_triage-f07e2bacde395722.d: crates/core/../../examples/probabilistic_triage.rs

/root/repo/target/debug/examples/probabilistic_triage-f07e2bacde395722: crates/core/../../examples/probabilistic_triage.rs

crates/core/../../examples/probabilistic_triage.rs:
