/root/repo/target/debug/examples/novelty_detection-1e76b947c0e5f4ce.d: crates/core/../../examples/novelty_detection.rs

/root/repo/target/debug/examples/novelty_detection-1e76b947c0e5f4ce: crates/core/../../examples/novelty_detection.rs

crates/core/../../examples/novelty_detection.rs:
