/root/repo/target/release/deps/bench_rowbatch-d932c9f20902dec4.d: crates/bench/benches/bench_rowbatch.rs

/root/repo/target/release/deps/bench_rowbatch-d932c9f20902dec4: crates/bench/benches/bench_rowbatch.rs

crates/bench/benches/bench_rowbatch.rs:
