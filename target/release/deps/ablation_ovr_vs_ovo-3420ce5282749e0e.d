/root/repo/target/release/deps/ablation_ovr_vs_ovo-3420ce5282749e0e.d: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

/root/repo/target/release/deps/ablation_ovr_vs_ovo-3420ce5282749e0e: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

crates/bench/src/bin/ablation_ovr_vs_ovo.rs:
