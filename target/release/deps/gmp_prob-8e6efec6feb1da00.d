/root/repo/target/release/deps/gmp_prob-8e6efec6feb1da00.d: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs

/root/repo/target/release/deps/libgmp_prob-8e6efec6feb1da00.rlib: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs

/root/repo/target/release/deps/libgmp_prob-8e6efec6feb1da00.rmeta: crates/probability/src/lib.rs crates/probability/src/coupling.rs crates/probability/src/metrics.rs crates/probability/src/platt.rs

crates/probability/src/lib.rs:
crates/probability/src/coupling.rs:
crates/probability/src/metrics.rs:
crates/probability/src/platt.rs:
