/root/repo/target/release/deps/ablation_buffer_policy-4a7dceaf698dc992.d: crates/bench/src/bin/ablation_buffer_policy.rs

/root/repo/target/release/deps/ablation_buffer_policy-4a7dceaf698dc992: crates/bench/src/bin/ablation_buffer_policy.rs

crates/bench/src/bin/ablation_buffer_policy.rs:
