/root/repo/target/release/deps/rand-16a2519efb856979.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-16a2519efb856979.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-16a2519efb856979.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
