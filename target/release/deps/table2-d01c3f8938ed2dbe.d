/root/repo/target/release/deps/table2-d01c3f8938ed2dbe.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-d01c3f8938ed2dbe: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
