/root/repo/target/release/deps/gmp_integration-d37ecfe54f75b0c1.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libgmp_integration-d37ecfe54f75b0c1.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libgmp_integration-d37ecfe54f75b0c1.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
