/root/repo/target/release/deps/fig9-a01391b5e18642ae.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-a01391b5e18642ae: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
