/root/repo/target/release/deps/gmp_predict-e55d0d281d4c6c90.d: crates/cli/src/bin/gmp_predict.rs

/root/repo/target/release/deps/gmp_predict-e55d0d281d4c6c90: crates/cli/src/bin/gmp_predict.rs

crates/cli/src/bin/gmp_predict.rs:
