/root/repo/target/release/deps/table4-0d89997606dfb858.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-0d89997606dfb858: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
