/root/repo/target/release/deps/bench_q-298b5c616d98ce98.d: crates/bench/benches/bench_q.rs

/root/repo/target/release/deps/bench_q-298b5c616d98ce98: crates/bench/benches/bench_q.rs

crates/bench/benches/bench_q.rs:
