/root/repo/target/release/deps/bench_predict-e78b473025a41aac.d: crates/bench/benches/bench_predict.rs

/root/repo/target/release/deps/bench_predict-e78b473025a41aac: crates/bench/benches/bench_predict.rs

crates/bench/benches/bench_predict.rs:
