/root/repo/target/release/deps/gmp_bench-ee2e3740127ed6b7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgmp_bench-ee2e3740127ed6b7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgmp_bench-ee2e3740127ed6b7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
