/root/repo/target/release/deps/fig11_12-bd219e21603a3a92.d: crates/bench/src/bin/fig11_12.rs

/root/repo/target/release/deps/fig11_12-bd219e21603a3a92: crates/bench/src/bin/fig11_12.rs

crates/bench/src/bin/fig11_12.rs:
