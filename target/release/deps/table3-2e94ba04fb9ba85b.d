/root/repo/target/release/deps/table3-2e94ba04fb9ba85b.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-2e94ba04fb9ba85b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
