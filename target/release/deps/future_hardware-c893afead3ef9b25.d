/root/repo/target/release/deps/future_hardware-c893afead3ef9b25.d: crates/bench/src/bin/future_hardware.rs

/root/repo/target/release/deps/future_hardware-c893afead3ef9b25: crates/bench/src/bin/future_hardware.rs

crates/bench/src/bin/future_hardware.rs:
