/root/repo/target/release/deps/table3-c27ce00912a63005.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-c27ce00912a63005: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
