/root/repo/target/release/deps/serde_derive-c1b8bb75c405e89c.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-c1b8bb75c405e89c.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
