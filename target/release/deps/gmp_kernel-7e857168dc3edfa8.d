/root/repo/target/release/deps/gmp_kernel-7e857168dc3edfa8.d: crates/kernel/src/lib.rs crates/kernel/src/buffer.rs crates/kernel/src/functions.rs crates/kernel/src/oracle.rs crates/kernel/src/rows.rs crates/kernel/src/shared.rs

/root/repo/target/release/deps/libgmp_kernel-7e857168dc3edfa8.rlib: crates/kernel/src/lib.rs crates/kernel/src/buffer.rs crates/kernel/src/functions.rs crates/kernel/src/oracle.rs crates/kernel/src/rows.rs crates/kernel/src/shared.rs

/root/repo/target/release/deps/libgmp_kernel-7e857168dc3edfa8.rmeta: crates/kernel/src/lib.rs crates/kernel/src/buffer.rs crates/kernel/src/functions.rs crates/kernel/src/oracle.rs crates/kernel/src/rows.rs crates/kernel/src/shared.rs

crates/kernel/src/lib.rs:
crates/kernel/src/buffer.rs:
crates/kernel/src/functions.rs:
crates/kernel/src/oracle.rs:
crates/kernel/src/rows.rs:
crates/kernel/src/shared.rs:
