/root/repo/target/release/deps/fig11_12-d44ccc563b49f8be.d: crates/bench/src/bin/fig11_12.rs

/root/repo/target/release/deps/fig11_12-d44ccc563b49f8be: crates/bench/src/bin/fig11_12.rs

crates/bench/src/bin/fig11_12.rs:
