/root/repo/target/release/deps/fig6-0905dfb8dfa016a9.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-0905dfb8dfa016a9: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
