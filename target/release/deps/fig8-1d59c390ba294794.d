/root/repo/target/release/deps/fig8-1d59c390ba294794.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-1d59c390ba294794: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
