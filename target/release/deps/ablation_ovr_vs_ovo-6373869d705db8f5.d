/root/repo/target/release/deps/ablation_ovr_vs_ovo-6373869d705db8f5.d: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

/root/repo/target/release/deps/ablation_ovr_vs_ovo-6373869d705db8f5: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

crates/bench/src/bin/ablation_ovr_vs_ovo.rs:
