/root/repo/target/release/deps/fig4_5-c9850b0111410657.d: crates/bench/src/bin/fig4_5.rs

/root/repo/target/release/deps/fig4_5-c9850b0111410657: crates/bench/src/bin/fig4_5.rs

crates/bench/src/bin/fig4_5.rs:
