/root/repo/target/release/deps/fig10-33aa6539b748a5c1.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-33aa6539b748a5c1: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
