/root/repo/target/release/deps/gmp_datasets-b8ca37e00956c967.d: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

/root/repo/target/release/deps/libgmp_datasets-b8ca37e00956c967.rlib: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

/root/repo/target/release/deps/libgmp_datasets-b8ca37e00956c967.rmeta: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

crates/datasets/src/lib.rs:
crates/datasets/src/dataset.rs:
crates/datasets/src/libsvm_format.rs:
crates/datasets/src/paper.rs:
crates/datasets/src/preprocess.rs:
crates/datasets/src/synth.rs:
