/root/repo/target/release/deps/table4-c5f8fdac7bf543db.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-c5f8fdac7bf543db: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
