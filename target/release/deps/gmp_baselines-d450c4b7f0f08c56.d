/root/repo/target/release/deps/gmp_baselines-d450c4b7f0f08c56.d: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

/root/repo/target/release/deps/libgmp_baselines-d450c4b7f0f08c56.rlib: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

/root/repo/target/release/deps/libgmp_baselines-d450c4b7f0f08c56.rmeta: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

crates/baselines/src/lib.rs:
crates/baselines/src/comparators.rs:
crates/baselines/src/uncached.rs:
