/root/repo/target/release/deps/gmp_datasets-a9985e71e04e6f3b.d: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

/root/repo/target/release/deps/libgmp_datasets-a9985e71e04e6f3b.rlib: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

/root/repo/target/release/deps/libgmp_datasets-a9985e71e04e6f3b.rmeta: crates/datasets/src/lib.rs crates/datasets/src/dataset.rs crates/datasets/src/libsvm_format.rs crates/datasets/src/paper.rs crates/datasets/src/preprocess.rs crates/datasets/src/synth.rs

crates/datasets/src/lib.rs:
crates/datasets/src/dataset.rs:
crates/datasets/src/libsvm_format.rs:
crates/datasets/src/paper.rs:
crates/datasets/src/preprocess.rs:
crates/datasets/src/synth.rs:
