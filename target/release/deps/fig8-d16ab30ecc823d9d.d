/root/repo/target/release/deps/fig8-d16ab30ecc823d9d.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-d16ab30ecc823d9d: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
