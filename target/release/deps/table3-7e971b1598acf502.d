/root/repo/target/release/deps/table3-7e971b1598acf502.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-7e971b1598acf502: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
