/root/repo/target/release/deps/fig6-84b4aa15c2170b85.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-84b4aa15c2170b85: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
