/root/repo/target/release/deps/gmp_train-a7059f0bdd48f773.d: crates/cli/src/bin/gmp_train.rs

/root/repo/target/release/deps/gmp_train-a7059f0bdd48f773: crates/cli/src/bin/gmp_train.rs

crates/cli/src/bin/gmp_train.rs:
