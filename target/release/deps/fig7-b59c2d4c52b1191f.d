/root/repo/target/release/deps/fig7-b59c2d4c52b1191f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-b59c2d4c52b1191f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
