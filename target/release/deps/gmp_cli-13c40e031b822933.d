/root/repo/target/release/deps/gmp_cli-13c40e031b822933.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libgmp_cli-13c40e031b822933.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libgmp_cli-13c40e031b822933.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
