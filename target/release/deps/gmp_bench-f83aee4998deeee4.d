/root/repo/target/release/deps/gmp_bench-f83aee4998deeee4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgmp_bench-f83aee4998deeee4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgmp_bench-f83aee4998deeee4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
