/root/repo/target/release/deps/gmp_gpusim-cb8a18e99e2736ff.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs

/root/repo/target/release/deps/libgmp_gpusim-cb8a18e99e2736ff.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs

/root/repo/target/release/deps/libgmp_gpusim-cb8a18e99e2736ff.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/pool.rs crates/gpu-sim/src/reduce.rs crates/gpu-sim/src/stats.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/cost.rs:
crates/gpu-sim/src/exec.rs:
crates/gpu-sim/src/memory.rs:
crates/gpu-sim/src/pool.rs:
crates/gpu-sim/src/reduce.rs:
crates/gpu-sim/src/stats.rs:
