/root/repo/target/release/deps/ablation_ovr_vs_ovo-df7ae62234a36b46.d: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

/root/repo/target/release/deps/ablation_ovr_vs_ovo-df7ae62234a36b46: crates/bench/src/bin/ablation_ovr_vs_ovo.rs

crates/bench/src/bin/ablation_ovr_vs_ovo.rs:
