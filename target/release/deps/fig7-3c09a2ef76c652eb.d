/root/repo/target/release/deps/fig7-3c09a2ef76c652eb.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-3c09a2ef76c652eb: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
