/root/repo/target/release/deps/future_hardware-2cb6d98c9afee5d9.d: crates/bench/src/bin/future_hardware.rs

/root/repo/target/release/deps/future_hardware-2cb6d98c9afee5d9: crates/bench/src/bin/future_hardware.rs

crates/bench/src/bin/future_hardware.rs:
