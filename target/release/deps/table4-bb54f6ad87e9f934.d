/root/repo/target/release/deps/table4-bb54f6ad87e9f934.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-bb54f6ad87e9f934: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
