/root/repo/target/release/deps/gmp_svm-fa3841ba9f20ade5.d: crates/core/src/lib.rs crates/core/src/cv.rs crates/core/src/model.rs crates/core/src/model_selection.rs crates/core/src/oneclass.rs crates/core/src/ovo.rs crates/core/src/ovr.rs crates/core/src/params.rs crates/core/src/predict.rs crates/core/src/svr.rs crates/core/src/telemetry.rs crates/core/src/trainer.rs

/root/repo/target/release/deps/libgmp_svm-fa3841ba9f20ade5.rlib: crates/core/src/lib.rs crates/core/src/cv.rs crates/core/src/model.rs crates/core/src/model_selection.rs crates/core/src/oneclass.rs crates/core/src/ovo.rs crates/core/src/ovr.rs crates/core/src/params.rs crates/core/src/predict.rs crates/core/src/svr.rs crates/core/src/telemetry.rs crates/core/src/trainer.rs

/root/repo/target/release/deps/libgmp_svm-fa3841ba9f20ade5.rmeta: crates/core/src/lib.rs crates/core/src/cv.rs crates/core/src/model.rs crates/core/src/model_selection.rs crates/core/src/oneclass.rs crates/core/src/ovo.rs crates/core/src/ovr.rs crates/core/src/params.rs crates/core/src/predict.rs crates/core/src/svr.rs crates/core/src/telemetry.rs crates/core/src/trainer.rs

crates/core/src/lib.rs:
crates/core/src/cv.rs:
crates/core/src/model.rs:
crates/core/src/model_selection.rs:
crates/core/src/oneclass.rs:
crates/core/src/ovo.rs:
crates/core/src/ovr.rs:
crates/core/src/params.rs:
crates/core/src/predict.rs:
crates/core/src/svr.rs:
crates/core/src/telemetry.rs:
crates/core/src/trainer.rs:
