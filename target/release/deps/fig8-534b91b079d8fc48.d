/root/repo/target/release/deps/fig8-534b91b079d8fc48.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-534b91b079d8fc48: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
