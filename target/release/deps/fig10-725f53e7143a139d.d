/root/repo/target/release/deps/fig10-725f53e7143a139d.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-725f53e7143a139d: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
