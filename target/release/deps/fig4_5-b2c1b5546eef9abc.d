/root/repo/target/release/deps/fig4_5-b2c1b5546eef9abc.d: crates/bench/src/bin/fig4_5.rs

/root/repo/target/release/deps/fig4_5-b2c1b5546eef9abc: crates/bench/src/bin/fig4_5.rs

crates/bench/src/bin/fig4_5.rs:
