/root/repo/target/release/deps/criterion-7e7b622f293bd941.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7e7b622f293bd941.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7e7b622f293bd941.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
