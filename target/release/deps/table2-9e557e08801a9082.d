/root/repo/target/release/deps/table2-9e557e08801a9082.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-9e557e08801a9082: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
