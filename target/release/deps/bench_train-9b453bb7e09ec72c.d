/root/repo/target/release/deps/bench_train-9b453bb7e09ec72c.d: crates/bench/benches/bench_train.rs

/root/repo/target/release/deps/bench_train-9b453bb7e09ec72c: crates/bench/benches/bench_train.rs

crates/bench/benches/bench_train.rs:
