/root/repo/target/release/deps/ablation_buffer_policy-c5777a968b53f9be.d: crates/bench/src/bin/ablation_buffer_policy.rs

/root/repo/target/release/deps/ablation_buffer_policy-c5777a968b53f9be: crates/bench/src/bin/ablation_buffer_policy.rs

crates/bench/src/bin/ablation_buffer_policy.rs:
