/root/repo/target/release/deps/rand-ba68d39760093e57.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-ba68d39760093e57.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-ba68d39760093e57.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
