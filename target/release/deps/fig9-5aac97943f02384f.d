/root/repo/target/release/deps/fig9-5aac97943f02384f.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-5aac97943f02384f: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
