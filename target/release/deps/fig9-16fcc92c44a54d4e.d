/root/repo/target/release/deps/fig9-16fcc92c44a54d4e.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-16fcc92c44a54d4e: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
