/root/repo/target/release/deps/gmp_smo-93ffe6532bd9de82.d: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs

/root/repo/target/release/deps/libgmp_smo-93ffe6532bd9de82.rlib: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs

/root/repo/target/release/deps/libgmp_smo-93ffe6532bd9de82.rmeta: crates/smo/src/lib.rs crates/smo/src/batched.rs crates/smo/src/classic.rs crates/smo/src/common.rs crates/smo/src/decision.rs

crates/smo/src/lib.rs:
crates/smo/src/batched.rs:
crates/smo/src/classic.rs:
crates/smo/src/common.rs:
crates/smo/src/decision.rs:
