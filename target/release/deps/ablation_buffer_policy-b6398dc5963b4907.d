/root/repo/target/release/deps/ablation_buffer_policy-b6398dc5963b4907.d: crates/bench/src/bin/ablation_buffer_policy.rs

/root/repo/target/release/deps/ablation_buffer_policy-b6398dc5963b4907: crates/bench/src/bin/ablation_buffer_policy.rs

crates/bench/src/bin/ablation_buffer_policy.rs:
