/root/repo/target/release/deps/gmp_bench-f03cbfb1c9dbb1b8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/gmp_bench-f03cbfb1c9dbb1b8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
