/root/repo/target/release/deps/fig4_5-e102c778acf54817.d: crates/bench/src/bin/fig4_5.rs

/root/repo/target/release/deps/fig4_5-e102c778acf54817: crates/bench/src/bin/fig4_5.rs

crates/bench/src/bin/fig4_5.rs:
