/root/repo/target/release/deps/fig6-8d5da1399a172825.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-8d5da1399a172825: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
