/root/repo/target/release/deps/bench_buffer-229ac05ba429496b.d: crates/bench/benches/bench_buffer.rs

/root/repo/target/release/deps/bench_buffer-229ac05ba429496b: crates/bench/benches/bench_buffer.rs

crates/bench/benches/bench_buffer.rs:
