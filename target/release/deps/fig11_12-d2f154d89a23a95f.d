/root/repo/target/release/deps/fig11_12-d2f154d89a23a95f.d: crates/bench/src/bin/fig11_12.rs

/root/repo/target/release/deps/fig11_12-d2f154d89a23a95f: crates/bench/src/bin/fig11_12.rs

crates/bench/src/bin/fig11_12.rs:
