/root/repo/target/release/deps/gmp_predict-dc703fffce302fa2.d: crates/cli/src/bin/gmp_predict.rs

/root/repo/target/release/deps/gmp_predict-dc703fffce302fa2: crates/cli/src/bin/gmp_predict.rs

crates/cli/src/bin/gmp_predict.rs:
