/root/repo/target/release/deps/gmp_sparse-4f4e2c12d86e0c69.d: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs

/root/repo/target/release/deps/libgmp_sparse-4f4e2c12d86e0c69.rlib: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs

/root/repo/target/release/deps/libgmp_sparse-4f4e2c12d86e0c69.rmeta: crates/sparse/src/lib.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ops.rs

crates/sparse/src/lib.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/ops.rs:
