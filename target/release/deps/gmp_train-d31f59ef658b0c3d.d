/root/repo/target/release/deps/gmp_train-d31f59ef658b0c3d.d: crates/cli/src/bin/gmp_train.rs

/root/repo/target/release/deps/gmp_train-d31f59ef658b0c3d: crates/cli/src/bin/gmp_train.rs

crates/cli/src/bin/gmp_train.rs:
