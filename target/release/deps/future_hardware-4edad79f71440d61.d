/root/repo/target/release/deps/future_hardware-4edad79f71440d61.d: crates/bench/src/bin/future_hardware.rs

/root/repo/target/release/deps/future_hardware-4edad79f71440d61: crates/bench/src/bin/future_hardware.rs

crates/bench/src/bin/future_hardware.rs:
