/root/repo/target/release/deps/fig7-44836556d7ef3d4f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-44836556d7ef3d4f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
