/root/repo/target/release/deps/gmp_baselines-6abb20983d9d878d.d: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

/root/repo/target/release/deps/libgmp_baselines-6abb20983d9d878d.rlib: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

/root/repo/target/release/deps/libgmp_baselines-6abb20983d9d878d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/comparators.rs crates/baselines/src/uncached.rs

crates/baselines/src/lib.rs:
crates/baselines/src/comparators.rs:
crates/baselines/src/uncached.rs:
