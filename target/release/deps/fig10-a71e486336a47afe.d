/root/repo/target/release/deps/fig10-a71e486336a47afe.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-a71e486336a47afe: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
