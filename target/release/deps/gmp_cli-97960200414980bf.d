/root/repo/target/release/deps/gmp_cli-97960200414980bf.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libgmp_cli-97960200414980bf.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libgmp_cli-97960200414980bf.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
