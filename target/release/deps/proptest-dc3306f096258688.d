/root/repo/target/release/deps/proptest-dc3306f096258688.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-dc3306f096258688.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-dc3306f096258688.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
