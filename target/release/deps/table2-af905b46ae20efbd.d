/root/repo/target/release/deps/table2-af905b46ae20efbd.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-af905b46ae20efbd: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
