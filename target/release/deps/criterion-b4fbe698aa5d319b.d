/root/repo/target/release/deps/criterion-b4fbe698aa5d319b.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b4fbe698aa5d319b.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b4fbe698aa5d319b.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
