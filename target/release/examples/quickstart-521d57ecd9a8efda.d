/root/repo/target/release/examples/quickstart-521d57ecd9a8efda.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-521d57ecd9a8efda: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
