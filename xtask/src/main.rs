//! Workspace automation driver, following the cargo-xtask convention.
//!
//! `cargo xtask check` runs the workspace's static-analysis gauntlet:
//!
//! 1. **SAFETY-comment lint** — every `unsafe` keyword in first-party
//!    source must have an adjacent `// SAFETY:` (or `# Safety` doc
//!    section) within the preceding lines, so each unsafe block carries
//!    its proof obligation next to it.
//! 2. **Panic ban** — `.unwrap()` / `.expect(...)` / `panic!` /
//!    `unreachable!` / `todo!` / `unimplemented!` are banned in library
//!    code paths. Binaries (`src/bin`, `src/main.rs`), integration
//!    tests, benches, and `#[cfg(test)]` modules are exempt. A violation
//!    can be waived with an adjacent `// gmp:allow-panic — reason`
//!    comment, which makes every remaining panic site a reviewed one.
//! 3. **Clippy** with `-D warnings` over the whole workspace.
//! 4. **rustfmt** in check mode.
//!
//! Source lints scan `crates/*/src` only — vendored stand-ins under
//! `vendor/` are third-party API shims, not first-party library code.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("check") => {
            let rest: Vec<&str> = it.collect();
            let skip_cargo = rest.contains(&"--skip-cargo");
            if let Some(bad) = rest.iter().find(|a| **a != "--skip-cargo") {
                eprintln!("xtask check: unknown flag {bad}");
                return ExitCode::FAILURE;
            }
            check(skip_cargo)
        }
        _ => {
            eprintln!(
                "usage: cargo xtask check [--skip-cargo]\n\
                 \n\
                 check        run source lints (SAFETY comments, panic ban),\n\
                 \x20            clippy -D warnings, and rustfmt --check\n\
                 --skip-cargo source lints only (no clippy/fmt subprocesses)"
            );
            ExitCode::FAILURE
        }
    }
}

fn check(skip_cargo: bool) -> ExitCode {
    let root = workspace_root();
    let mut violations = Vec::new();

    let files = rust_sources(&root.join("crates"));
    for file in &files {
        let Ok(src) = std::fs::read_to_string(file) else {
            eprintln!("xtask: cannot read {}", file.display());
            return ExitCode::FAILURE;
        };
        let rel = file.strip_prefix(&root).unwrap_or(file).to_path_buf();
        violations.extend(lint_safety_comments(&rel, &src));
        if is_library_path(&rel) {
            violations.extend(lint_panic_ban(&rel, &src));
        }
    }

    for v in &violations {
        eprintln!("{v}");
    }
    let mut failed = !violations.is_empty();
    println!(
        "xtask: source lints over {} files: {} violation(s)",
        files.len(),
        violations.len()
    );

    if !skip_cargo && !failed {
        failed |= !run(
            &root,
            "clippy -D warnings",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        );
        failed |= !run(&root, "rustfmt check", &["fmt", "--all", "--check"]);
    }

    if failed {
        eprintln!("xtask check: FAILED");
        ExitCode::FAILURE
    } else {
        println!("xtask check: ok");
        ExitCode::SUCCESS
    }
}

fn run(root: &Path, what: &str, cargo_args: &[&str]) -> bool {
    println!("xtask: running cargo {}", cargo_args.join(" "));
    match Command::new("cargo")
        .args(cargo_args)
        .current_dir(root)
        .status()
    {
        Ok(st) if st.success() => true,
        Ok(st) => {
            eprintln!("xtask: {what} failed ({st})");
            false
        }
        Err(e) => {
            eprintln!("xtask: cannot spawn cargo for {what}: {e}");
            false
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask/ sits directly under the workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

/// All `.rs` files under `dir`, recursively, in stable order.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Library code (panic ban applies): under some `src/`, but not a binary
/// root (`src/main.rs`, `src/bin/**`) and not tests/benches/examples.
fn is_library_path(rel: &Path) -> bool {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let in_src = parts.contains(&"src");
    let exempt_dir = ["bin", "tests", "benches", "examples"]
        .iter()
        .any(|d| parts.contains(d));
    let is_main = parts.last() == Some(&"main.rs");
    in_src && !exempt_dir && !is_main
}

struct Violation {
    file: PathBuf,
    line: usize, // 1-based
    rule: &'static str,
    excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt.trim()
        )
    }
}

/// Strip a trailing `// ...` line comment, approximately string-aware: `//`
/// inside a string literal does not start a comment.
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip escaped char
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Per-line mask of code that is compiled into the library proper:
/// `false` for lines inside `#[cfg(test)]`-gated items.
fn non_test_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![true; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim();
        if t.starts_with("#[") && t.contains("cfg(test") {
            // Mask from the attribute through the gated item: either a
            // braced block (match braces) or a single line ending in `;`.
            let mut depth = 0usize;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                mask[j] = false;
                let code = strip_line_comment(lines[j]);
                for b in code.bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                }
                if opened && depth == 0 {
                    break;
                }
                if !opened && code.trim_end().ends_with(';') {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const WAIVER: &str = "gmp:allow-panic";

/// How many lines above a violation may carry its waiver / SAFETY comment.
const ADJACENT: usize = 6;

fn lint_panic_ban(file: &Path, src: &str) -> Vec<Violation> {
    let lines: Vec<&str> = src.lines().collect();
    let mask = non_test_mask(&lines);
    let mut out = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        if !mask[idx] {
            continue;
        }
        let code = strip_line_comment(raw);
        if !PANIC_PATTERNS.iter().any(|p| code.contains(p)) {
            continue;
        }
        let waived = (idx.saturating_sub(ADJACENT)..=idx).any(|k| lines[k].contains(WAIVER));
        if !waived {
            out.push(Violation {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: "panic-ban",
                excerpt: format!(
                    "panicking call in library code (waive with `// {WAIVER} — reason`): {}",
                    raw.trim()
                ),
            });
        }
    }
    out
}

/// `line[i..]` starts the keyword `unsafe` at a word boundary.
fn unsafe_keyword_at(line: &str, i: usize) -> bool {
    let bytes = line.as_bytes();
    let end = i + "unsafe".len();
    if !line[i..].starts_with("unsafe") {
        return false;
    }
    let pre_ok = i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
    let post_ok = end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
    pre_ok && post_ok
}

fn has_unsafe_keyword(code: &str) -> bool {
    code.char_indices()
        .any(|(i, c)| c == 'u' && unsafe_keyword_at(code, i))
}

fn lint_safety_comments(file: &Path, src: &str) -> Vec<Violation> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let code = strip_line_comment(raw);
        let t = code.trim();
        // Comments and attributes (e.g. `#![deny(unsafe_code)]`) are not
        // unsafe code sites.
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") {
            continue;
        }
        if !has_unsafe_keyword(code) {
            continue;
        }
        let documented = (idx.saturating_sub(ADJACENT)..=idx)
            .any(|k| lines[k].contains("SAFETY:") || lines[k].contains("# Safety"));
        if !documented {
            out.push(Violation {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: "undocumented-unsafe",
                excerpt: format!(
                    "`unsafe` without an adjacent `// SAFETY:` comment: {}",
                    raw.trim()
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panics(src: &str) -> usize {
        lint_panic_ban(Path::new("x.rs"), src).len()
    }

    fn unsafes(src: &str) -> usize {
        lint_safety_comments(Path::new("x.rs"), src).len()
    }

    #[test]
    fn flags_bare_unwrap_and_friends() {
        assert_eq!(panics("let x = foo().unwrap();"), 1);
        assert_eq!(panics("let x = foo().expect(\"m\");"), 1);
        assert_eq!(panics("panic!(\"boom\");"), 1);
        assert_eq!(panics("unreachable!()"), 1);
        assert_eq!(panics("unreachable!(\"why\");"), 1);
        assert_eq!(panics("todo!(\"later\")"), 1);
    }

    #[test]
    fn ignores_non_panicking_lookalikes() {
        assert_eq!(panics("let x = foo().unwrap_or(0);"), 0);
        assert_eq!(panics("let x = foo().unwrap_or_else(|| 1);"), 0);
        assert_eq!(panics("let x = r.expect_err(\"m\");"), 0);
    }

    #[test]
    fn waiver_suppresses_within_adjacent_lines() {
        let src = "// gmp:allow-panic — invariant upheld by construction\nfoo().unwrap();";
        assert_eq!(panics(src), 0);
        let same_line = "foo().unwrap(); // gmp:allow-panic — reviewed";
        assert_eq!(panics(same_line), 0);
        let far = format!("// gmp:allow-panic\n{}foo().unwrap();", "\n".repeat(10));
        assert_eq!(panics(&far), 1, "waiver too far away must not apply");
    }

    #[test]
    fn commented_out_code_is_not_flagged() {
        assert_eq!(panics("// foo().unwrap();"), 0);
        assert_eq!(panics("let url = \"https://x?a=b\"; foo().unwrap();"), 1);
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { foo().unwrap(); }
}
";
        assert_eq!(panics(src), 0);
        let gated_fn = "#[cfg(test)]\nfn helper() { foo().unwrap() }\nfn lib() { x.unwrap(); }";
        assert_eq!(panics(gated_fn), 1, "only the ungated unwrap counts");
    }

    #[test]
    fn unsafe_requires_adjacent_safety_comment() {
        assert_eq!(unsafes("let p = unsafe { *ptr };"), 1);
        assert_eq!(
            unsafes("// SAFETY: ptr is valid for reads\nlet p = unsafe { *ptr };"),
            0
        );
        assert_eq!(unsafes("let p = unsafe { *ptr }; // SAFETY: valid"), 0);
    }

    #[test]
    fn unsafe_lint_ignores_comments_attrs_and_identifiers() {
        assert_eq!(unsafes("// unsafe is mentioned here"), 0);
        assert_eq!(unsafes("#![deny(unsafe_op_in_unsafe_fn)]"), 0);
        assert_eq!(unsafes("let unsafe_count = 3;"), 0);
        assert_eq!(
            unsafes("/// # Safety\n/// caller upholds X\npub unsafe fn f() {}"),
            0
        );
    }

    #[test]
    fn library_path_classification() {
        assert!(is_library_path(Path::new("crates/serve/src/engine.rs")));
        assert!(!is_library_path(Path::new(
            "crates/serve/src/bin/gmp_serve.rs"
        )));
        assert!(!is_library_path(Path::new("crates/cli/src/main.rs")));
        assert!(!is_library_path(Path::new("crates/serve/tests/serving.rs")));
        assert!(!is_library_path(Path::new("crates/bench/benches/b.rs")));
    }
}
