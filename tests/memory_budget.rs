//! The device-memory story (§3.1's challenge ii): allocations respect the
//! hard budget, the GMP planner degrades concurrency instead of failing,
//! and genuinely impossible plans error out cleanly.

use gmp_datasets::BlobSpec;
use gmp_gpusim::{Device, DeviceConfig, DeviceError};
use gmp_kernel::{KernelBuffer, ReplacementPolicy};
use gmp_svm::{Backend, MpSvmTrainer, SvmParams, TrainError};

fn blobs(n: usize, classes: usize) -> gmp_datasets::Dataset {
    BlobSpec {
        n,
        dim: 4,
        classes,
        spread: 0.2,
        seed: 51,
    }
    .generate()
}

fn params() -> SvmParams {
    SvmParams::default()
        .with_c(1.0)
        .with_rbf(1.0)
        .with_working_set(16, 8)
}

#[test]
fn peak_memory_never_exceeds_capacity() {
    let device = DeviceConfig::tesla_p100();
    let capacity = device.global_mem_bytes;
    let out = MpSvmTrainer::new(
        params(),
        Backend::Gmp {
            device,
            max_concurrent: 0,
        },
    )
    .train(&blobs(300, 5))
    .expect("train");
    assert!(out.report.peak_device_mem > 0);
    assert!(out.report.peak_device_mem <= capacity);
}

#[test]
fn smaller_device_lowers_concurrency_not_correctness() {
    let data = blobs(400, 6); // 15 binary problems
                              // Plenty of memory: high concurrency.
    let big = MpSvmTrainer::new(
        params(),
        Backend::Gmp {
            device: DeviceConfig::tesla_p100(),
            max_concurrent: 0,
        },
    )
    .train(&data)
    .expect("big device");
    // Constrained device: just enough for data + store + one problem.
    let mut small_cfg = DeviceConfig::tesla_p100();
    small_cfg.global_mem_bytes = 3 * (1 << 20);
    let small = MpSvmTrainer::new(
        params(),
        Backend::Gmp {
            device: small_cfg,
            max_concurrent: 0,
        },
    )
    .train(&data)
    .expect("small device");
    assert!(small.report.concurrency <= big.report.concurrency);
    assert!(big.report.concurrency > 1, "expected concurrent training");
    // Same classifier either way.
    for (a, b) in big.model.binaries.iter().zip(&small.model.binaries) {
        assert!(
            (a.rho - b.rho).abs() < 1e-9,
            "concurrency changed the model"
        );
    }
}

#[test]
fn hopeless_budget_reports_device_error() {
    let err = MpSvmTrainer::new(
        params(),
        Backend::Gmp {
            device: DeviceConfig::tiny_test(128),
            max_concurrent: 0,
        },
    )
    .train(&blobs(200, 3));
    match err {
        Err(TrainError::Device(DeviceError::OutOfMemory { capacity, .. })) => {
            assert_eq!(capacity, 128);
        }
        other => panic!("expected OOM, got {other:?}"),
    }
}

#[test]
fn baseline_frees_per_problem_memory_between_svms() {
    // The GPU baseline loads one binary problem at a time; after training,
    // everything is freed.
    let device_cfg = DeviceConfig::tesla_p100();
    let out = MpSvmTrainer::new(params(), Backend::GpuBaseline { device: device_cfg })
        .train(&blobs(300, 4))
        .expect("baseline");
    // Peak is bounded by roughly one problem's footprint (data + cache +
    // rows), far below what all six problems at once would need.
    let peak = out.report.peak_device_mem;
    assert!(peak > 0);
    assert!(
        peak < 6 * 1024 * 1024,
        "baseline peak {peak} suggests problems were kept resident"
    );
}

#[test]
fn buffer_allocation_capacity_cycle() {
    // Direct device-accounting check at the buffer level.
    let dev = Device::new(DeviceConfig::tiny_test(24 * 1024));
    let b1 = KernelBuffer::new(32, 64, ReplacementPolicy::FifoBatch, Some(&dev)).unwrap();
    assert_eq!(dev.mem_used(), 32 * 64 * 8); // 16 KiB
                                             // A second identical buffer overflows the 24 KiB device.
    let b2 = KernelBuffer::new(32, 64, ReplacementPolicy::FifoBatch, Some(&dev));
    assert!(matches!(b2, Err(DeviceError::OutOfMemory { .. })));
    drop(b1);
    assert_eq!(dev.mem_used(), 0);
    // Now it fits.
    let b3 = KernelBuffer::new(32, 64, ReplacementPolicy::FifoBatch, Some(&dev));
    assert!(b3.is_ok());
}

#[test]
fn explicit_concurrency_cap_is_respected() {
    let out = MpSvmTrainer::new(
        params(),
        Backend::Gmp {
            device: DeviceConfig::tesla_p100(),
            max_concurrent: 2,
        },
    )
    .train(&blobs(300, 5)) // 10 binary problems
    .expect("train");
    assert!(out.report.concurrency <= 2);
}
