//! Integration tests for the beyond-the-paper features: ε-SVR, one-class
//! SVM, preprocessing, grid search, class weights, and CV-calibrated
//! sigmoids, composed end-to-end.

use gmp_datasets::{scale_pair, BlobSpec, PaperDataset};
use gmp_prob::{brier_score, calibration, log_loss};
use gmp_sparse::CsrMatrix;
use gmp_svm::model_selection::GridSearch;
use gmp_svm::predict::error_rate;
use gmp_svm::{
    train_one_class, train_svr, Backend, KernelKind, MpSvmTrainer, OneClassParams, SvmParams,
    SvrParams,
};

#[test]
fn svr_on_scaled_features() {
    // Preprocess -> regression pipeline: scale features to [0,1], fit a
    // smooth function of the scaled inputs.
    let xs: Vec<Vec<f64>> = (0..120)
        .map(|i| vec![i as f64, (i * 7 % 120) as f64])
        .collect();
    let x = CsrMatrix::from_dense(&xs, 2);
    let scaler = gmp_datasets::MinMaxScaler::fit(&x);
    let xs_scaled = scaler.transform(&x);
    let z: Vec<f64> = (0..120)
        .map(|i| {
            let mut d = vec![0.0; 2];
            xs_scaled.row(i).scatter(&mut d);
            (3.0 * d[0]).sin() + d[1]
        })
        .collect();
    let model = train_svr(
        SvrParams {
            kernel: KernelKind::Rbf { gamma: 2.0 },
            c: 10.0,
            epsilon: 0.05,
            ..Default::default()
        },
        &xs_scaled,
        &z,
    );
    assert!(model.converged);
    let pred = model.predict(&xs_scaled);
    let mse: f64 = pred
        .iter()
        .zip(&z)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / z.len() as f64;
    assert!(mse < 0.02, "mse {mse}");
}

#[test]
fn one_class_flags_the_other_class() {
    // Train a one-class model on class 0 only; class-2 points (opposite
    // side of the blob circle) must score lower on average.
    let data = BlobSpec {
        n: 240,
        dim: 2,
        classes: 3,
        spread: 0.15,
        seed: 101,
    }
    .generate();
    let class0 = data.select(&data.class_indices(0));
    let class2 = data.select(&data.class_indices(2));
    let model = train_one_class(
        OneClassParams {
            kernel: KernelKind::Rbf { gamma: 2.0 },
            nu: 0.1,
            tolerance: 1e-3,
            ws_size: 64,
        },
        &class0.x,
    );
    let own: f64 = model.decision_values(&class0.x).iter().sum::<f64>() / class0.n() as f64;
    let other: f64 = model.decision_values(&class2.x).iter().sum::<f64>() / class2.n() as f64;
    assert!(own > other, "own {own} vs other {other}");
    let other_inliers = model
        .predict_inlier(&class2.x)
        .iter()
        .filter(|&&b| b)
        .count();
    assert!(
        other_inliers * 4 < class2.n(),
        "{other_inliers}/{} class-2 points accepted",
        class2.n()
    );
}

#[test]
fn grid_search_then_final_fit() {
    let data = BlobSpec {
        n: 120,
        dim: 2,
        classes: 3,
        spread: 0.25,
        seed: 102,
    }
    .generate();
    let grid = GridSearch {
        c_values: vec![0.1, 2.0],
        gamma_values: vec![0.1, 1.0],
        folds: 3,
        seed: 5,
    };
    let base = SvmParams::default().with_working_set(16, 8);
    let (best, points) = grid
        .run(base, &Backend::libsvm(), &data)
        .expect("grid search");
    assert_eq!(points.len(), 4);
    let out = MpSvmTrainer::new(best, Backend::gmp_default())
        .train(&data)
        .expect("final fit");
    let pred = out
        .model
        .predict(&data.x, &Backend::gmp_default())
        .expect("predict");
    assert!(error_rate(&pred.labels, &data.y) <= points[0].cv_error + 0.05);
}

#[test]
fn probability_metrics_on_real_pipeline() {
    let split = PaperDataset::Connect4.generate_split(0.003);
    let spec = PaperDataset::Connect4.spec();
    let params = SvmParams::default()
        .with_c(spec.c)
        .with_rbf(spec.gamma)
        .with_working_set(32, 16);
    let out = MpSvmTrainer::new(params, Backend::gmp_default())
        .train(&split.train)
        .expect("train");
    let pred = out
        .model
        .predict(&split.test.x, &Backend::gmp_default())
        .expect("predict");
    let ll = log_loss(&pred.probabilities, &split.test.y);
    let bs = brier_score(&pred.probabilities, &split.test.y);
    let cal = calibration(&pred.probabilities, &split.test.y, 10);
    // Better than the uniform baseline on both proper scoring rules.
    assert!(ll < 3.0f64.ln(), "log loss {ll}");
    assert!(bs < 2.0 / 3.0, "brier {bs}");
    assert!(cal.ece <= 1.0 && cal.ece >= 0.0);
}

#[test]
fn weighted_training_through_gmp_backend() {
    // Class weights must flow through the GPU path identically to the CPU
    // path (same classifier).
    let data = BlobSpec {
        n: 120,
        dim: 2,
        classes: 2,
        spread: 0.35,
        seed: 103,
    }
    .generate();
    let params = SvmParams::default()
        .with_c(1.0)
        .with_rbf(1.0)
        .with_working_set(16, 8);
    let cpu = MpSvmTrainer::new(params, Backend::libsvm())
        .with_class_weights(vec![1.0, 3.0])
        .train(&data)
        .expect("cpu");
    let gpu = MpSvmTrainer::new(params, Backend::gmp_default())
        .with_class_weights(vec![1.0, 3.0])
        .train(&data)
        .expect("gpu");
    for (a, b) in cpu.model.binaries.iter().zip(&gpu.model.binaries) {
        assert!((a.rho - b.rho).abs() < 2e-2, "rho {} vs {}", a.rho, b.rho);
    }
}

#[test]
fn cv_sigmoid_end_to_end_probabilities() {
    let split = PaperDataset::Connect4.generate_split(0.002);
    let spec = PaperDataset::Connect4.spec();
    let params = SvmParams::default()
        .with_c(spec.c)
        .with_rbf(spec.gamma)
        .with_working_set(16, 8)
        .with_cv_sigmoid(3);
    let out = MpSvmTrainer::new(params, Backend::cmp_svm())
        .train(&split.train)
        .expect("train");
    let pred = out
        .model
        .predict(&split.test.x, &Backend::cmp_svm())
        .expect("predict");
    for p in &pred.probabilities {
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }
    assert!(error_rate(&pred.labels, &split.test.y) < 0.3);
}

#[test]
fn scale_pair_preserves_learnability() {
    let split = PaperDataset::Webdata.generate_split(0.006);
    let (train_s, test_s, _) = scale_pair(&split.train, &split.test);
    let params = SvmParams::default()
        .with_c(10.0)
        .with_rbf(0.5)
        .with_working_set(32, 16);
    let out = MpSvmTrainer::new(params, Backend::cmp_svm())
        .train(&train_s)
        .expect("train");
    let pred = out
        .model
        .predict(&test_s.x, &Backend::cmp_svm())
        .expect("predict");
    assert!(
        error_rate(&pred.labels, &test_s.y) < 0.15,
        "scaled pipeline error too high"
    );
}
