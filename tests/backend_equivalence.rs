//! The compute-backend acceptance tests:
//!
//! 1. `scalar` is bit-identical to the pre-refactor pipeline — the train
//!    eval count, serialized model text, and prediction outputs are pinned
//!    as FNV-1a 64 hashes captured on the code *before* the backend seam
//!    existed.
//! 2. Every selectable backend produces bit-identical models, predictions,
//!    eval counts, and simulated times (train → `to_text` → `from_text` →
//!    serve-score end to end).
//! 3. Host threading never changes bits, on any backend.

use gmp_integration::{fnv64, golden_backend, golden_dataset, golden_params, predict_hashes};
use gmp_serve::PredictorEngine;
use gmp_svm::{Backend, ComputeBackendKind, MpSvmModel, MpSvmTrainer, TrainOutcome};

fn train_on(compute: ComputeBackendKind, threads: Option<usize>) -> TrainOutcome {
    let data = golden_dataset();
    MpSvmTrainer::new(
        golden_params().with_compute_backend(compute),
        golden_backend(),
    )
    .with_host_threads(threads)
    .train(&data)
    // gmp:allow-panic — test
    .expect("training the pinned scenario")
}

/// Goldens captured on the pre-refactor seed code (single host thread).
const GOLDEN_TRAIN_EVALS: u64 = 4320;
const GOLDEN_MODEL_FNV: u64 = 0xbd67b201923327bc;
const GOLDEN_PREDICT_EVALS: u64 = 900;
const GOLDEN_DV_FNV: u64 = 0xc1b8772dec901b45;
const GOLDEN_PROB_FNV: u64 = 0x95cc2655ffd5d775;
const GOLDEN_LABELS_FNV: u64 = 0xc99086524695a995;

#[test]
fn scalar_backend_matches_pre_refactor_goldens() {
    let data = golden_dataset();
    let out = train_on(ComputeBackendKind::Scalar, Some(1));
    assert_eq!(out.report.kernel_evals, GOLDEN_TRAIN_EVALS);
    assert_eq!(out.report.compute_backend, "scalar");
    let text = out.model.to_text();
    assert_eq!(fnv64(text.bytes()), GOLDEN_MODEL_FNV, "model text drifted");

    let pred = out
        .model
        .predict_with_threads(&data.x, &golden_backend(), Some(1))
        // gmp:allow-panic — test
        .expect("predicting the pinned scenario");
    assert_eq!(pred.report.kernel_evals, GOLDEN_PREDICT_EVALS);
    let (dv, prob, labels) = predict_hashes(&pred);
    assert_eq!(dv, GOLDEN_DV_FNV, "decision values drifted");
    assert_eq!(prob, GOLDEN_PROB_FNV, "probabilities drifted");
    assert_eq!(labels, GOLDEN_LABELS_FNV, "labels drifted");
}

#[test]
fn all_backends_are_bit_identical_end_to_end() {
    // Train, serialize, reparse, and serve-score on each compute backend;
    // every artifact must carry the same bits.
    struct Summary {
        name: String,
        train_evals: u64,
        model_fnv: u64,
        predict_hashes: (u64, u64, u64),
        sim_bits: u64,
    }
    let data = golden_dataset();
    let mut summaries: Vec<Summary> = Vec::new();
    for compute in ComputeBackendKind::ALL {
        let out = train_on(compute, Some(1));
        assert_eq!(out.report.compute_backend, compute.name());
        let text = out.model.to_text();
        // gmp:allow-panic — test
        let reparsed = MpSvmModel::from_text(&text).expect("reparsing serialized model");

        // Offline prediction on the reparsed model.
        let pred = reparsed
            .predict_with_compute_backend(&data.x, &golden_backend(), compute)
            // gmp:allow-panic — test
            .expect("offline prediction");
        assert_eq!(pred.report.compute_backend, compute.name());

        // Serve-score the same rows through the engine (train → text →
        // parse → serve): must match the offline path bit for bit.
        let engine =
            PredictorEngine::with_compute_backend(reparsed, golden_backend(), Some(1), compute)
                // gmp:allow-panic — test
                .expect("engine construction");
        assert_eq!(engine.compute_backend(), compute);
        // gmp:allow-panic — test
        let served = engine.predict_batch(&data.x).expect("serve scoring");
        assert_eq!(served.decision_values, pred.decision_values);
        assert_eq!(served.probabilities, pred.probabilities);
        assert_eq!(served.labels, pred.labels);

        summaries.push(Summary {
            name: compute.name().to_string(),
            train_evals: out.report.kernel_evals,
            model_fnv: fnv64(text.bytes()),
            predict_hashes: predict_hashes(&pred),
            sim_bits: pred.report.sim_s.to_bits(),
        });
    }
    let first = &summaries[0];
    for s in &summaries[1..] {
        assert_eq!(
            s.train_evals, first.train_evals,
            "{}: train eval count diverged",
            s.name
        );
        assert_eq!(
            s.model_fnv, first.model_fnv,
            "{}: model bits diverged",
            s.name
        );
        assert_eq!(
            s.predict_hashes, first.predict_hashes,
            "{}: prediction bits diverged",
            s.name
        );
        assert_eq!(
            s.sim_bits, first.sim_bits,
            "{}: simulated time diverged",
            s.name
        );
    }
}

#[test]
fn host_threads_never_change_bits() {
    let data = golden_dataset();
    for compute in ComputeBackendKind::ALL {
        let single = train_on(compute, Some(1));
        let multi = train_on(compute, Some(4));
        assert_eq!(
            single.model.to_text(),
            multi.model.to_text(),
            "{}: threading changed the model",
            compute.name()
        );
        let p1 = single
            .model
            .predict_with_threads(&data.x, &golden_backend(), Some(1))
            // gmp:allow-panic — test
            .expect("single-thread prediction");
        let p4 = multi
            .model
            .predict_with_threads(&data.x, &golden_backend(), Some(4))
            // gmp:allow-panic — test
            .expect("multi-thread prediction");
        assert_eq!(
            predict_hashes(&p1),
            predict_hashes(&p4),
            "{}",
            compute.name()
        );
    }
}

#[test]
fn unshared_prediction_path_agrees_across_backends() {
    // The per-binary (unshared) scoring path also rides the backend seam.
    let data = golden_dataset();
    let out = train_on(ComputeBackendKind::Scalar, Some(1));
    let mut hashes = Vec::new();
    for compute in ComputeBackendKind::ALL {
        let pred = out
            .model
            .predict_with_compute_backend(&data.x, &Backend::libsvm(), compute)
            // gmp:allow-panic — test
            .expect("unshared prediction");
        hashes.push(predict_hashes(&pred));
    }
    assert!(hashes.windows(2).all(|w| w[0] == w[1]));
}
