//! Model persistence: trained models survive the text format round-trip
//! and predict identically afterwards.

use gmp_datasets::BlobSpec;
use gmp_svm::{Backend, MpSvmModel, MpSvmTrainer, SvmParams};

fn trained(classes: usize, probability: bool) -> (gmp_svm::TrainOutcome, gmp_datasets::Dataset) {
    let data = BlobSpec {
        n: 60 * classes,
        dim: 3,
        classes,
        spread: 0.25,
        seed: 61,
    }
    .generate();
    let mut params = SvmParams::default()
        .with_c(2.0)
        .with_rbf(0.8)
        .with_working_set(32, 16);
    params.probability = probability;
    let out = MpSvmTrainer::new(params, Backend::gmp_default())
        .train(&data)
        .expect("train");
    (out, data)
}

#[test]
fn roundtrip_preserves_predictions() {
    let (out, data) = trained(3, true);
    let text = out.model.to_text();
    let loaded = MpSvmModel::from_text(&text).expect("parse");
    let backend = Backend::gmp_default();
    let a = out
        .model
        .predict(&data.x, &backend)
        .expect("predict original");
    let b = loaded.predict(&data.x, &backend).expect("predict loaded");
    assert_eq!(a.labels, b.labels);
    for (pa, pb) in a.probabilities.iter().zip(&b.probabilities) {
        for (x, y) in pa.iter().zip(pb) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}

#[test]
fn roundtrip_preserves_structure() {
    let (out, _) = trained(4, true);
    let loaded = MpSvmModel::from_text(&out.model.to_text()).expect("parse");
    assert_eq!(loaded.classes, 4);
    assert_eq!(loaded.binaries.len(), 6);
    assert_eq!(loaded.sv_pool.nrows(), out.model.n_sv());
    assert_eq!(loaded.kernel, out.model.kernel);
    for (a, b) in out.model.binaries.iter().zip(&loaded.binaries) {
        assert_eq!((a.s, a.t), (b.s, b.t));
        assert_eq!(a.sv_idx, b.sv_idx);
        assert_eq!(a.rho, b.rho);
    }
}

#[test]
fn roundtrip_without_probability() {
    let (out, data) = trained(2, false);
    assert!(!out.model.has_probability());
    let loaded = MpSvmModel::from_text(&out.model.to_text()).expect("parse");
    assert!(!loaded.has_probability());
    let backend = Backend::gmp_default();
    let a = out.model.predict(&data.x, &backend).expect("predict");
    let b = loaded.predict(&data.x, &backend).expect("predict");
    assert_eq!(a.labels, b.labels);
    assert!(a.probabilities.is_empty() && b.probabilities.is_empty());
}

#[test]
fn corrupted_models_rejected_with_context() {
    let (out, _) = trained(2, true);
    let text = out.model.to_text();
    // Truncate mid-file.
    let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
    assert!(MpSvmModel::from_text(&truncated).is_err());
    // Corrupt a coefficient index beyond the pool.
    let bad = text.replace("binary 0 1", "binary 0 999");
    // Either parse error or structurally-valid-but-odd pair id; parsing the
    // pair id itself succeeds, so corrupt the pool size instead.
    let _ = bad;
    let bad_pool = text.replacen("sv_pool", "sv_pool_oops", 1);
    let err = MpSvmModel::from_text(&bad_pool).unwrap_err();
    assert!(
        err.line >= 4,
        "error should point at the sv_pool line: {err}"
    );
}

#[test]
fn file_roundtrip() {
    let (out, data) = trained(3, true);
    let path = std::env::temp_dir().join("gmp_model_roundtrip_test.gmpsvm");
    std::fs::write(&path, out.model.to_text()).expect("write");
    let loaded =
        MpSvmModel::from_text(&std::fs::read_to_string(&path).expect("read")).expect("parse");
    let backend = Backend::gmp_default();
    let a = out.model.predict(&data.x, &backend).expect("predict");
    let b = loaded.predict(&data.x, &backend).expect("predict");
    assert_eq!(a.labels, b.labels);
    std::fs::remove_file(&path).ok();
}
