//! Table 4 at test granularity: the batched GMP-SVM solver and the classic
//! LibSVM-style solver reach the same optimum — same dual objective, same
//! bias, same decision values — across datasets and hyper-parameters.

use gmp_datasets::{BlobSpec, PaperDataset};
use gmp_gpusim::CpuExecutor;
use gmp_kernel::{BufferedRows, KernelKind, KernelOracle, ReplacementPolicy};
use gmp_smo::{BatchedParams, BatchedSmoSolver, ClassicSmoSolver, SmoParams, SolverResult};
use gmp_svm::{Backend, MpSvmTrainer, SvmParams};
use std::sync::Arc;

fn exec() -> CpuExecutor {
    CpuExecutor::xeon(1)
}

fn solve_both(
    x: &gmp_sparse::CsrMatrix,
    y: &[f64],
    kind: KernelKind,
    c: f64,
) -> (SolverResult, SolverResult) {
    let oracle = Arc::new(KernelOracle::new(Arc::new(x.clone()), kind));
    let mut rows_c =
        BufferedRows::new(oracle.clone(), x.nrows(), ReplacementPolicy::Lru, None).unwrap();
    let classic = ClassicSmoSolver::new(SmoParams::with_c(c)).solve(y, &mut rows_c, &exec());
    let mut rows_b = BufferedRows::new(oracle, 48, ReplacementPolicy::FifoBatch, None).unwrap();
    let batched = BatchedSmoSolver::new(BatchedParams {
        base: SmoParams::with_c(c),
        ws_size: 48,
        q: 24,
        inner_relax: 0.1,
        max_inner: 512,
    })
    .solve(y, &mut rows_b, &exec());
    (classic, batched)
}

fn assert_same_optimum(classic: &SolverResult, batched: &SolverResult, tag: &str) {
    assert!(classic.converged, "{tag}: classic unconverged");
    assert!(batched.converged, "{tag}: batched unconverged");
    let obj_tol = 2e-2 * classic.objective.abs().max(1.0);
    assert!(
        (classic.objective - batched.objective).abs() < obj_tol,
        "{tag}: objective {} vs {}",
        classic.objective,
        batched.objective
    );
    assert!(
        (classic.rho - batched.rho).abs() < 2e-2,
        "{tag}: rho {} vs {}",
        classic.rho,
        batched.rho
    );
    // Decision values on the training set agree sign-wise for confidently
    // classified points.
    let mut disagreements = 0;
    for i in 0..classic.f.len() {
        let vc = classic.f[i] - classic.rho;
        let vb = batched.f[i] - batched.rho;
        if vc.abs() > 0.1 && vc.signum() != vb.signum() {
            disagreements += 1;
        }
    }
    assert!(
        disagreements * 50 <= classic.f.len(),
        "{tag}: {disagreements} sign disagreements of {}",
        classic.f.len()
    );
}

#[test]
fn equivalence_across_hyperparameters() {
    // The §4.1 sweep, scaled down: C in {0.1, 1, 10}, gamma in {0.1, 1}.
    let data = BlobSpec {
        n: 140,
        dim: 3,
        classes: 2,
        spread: 0.35,
        seed: 31,
    }
    .generate();
    let y: Vec<f64> = data
        .y
        .iter()
        .map(|&c| if c == 0 { 1.0 } else { -1.0 })
        .collect();
    for c in [0.1, 1.0, 10.0] {
        for gamma in [0.1, 1.0] {
            let (classic, batched) = solve_both(&data.x, &y, KernelKind::Rbf { gamma }, c);
            assert_same_optimum(&classic, &batched, &format!("C={c} gamma={gamma}"));
        }
    }
}

#[test]
fn equivalence_on_sparse_text_like_data() {
    let data = PaperDataset::Rcv1.generate(0.008);
    let y: Vec<f64> = data
        .y
        .iter()
        .map(|&c| if c == 0 { 1.0 } else { -1.0 })
        .collect();
    let spec = PaperDataset::Rcv1.spec();
    let (classic, batched) = solve_both(&data.x, &y, KernelKind::Rbf { gamma: spec.gamma }, spec.c);
    assert_same_optimum(&classic, &batched, "rcv1");
}

#[test]
fn equivalence_with_linear_kernel() {
    let data = BlobSpec {
        n: 100,
        dim: 4,
        classes: 2,
        spread: 0.3,
        seed: 32,
    }
    .generate();
    let y: Vec<f64> = data
        .y
        .iter()
        .map(|&c| if c == 0 { 1.0 } else { -1.0 })
        .collect();
    let (classic, batched) = solve_both(&data.x, &y, KernelKind::Linear, 1.0);
    assert_same_optimum(&classic, &batched, "linear");
}

#[test]
fn full_pipeline_models_agree() {
    // End-to-end Table 4: the trained multi-class models of the LibSVM
    // backend and GMP-SVM backend produce the same decisions.
    let split = PaperDataset::Connect4.generate_split(0.0015);
    let spec = PaperDataset::Connect4.spec();
    let params = SvmParams::default()
        .with_c(spec.c)
        .with_rbf(spec.gamma)
        .with_working_set(32, 16);
    let lib = MpSvmTrainer::new(params, Backend::libsvm())
        .train(&split.train)
        .expect("libsvm");
    let gmp = MpSvmTrainer::new(params, Backend::gmp_default())
        .train(&split.train)
        .expect("gmp");
    for (a, b) in lib.model.binaries.iter().zip(&gmp.model.binaries) {
        assert!(
            (a.rho - b.rho).abs() < 2e-2,
            "pair ({},{}): rho {} vs {}",
            a.s,
            a.t,
            a.rho,
            b.rho
        );
    }
    let pl = lib
        .model
        .predict(&split.test.x, &Backend::libsvm())
        .expect("predict lib");
    let pg = gmp
        .model
        .predict(&split.test.x, &Backend::gmp_default())
        .expect("predict gmp");
    let flips = pl
        .labels
        .iter()
        .zip(&pg.labels)
        .filter(|(a, b)| a != b)
        .count();
    assert!(
        flips * 20 <= split.test.n(),
        "{flips} label flips of {}",
        split.test.n()
    );
}

#[test]
fn batched_solver_insensitive_to_buffer_policy() {
    // The optimum must not depend on the replacement policy (only the
    // cost does) — the correctness side of the FIFO/LRU ablation.
    let data = BlobSpec {
        n: 120,
        dim: 2,
        classes: 2,
        spread: 0.4,
        seed: 33,
    }
    .generate();
    let y: Vec<f64> = data
        .y
        .iter()
        .map(|&c| if c == 0 { 1.0 } else { -1.0 })
        .collect();
    let oracle = Arc::new(KernelOracle::new(
        Arc::new(data.x.clone()),
        KernelKind::Rbf { gamma: 0.5 },
    ));
    let params = BatchedParams {
        base: SmoParams::with_c(1.0),
        ws_size: 16,
        q: 8,
        inner_relax: 0.1,
        max_inner: 256,
    };
    let mut results = Vec::new();
    for policy in [ReplacementPolicy::FifoBatch, ReplacementPolicy::Lru] {
        let mut rows = BufferedRows::new(oracle.clone(), 24, policy, None).unwrap();
        results.push(BatchedSmoSolver::new(params).solve(&y, &mut rows, &exec()));
    }
    assert!(
        (results[0].objective - results[1].objective).abs()
            < 1e-2 * results[0].objective.abs().max(1.0),
        "objective diverges across buffer policies: {} vs {}",
        results[0].objective,
        results[1].objective
    );
}
