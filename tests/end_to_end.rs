//! Cross-crate integration: the full MP-SVM pipeline on paper-dataset
//! stand-ins across every backend.

use gmp_datasets::PaperDataset;
use gmp_svm::predict::error_rate;
use gmp_svm::{Backend, MpSvmTrainer, SvmParams};

fn tiny_params(ds: PaperDataset) -> SvmParams {
    let spec = ds.spec();
    let mut p = SvmParams::default()
        .with_c(spec.c)
        .with_rbf(spec.gamma)
        .with_working_set(32, 16);
    p.cache_rows = 32;
    p
}

fn all_backends() -> Vec<Backend> {
    vec![
        Backend::libsvm(),
        Backend::libsvm_openmp(),
        Backend::gpu_baseline_default(),
        Backend::cmp_svm(),
        Backend::gmp_default(),
    ]
}

#[test]
fn connect4_standin_all_backends() {
    let split = PaperDataset::Connect4.generate_split(0.002);
    let params = tiny_params(PaperDataset::Connect4);
    let mut test_errors = Vec::new();
    for backend in all_backends() {
        let out = MpSvmTrainer::new(params, backend.clone())
            .train(&split.train)
            .unwrap_or_else(|e| panic!("{}: {e}", backend.label()));
        assert!(
            out.report.all_converged(),
            "{} unconverged",
            backend.label()
        );
        assert_eq!(out.model.binaries.len(), 3);
        let pred = out.model.predict(&split.test.x, &backend).unwrap();
        let err = error_rate(&pred.labels, &split.test.y);
        assert!(err < 0.5, "{}: test error {err}", backend.label());
        test_errors.push(err);
    }
    // Every backend trains (numerically) the same classifier: test error
    // must agree to within a couple of flips.
    let spread = test_errors.iter().cloned().fold(0.0f64, f64::max)
        - test_errors.iter().cloned().fold(1.0f64, f64::min);
    assert!(
        spread < 0.05,
        "backend test errors diverge: {test_errors:?}"
    );
}

#[test]
fn mnist_standin_probabilities_are_calibratedish() {
    let split = PaperDataset::Mnist.generate_split(0.002);
    let params = tiny_params(PaperDataset::Mnist);
    let backend = Backend::gmp_default();
    let out = MpSvmTrainer::new(params, backend.clone())
        .train(&split.train)
        .expect("train");
    let pred = out.model.predict(&split.test.x, &backend).expect("predict");
    assert_eq!(pred.probabilities.len(), split.test.n());
    let mut correct = 0.0;
    let mut conf_total = 0.0;
    for (i, p) in pred.probabilities.iter().enumerate() {
        assert_eq!(p.len(), 10);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "probabilities must sum to 1");
        conf_total += p.iter().cloned().fold(0.0f64, f64::max);
        if pred.labels[i] == split.test.y[i] {
            correct += 1.0;
        }
    }
    // With 10 classes and tiny calibration sets, pairwise coupling
    // dilutes confidence (36 of 45 pairs are uninformative for any given
    // instance); require it to sit well above the uniform baseline 1/k
    // while accuracy stays high.
    let acc = correct / split.test.n() as f64;
    let mean_conf = conf_total / split.test.n() as f64;
    assert!(acc > 0.8, "accuracy {acc}");
    assert!(
        mean_conf > 0.3 && mean_conf <= 1.0,
        "mean confidence {mean_conf} not informative (uniform = 0.1)"
    );
}

#[test]
fn gmp_beats_baseline_on_multiclass_shape() {
    // The core paper claim at integration level: on a multi-class dataset
    // GMP-SVM does less kernel work and finishes sooner (simulated) than
    // the GPU baseline, with the same classifier quality.
    let split = PaperDataset::News20.generate_split(0.01);
    let params = tiny_params(PaperDataset::News20);
    let base = MpSvmTrainer::new(params, Backend::gpu_baseline_default())
        .train(&split.train)
        .expect("baseline");
    let gmp = MpSvmTrainer::new(params, Backend::gmp_default())
        .train(&split.train)
        .expect("gmp");
    assert!(
        gmp.report.sim_s < base.report.sim_s,
        "gmp {} vs baseline {}",
        gmp.report.sim_s,
        base.report.sim_s
    );
    // Prediction with SV sharing also wins.
    let pb = base
        .model
        .predict(&split.test.x, &Backend::gpu_baseline_default())
        .expect("predict baseline");
    let pg = gmp
        .model
        .predict(&split.test.x, &Backend::gmp_default())
        .expect("predict gmp");
    assert!(pg.report.sim_s < pb.report.sim_s);
    assert!(pg.report.kernel_evals <= pb.report.kernel_evals);
    // Same quality.
    let eb = error_rate(&pb.labels, &split.test.y);
    let eg = error_rate(&pg.labels, &split.test.y);
    assert!((eb - eg).abs() < 0.05, "baseline {eb} vs gmp {eg}");
}

#[test]
fn binary_dataset_single_pair_pipeline() {
    let split = PaperDataset::Adult.generate_split(0.004);
    let params = tiny_params(PaperDataset::Adult);
    let backend = Backend::gmp_default();
    let out = MpSvmTrainer::new(params, backend.clone())
        .train(&split.train)
        .expect("train");
    assert_eq!(out.model.binaries.len(), 1);
    let pred = out.model.predict(&split.test.x, &backend).expect("predict");
    for p in &pred.probabilities {
        assert_eq!(p.len(), 2);
        assert!((p[0] + p[1] - 1.0).abs() < 1e-9);
    }
}

#[test]
fn cross_validation_runs_end_to_end() {
    let data = PaperDataset::Connect4.generate(0.0015);
    let params = tiny_params(PaperDataset::Connect4);
    let cv = gmp_svm::cv::cross_validate(params, Backend::gmp_default(), &data, 3, 11).expect("cv");
    assert_eq!(cv.fold_errors.len(), 3);
    assert!(cv.mean_error < 0.6, "cv error {}", cv.mean_error);
}

#[test]
fn libsvm_format_to_pipeline() {
    // Parse LibSVM text -> train -> predict: the external-data path.
    let text = "\
0 1:1.0 2:0.2\n0 1:0.9 3:0.1\n0 1:1.1 2:0.1\n0 1:0.8\n0 1:1.0 4:0.3\n0 1:0.95 2:0.25\n\
1 2:1.0 3:0.2\n1 2:0.9 4:0.1\n1 2:1.1\n1 2:0.8 3:0.3\n1 2:1.0 4:0.2\n1 2:0.85 3:0.15\n\
2 3:1.0 4:0.1\n2 3:0.9\n2 1:0.1 3:1.1\n2 3:0.8 4:0.25\n2 3:1.0\n2 1:0.2 3:0.95\n";
    let data = gmp_datasets::parse_libsvm(text, 0).expect("parse");
    assert_eq!(data.n_classes(), 3);
    let params = SvmParams::default()
        .with_c(10.0)
        .with_rbf(1.0)
        .with_working_set(8, 4);
    let out = MpSvmTrainer::new(params, Backend::gmp_default())
        .train(&data)
        .expect("train");
    let pred = out
        .model
        .predict(&data.x, &Backend::gmp_default())
        .expect("predict");
    let err = error_rate(&pred.labels, &data.y);
    assert!(err < 0.2, "training error {err}");
}
