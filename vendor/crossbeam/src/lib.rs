//! Offline stand-in for the `crossbeam` crate.
//!
//! This container has no crates.io access, so the workspace vendors the
//! one piece of crossbeam it uses — `crossbeam::thread::scope` — as a thin
//! wrapper over `std::thread::scope` (stable since Rust 1.63). The API
//! shape matches crossbeam: the closure and each spawned thread receive a
//! `&Scope`, `spawn` takes `FnOnce(&Scope) -> T`, and `scope` returns
//! `Err` (instead of panicking) when an unjoined child thread panicked.

/// Scoped threads: borrow non-`'static` data from the spawning stack frame.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked scope: the boxed panic value.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to the scope, used to spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// again so workers can themselves spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. A panic in an unjoined child (or in `f` itself)
    /// surfaces as `Err`, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn workers_borrow_stack_data() {
            let data = [1u64, 2, 3, 4];
            let total = scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_from_worker() {
            let n = scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 7);
        }

        #[test]
        fn unjoined_panic_becomes_err() {
            let r = scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
