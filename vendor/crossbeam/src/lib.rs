//! Offline stand-in for the `crossbeam` crate.
//!
//! This container has no crates.io access, so the workspace vendors the
//! pieces of crossbeam it uses:
//!
//! * `crossbeam::thread::scope` — a thin wrapper over `std::thread::scope`
//!   (stable since Rust 1.63). The API shape matches crossbeam: the
//!   closure and each spawned thread receive a `&Scope`, `spawn` takes
//!   `FnOnce(&Scope) -> T`, and `scope` returns `Err` (instead of
//!   panicking) when an unjoined child thread panicked.
//! * `crossbeam::channel::bounded` — a bounded MPMC channel built on
//!   `Mutex` + `Condvar`, with crossbeam's disconnect semantics (recv on
//!   an empty channel whose senders are all gone fails; queued messages
//!   survive sender drop). `bounded(0)` rendezvous channels are not
//!   supported; callers need a capacity of at least 1.

/// Scoped threads: borrow non-`'static` data from the spawning stack frame.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked scope: the boxed panic value.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to the scope, used to spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// again so workers can themselves spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. A panic in an unjoined child (or in `f` itself)
    /// surfaces as `Err`, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn workers_borrow_stack_data() {
            let data = [1u64, 2, 3, 4];
            let total = scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_from_worker() {
            let n = scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 7);
        }

        #[test]
        fn unjoined_panic_becomes_err() {
            let r = scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}

/// Bounded multi-producer multi-consumer channels (the `crossbeam-channel`
/// API subset the workspace uses).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error of a blocking send: all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error of a non-blocking send attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is handed back.
        Full(T),
        /// All receivers are gone; the message is handed back.
        Disconnected(T),
    }

    /// Error of a blocking receive: the channel is empty and all senders
    /// are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error of a non-blocking receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and all senders are gone.
        Disconnected,
    }

    /// Error of a bounded-wait receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with nothing queued.
        Timeout,
        /// Empty and all senders are gone.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        cap: usize,
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; cloneable. Dropping the last clone disconnects the
    /// channel for receivers (once drained).
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable. Dropping the last clone disconnects the
    /// channel for senders.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Create a bounded channel holding at most `cap` queued messages.
    /// `cap` must be at least 1 (rendezvous channels are not supported by
    /// this stand-in).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded(0) rendezvous channels are unsupported");
        let shared = Arc::new(Shared {
            cap,
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap.min(1024)),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Block until the message is queued (or every receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.0.cap {
                    st.queue.push_back(value);
                    drop(st);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self.0.not_full.wait(st).unwrap();
            }
        }

        /// Queue the message only if there is room right now.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.queue.len() >= self.0.cap {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives (or the channel is empty with all
        /// senders gone).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap();
            }
        }

        /// Take a message only if one is queued right now.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Block until a message arrives, the senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.0.not_empty.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake receivers parked on an empty queue so they observe
                // the disconnect.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Wake senders parked on a full queue so they observe the
                // disconnect.
                self.0.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = bounded(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn try_send_full() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn disconnect_drains_then_errors() {
            let (tx, rx) = bounded(4);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = bounded(2);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
            assert_eq!(tx.try_send(2), Err(TrySendError::Disconnected(2)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = bounded::<u32>(1);
            let r = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn blocking_send_unblocks_on_recv() {
            let (tx, rx) = bounded(1);
            tx.send(0).unwrap();
            let t = std::thread::spawn(move || tx.send(1));
            std::thread::sleep(Duration::from_millis(5));
            assert_eq!(rx.recv(), Ok(0));
            t.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Ok(1));
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = bounded(8);
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..25u64 {
                            tx.send(p * 100 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap().len()).sum();
            assert_eq!(total, 100);
        }
    }
}
