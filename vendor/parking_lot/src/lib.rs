//! Offline stand-in for the `parking_lot` crate.
//!
//! This container has no crates.io access, so the workspace vendors the
//! subset of the `parking_lot` API it uses, implemented on `std::sync`
//! primitives. The semantic difference that matters to callers is
//! preserved: `lock()` returns the guard directly (no poisoning `Result`),
//! and a poisoned std lock is recovered instead of propagated — matching
//! parking_lot's poison-free behaviour.

use std::sync::{self, PoisonError};

/// Mutual exclusion primitive (no poisoning, like `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock (no poisoning, like `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified; the guard is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Move the guard out, wait, move it back — mirrors parking_lot's
        // `wait(&mut guard)` signature on top of std's by-value API.
        take_mut(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Replace `*slot` through a by-value function, without `Default`.
fn take_mut<T, F: FnOnce(T) -> T>(slot: &mut T, f: F) {
    // SAFETY: `ptr::read` temporarily duplicates the value; `f` consumes
    // the copy and its result is written back before anyone can observe
    // the hole. `f` (a condvar wait) only panics on unwind-through-FFI,
    // in which case we abort rather than expose the duplicated value.
    unsafe {
        let old = std::ptr::read(slot);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        assert!(*started);
        h.join().unwrap();
    }
}
