//! Offline stand-in for the `serde` crate.
//!
//! The workspace uses serde purely as `#[derive(Serialize, Deserialize)]`
//! annotations on plain-data structs; no serializer is ever invoked
//! (model/measurement persistence is hand-rolled text). This stand-in
//! provides the two names in both namespaces — blanket-implemented marker
//! traits plus no-op derive macros — so all existing annotations and any
//! future `T: Serialize` bounds compile without crates.io access.

// The derive macros live in the macro namespace, the traits below in the
// type namespace; like real serde, both are importable under one name.
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; every type qualifies.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; every type qualifies.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Sample {
        a: u32,
        b: Vec<f64>,
    }

    #[derive(Debug, Serialize, Deserialize)]
    #[allow(dead_code)]
    enum Variant {
        A,
        B(u8),
    }

    fn assert_bounds<T: Serialize>() {}

    #[test]
    fn derives_and_bounds_compile() {
        assert_bounds::<Sample>();
        assert_bounds::<Variant>();
        let s = Sample { a: 1, b: vec![2.0] };
        assert_eq!(s.clone(), s);
    }
}
