//! Offline stand-in for the `rand` crate.
//!
//! This container has no crates.io access, so the workspace vendors the
//! subset of the rand 0.8 API it uses: `StdRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`, and `seq::SliceRandom::shuffle`. The generator is
//! xoshiro256** seeded through splitmix64 — deterministic for a given
//! seed, which is all the workspace relies on (synthetic datasets and CV
//! fold shuffles are always seeded explicitly).

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanded via splitmix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw words.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` by widening multiply (Lemire reduction
/// without the rejection step — bias is ≤ n/2^64, irrelevant here).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator, seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// The "small" generator is the same algorithm in this stand-in.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly pick one element, `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let v = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&v));
        }
        for _ in 0..200 {
            let v = rng.gen_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice unchanged");
    }
}
