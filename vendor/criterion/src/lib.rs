//! Offline stand-in for the `criterion` crate.
//!
//! This container has no crates.io access, so the workspace vendors the
//! criterion surface its benches use: `Criterion`, benchmark groups,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Under `cargo bench`
//! (cargo passes `--bench` to harness-less targets) it samples wall-clock
//! time and prints mean/min/max per benchmark. Under `cargo test` the
//! benchmark bodies are compile-checked but not executed, keeping the
//! tier-1 test run fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    bench_mode: bool,
}

impl Criterion {
    /// Detect how cargo invoked us: `cargo bench` passes `--bench` to
    /// `harness = false` targets, `cargo test` does not.
    pub fn configure_from_args(mut self) -> Self {
        self.bench_mode = std::env::args().any(|a| a == "--bench");
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let bench_mode = self.bench_mode;
        run_one(bench_mode, name, 10, None, f);
        self
    }

    /// Compatibility no-op (real criterion prints a summary here).
    pub fn final_summary(&self) {}
}

/// A named set of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the work per iteration so rates can be reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` against `input` under the given id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let bench_mode = self._criterion.bench_mode;
        run_one(bench_mode, &label, self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark `f` under the given name.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        let bench_mode = self._criterion.bench_mode;
        run_one(bench_mode, &label, self.sample_size, self.throughput, |b| {
            f(b)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    bench_mode: bool,
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if !bench_mode {
        println!("{label}: skipped (run under `cargo bench` to measure)");
        return;
    }
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    if samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:.3e} elem/s", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:.3e} B/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "{label}: mean {:.6} s  (min {:.6} s, max {:.6} s, {} samples){rate}",
        mean,
        min,
        max,
        samples.len()
    );
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` once per timed iteration (one iteration per sample here).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a `name/parameter` pair.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Opaque value barrier; re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_api_compiles_and_runs() {
        // Test mode: bodies are skipped; bench mode: timed.
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_mode = true;
        sample_bench(&mut c);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn macro_generated_group_runs() {
        benches();
    }
}
