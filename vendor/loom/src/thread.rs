//! Model-aware thread spawn/join. Inside a `model()` run, spawned threads
//! become scheduler-controlled participants; outside, plain `std::thread`.

use crate::rt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

pub struct JoinHandle<T> {
    /// `Some` when the thread is model-controlled.
    model: Option<(Arc<rt::Rt>, usize)>,
    inner: std::thread::JoinHandle<Option<T>>,
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => {
            let inner = std::thread::Builder::new()
                .spawn(move || Some(f()))
                .expect("spawn thread");
            JoinHandle { model: None, inner }
        }
        Some((rt, spawner)) => {
            let tid = rt.register_thread();
            let rt2 = Arc::clone(&rt);
            let inner = std::thread::Builder::new()
                .name(format!("loom-{tid}"))
                .spawn(move || {
                    rt::set_ctx(Arc::clone(&rt2), tid);
                    rt2.wait_until_scheduled(tid);
                    match catch_unwind(AssertUnwindSafe(f)) {
                        Ok(v) => {
                            rt2.thread_finished(tid, None);
                            Some(v)
                        }
                        Err(payload) => {
                            rt2.thread_finished(tid, Some(crate::payload_message(&payload)));
                            None
                        }
                    }
                })
                .expect("spawn loom thread");
            // Registering the thread is itself a decision point: the child
            // may run before the spawner's next operation.
            rt.yield_point(spawner);
            JoinHandle {
                model: Some((rt, tid)),
                inner,
            }
        }
    }
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((rt, tid)) = &self.model {
            if let Some((_, me)) = rt::current() {
                rt.join_wait(me, *tid);
            }
        }
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("loom-controlled thread panicked")),
            Err(e) => Err(e),
        }
    }
}

/// Offer the scheduler an explicit interleaving point.
pub fn yield_now() {
    match rt::current() {
        None => std::thread::yield_now(),
        Some((rt, tid)) => rt.yield_point(tid),
    }
}
