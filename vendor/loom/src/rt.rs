//! The model-checking runtime: a cooperative scheduler that serializes all
//! controlled threads and enumerates their interleavings depth-first.
//!
//! Exactly one controlled thread holds the "active token" at any moment; all
//! others are parked on the runtime condvar. Every synchronization operation
//! (lock, unlock, condvar wait/notify, atomic access, spawn, join, explicit
//! yield) is a *decision point*: the active thread hands the token to the
//! scheduler, which picks the next runnable thread. The sequence of picks is
//! recorded; after the iteration completes, the deepest decision with an
//! untried alternative is advanced and the closure re-runs with that prefix
//! replayed. A CHESS-style preemption bound keeps the space tractable:
//! schedules with more than `preemption_bound` involuntary context switches
//! are pruned (voluntary switches — blocking, finishing — are always free).
//!
//! If at any decision point no thread is runnable but some are still live,
//! the schedule is a deadlock (this is also what catches lost wakeups) and
//! the iteration fails; failures are reported by `model()` with the decision
//! path that produced them.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Panic payload used to unwind parked threads once the model has already
/// failed elsewhere; filtered out of failure reporting.
pub(crate) const ABORT_MARKER: &str = "__loom_model_abort__";

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    /// Waiting to acquire the mutex at this address.
    BlockedMutex(usize),
    /// Waiting on a condvar (will reacquire `mutex` once notified).
    BlockedCondvar {
        cv: usize,
        mutex: usize,
    },
    /// Waiting for the given thread to finish.
    BlockedJoin(usize),
    Finished,
}

pub(crate) struct RtState {
    pub(crate) threads: Vec<Status>,
    /// Thread currently holding the active token.
    pub(crate) active: usize,
    /// Unfinished thread count; the iteration is over when this hits zero.
    pub(crate) live: usize,
    /// Choices to replay from the previous iteration (decision indices).
    prefix: Vec<usize>,
    /// (chosen index, number of options) at each decision point this run.
    pub(crate) decisions: Vec<(usize, usize)>,
    depth: usize,
    preemptions: usize,
    preemption_bound: usize,
    pub(crate) failure: Option<String>,
    /// Model-level mutex ownership, keyed by the mutex's address.
    mutex_owner: HashMap<usize, usize>,
}

pub(crate) struct Rt {
    pub(crate) state: StdMutex<RtState>,
    pub(crate) cv: StdCondvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

/// The runtime handle + thread id of the calling thread, if it is a
/// loom-controlled thread inside an active `model()` run.
pub(crate) fn current() -> Option<(Arc<Rt>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(rt: Arc<Rt>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((rt, tid)));
}

/// Record a model failure at panic time — called from the panic hook,
/// *before* the panicking thread starts unwinding. Waking every parked
/// thread here matters: destructors that run during the unwind may need
/// raw locks currently held by parked threads, which only release them by
/// aborting out once they observe the failure.
pub(crate) fn record_early_failure(msg: &str) {
    if msg.contains(ABORT_MARKER) {
        return;
    }
    if let Some((rt, _tid)) = current() {
        let mut st = lock_poison_free(&rt.state);
        if st.failure.is_none() {
            st.failure = Some(msg.to_string());
        }
        drop(st);
        rt.cv.notify_all();
    }
}

fn lock_poison_free(m: &StdMutex<RtState>) -> StdMutexGuard<'_, RtState> {
    // A controlled thread can panic (failed assertion) while another thread
    // is about to touch runtime state; poisoning is irrelevant to us.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Rt {
    pub(crate) fn new(prefix: Vec<usize>, preemption_bound: usize) -> Self {
        Rt {
            state: StdMutex::new(RtState {
                threads: vec![Status::Runnable],
                active: 0,
                live: 1,
                prefix,
                decisions: Vec::new(),
                depth: 0,
                preemptions: 0,
                preemption_bound,
                failure: None,
                mutex_owner: HashMap::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    /// Record a decision and hand the active token to the chosen thread.
    /// Called with the state lock held by the thread relinquishing control
    /// (`prev`), which may have just blocked or finished.
    fn pick_next(&self, st: &mut RtState, prev: usize) {
        if st.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        let mut options: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == Status::Runnable)
            .collect();
        if options.is_empty() {
            if st.live > 0 {
                let stuck: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !matches!(s, Status::Finished))
                    .map(|(t, s)| format!("thread {t}: {s:?}"))
                    .collect();
                st.failure = Some(format!(
                    "deadlock: {} thread(s) blocked with no runnable thread [{}]",
                    st.live,
                    stuck.join(", ")
                ));
            }
            self.cv.notify_all();
            return;
        }
        // Put `prev` first so choice 0 is "keep running" and depth-first
        // search explores the preemption-free schedule first.
        let prev_runnable = st.threads[prev] == Status::Runnable;
        if prev_runnable {
            options.retain(|&t| t != prev);
            options.insert(0, prev);
            if st.preemptions >= st.preemption_bound {
                options.truncate(1);
            }
        }
        let choice = if st.depth < st.prefix.len() {
            // Replay is deterministic, so the recorded choice is in range;
            // clamp defensively rather than corrupt the search on a bug.
            st.prefix[st.depth].min(options.len() - 1)
        } else {
            0
        };
        st.decisions.push((choice, options.len()));
        st.depth += 1;
        let next = options[choice];
        if prev_runnable && next != prev {
            st.preemptions += 1;
        }
        st.active = next;
        self.cv.notify_all();
    }

    /// Park until this thread is granted the active token (runnable + chosen).
    /// Panics with [`ABORT_MARKER`] if the model fails in the meantime so the
    /// thread unwinds out of user code and lets the iteration finish.
    fn park_until_active(&self, mut st: StdMutexGuard<'_, RtState>, tid: usize) {
        loop {
            if st.failure.is_some() {
                drop(st);
                std::panic::panic_any(ABORT_MARKER);
            }
            if st.active == tid && st.threads[tid] == Status::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// A plain decision point: offer the scheduler a chance to switch.
    /// During an unwind this is a no-op — destructor code must pass
    /// straight through rather than re-enter the scheduler (and possibly
    /// panic again, which would abort the process).
    pub(crate) fn yield_point(&self, tid: usize) {
        if std::thread::panicking() {
            return;
        }
        let mut st = lock_poison_free(&self.state);
        self.pick_next(&mut st, tid);
        self.park_until_active(st, tid);
    }

    /// Acquire the model-level mutex at `addr`, blocking (in model time)
    /// while another thread owns it. The leading yield lets the scheduler
    /// interleave *before* the acquisition.
    pub(crate) fn mutex_lock(&self, tid: usize, addr: usize) {
        self.yield_point(tid);
        self.mutex_acquire(tid, addr);
    }

    fn mutex_acquire(&self, tid: usize, addr: usize) {
        if std::thread::panicking() {
            // Unwinding cleanup bypasses model ownership; the caller's raw
            // lock still provides real mutual exclusion, and the early
            // failure record (panic hook) has every parked owner aborting
            // out and releasing it.
            return;
        }
        loop {
            let mut st = lock_poison_free(&self.state);
            match st.mutex_owner.get(&addr) {
                None => {
                    st.mutex_owner.insert(addr, tid);
                    return;
                }
                Some(&owner) if owner == tid => {
                    st.failure = Some(format!(
                        "thread {tid} recursively locked the mutex at {addr:#x}"
                    ));
                    self.cv.notify_all();
                    drop(st);
                    std::panic::panic_any(ABORT_MARKER);
                }
                Some(_) => {
                    st.threads[tid] = Status::BlockedMutex(addr);
                    self.pick_next(&mut st, tid);
                    self.park_until_active(st, tid);
                    // Woken runnable: retry (another thread may have taken it).
                }
            }
        }
    }

    /// Release the model-level mutex at `addr` and yield. Runs from guard
    /// drops, so it must stay silent while a panic is already unwinding.
    pub(crate) fn mutex_unlock(&self, tid: usize, addr: usize) {
        let unwinding = std::thread::panicking();
        let mut st = lock_poison_free(&self.state);
        st.mutex_owner.remove(&addr);
        for t in 0..st.threads.len() {
            if st.threads[t] == Status::BlockedMutex(addr) {
                st.threads[t] = Status::Runnable;
            }
        }
        if unwinding {
            // The thread root will record the failure and hand off control.
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st, tid);
        self.park_until_active(st, tid);
    }

    /// Atomically release `mutex` and block on `cv`; once notified, reacquire
    /// `mutex` before returning (condvar contract).
    pub(crate) fn condvar_wait(&self, tid: usize, cv: usize, mutex: usize) {
        if std::thread::panicking() {
            // Returning without blocking is a legal spurious wakeup; the
            // unwinding caller re-checks its predicate and keeps unwinding.
            return;
        }
        {
            let mut st = lock_poison_free(&self.state);
            st.mutex_owner.remove(&mutex);
            for t in 0..st.threads.len() {
                if st.threads[t] == Status::BlockedMutex(mutex) {
                    st.threads[t] = Status::Runnable;
                }
            }
            st.threads[tid] = Status::BlockedCondvar { cv, mutex };
            self.pick_next(&mut st, tid);
            self.park_until_active(st, tid);
        }
        self.mutex_acquire(tid, mutex);
    }

    /// Wake waiters of `cv`: all of them, or the lowest-numbered one (a
    /// deterministic legal refinement of "some waiter").
    pub(crate) fn condvar_notify(&self, tid: usize, cv: usize, all: bool) {
        if std::thread::panicking() {
            // Model waiters are already being woken by the failure record;
            // an unwinding notifier must not re-enter the scheduler.
            return;
        }
        let mut st = lock_poison_free(&self.state);
        for t in 0..st.threads.len() {
            if matches!(st.threads[t], Status::BlockedCondvar { cv: c, .. } if c == cv) {
                st.threads[t] = Status::Runnable;
                if !all {
                    break;
                }
            }
        }
        self.pick_next(&mut st, tid);
        self.park_until_active(st, tid);
    }

    /// Register a new controlled thread; it starts runnable but only runs
    /// once the scheduler picks it.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = lock_poison_free(&self.state);
        let tid = st.threads.len();
        st.threads.push(Status::Runnable);
        st.live += 1;
        tid
    }

    /// First thing a freshly spawned controlled thread does: wait for its
    /// first scheduling slot.
    pub(crate) fn wait_until_scheduled(&self, tid: usize) {
        let st = lock_poison_free(&self.state);
        self.park_until_active(st, tid);
    }

    /// Block until `target` finishes (then the real `join` reaps its value).
    pub(crate) fn join_wait(&self, tid: usize, target: usize) {
        if std::thread::panicking() {
            // The real `join` that follows still blocks until the target —
            // woken by the failure record — aborts out and finishes.
            return;
        }
        self.yield_point(tid);
        let mut st = lock_poison_free(&self.state);
        if st.threads[target] != Status::Finished {
            st.threads[tid] = Status::BlockedJoin(target);
            self.pick_next(&mut st, tid);
            self.park_until_active(st, tid);
        }
    }

    /// Mark a controlled thread finished, recording its panic (if any) as the
    /// model failure, waking joiners, and handing off the active token.
    pub(crate) fn thread_finished(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = lock_poison_free(&self.state);
        st.threads[tid] = Status::Finished;
        st.live -= 1;
        if let Some(msg) = panic_msg {
            if st.failure.is_none() && msg != ABORT_MARKER {
                st.failure = Some(msg);
            }
        }
        for t in 0..st.threads.len() {
            if st.threads[t] == Status::BlockedJoin(tid) {
                st.threads[t] = Status::Runnable;
            }
        }
        if st.live == 0 {
            // Iteration complete; wake the model() driver.
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st, tid);
        // No park: this thread is done.
    }
}
