//! Model-aware synchronization primitives.
//!
//! Inside a `model()` run every operation is a scheduler decision point and
//! mutual exclusion / wakeups are arbitrated by the model runtime; outside a
//! run the types degrade to plain `std::sync` behavior, so code paths shared
//! between model tests and normal execution keep working.
//!
//! All threads touching these primitives during a model run must be spawned
//! through [`crate::thread::spawn`] — foreign `std` threads are invisible to
//! the scheduler and would be serialized incorrectly.

use crate::rt;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

pub use std::sync::Arc;

pub struct Mutex<T> {
    inner: StdMutex<T>,
}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: Option<(Arc<rt::Rt>, usize)>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: StdMutex::new(t),
        }
    }

    fn addr(&self) -> usize {
        &self.inner as *const _ as usize
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match rt::current() {
            None => MutexGuard {
                lock: self,
                inner: Some(self.raw_lock()),
                model: None,
            },
            Some((rt, tid)) => {
                rt.mutex_lock(tid, self.addr());
                MutexGuard {
                    lock: self,
                    inner: Some(self.raw_lock()),
                    model: Some((rt, tid)),
                }
            }
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    /// Take the std lock. In a model run the runtime has already granted
    /// exclusive ownership, so this never contends (only one controlled
    /// thread executes at a time); poisoning from a failed iteration is
    /// deliberately ignored.
    fn raw_lock(&self) -> StdMutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((rt, tid)) = self.model.take() {
            rt.mutex_unlock(tid, self.lock.addr());
        }
    }
}

pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    fn addr(&self) -> usize {
        &self.inner as *const _ as usize
    }

    /// Block until notified, releasing the guarded mutex while waiting
    /// (parking_lot-style `&mut guard` signature).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match guard.model.clone() {
            None => {
                let inner = guard.inner.take().expect("guard holds the lock");
                guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|p| p.into_inner()));
            }
            Some((rt, tid)) => {
                let mutex_addr = guard.lock.addr();
                drop(guard.inner.take());
                rt.condvar_wait(tid, self.addr(), mutex_addr);
                guard.inner = Some(guard.lock.raw_lock());
            }
        }
    }

    /// Timed wait. Under the model there is no clock: every timed wait
    /// behaves as if the timeout elapsed immediately (returns `true`), but
    /// the lock is released across scheduling points so other threads can
    /// interleave — i.e. the model explores the "waiter timed out" schedules
    /// and relies on untimed `wait` for wakeup-delivery coverage. Outside a
    /// model run this is a real `std` timed wait.
    pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, dur: std::time::Duration) -> bool {
        match guard.model.clone() {
            None => {
                let inner = guard.inner.take().expect("guard holds the lock");
                let (inner, res) = self
                    .inner
                    .wait_timeout(inner, dur)
                    .unwrap_or_else(|p| p.into_inner());
                guard.inner = Some(inner);
                res.timed_out()
            }
            Some((rt, tid)) => {
                let mutex_addr = guard.lock.addr();
                drop(guard.inner.take());
                rt.mutex_unlock(tid, mutex_addr);
                rt.mutex_lock(tid, mutex_addr);
                guard.inner = Some(guard.lock.raw_lock());
                true
            }
        }
    }

    pub fn notify_one(&self) {
        match rt::current() {
            None => self.inner.notify_one(),
            Some((rt, tid)) => rt.condvar_notify(tid, self.addr(), false),
        }
    }

    pub fn notify_all(&self) {
        match rt::current() {
            None => self.inner.notify_all(),
            Some((rt, tid)) => rt.condvar_notify(tid, self.addr(), true),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

pub mod atomic {
    use crate::rt;

    pub use std::sync::atomic::Ordering;

    fn hook() {
        if let Some((rt, tid)) = rt::current() {
            rt.yield_point(tid);
        }
    }

    // All operations run SeqCst under the model regardless of the requested
    // ordering: the stand-in explores interleavings, not weak memory.
    macro_rules! atomic_common {
        ($prim:ty) => {
            pub fn load(&self, _order: Ordering) -> $prim {
                hook();
                self.inner.load(Ordering::SeqCst)
            }

            pub fn store(&self, val: $prim, _order: Ordering) {
                hook();
                self.inner.store(val, Ordering::SeqCst)
            }

            pub fn swap(&self, val: $prim, _order: Ordering) -> $prim {
                hook();
                self.inner.swap(val, Ordering::SeqCst)
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                hook();
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }
        };
    }

    macro_rules! atomic_int {
        ($name:ident, $std:ty, $prim:ty) => {
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    $name {
                        inner: <$std>::new(v),
                    }
                }

                atomic_common!($prim);

                pub fn fetch_add(&self, val: $prim, _order: Ordering) -> $prim {
                    hook();
                    self.inner.fetch_add(val, Ordering::SeqCst)
                }

                pub fn fetch_sub(&self, val: $prim, _order: Ordering) -> $prim {
                    hook();
                    self.inner.fetch_sub(val, Ordering::SeqCst)
                }

                pub fn fetch_max(&self, val: $prim, _order: Ordering) -> $prim {
                    hook();
                    self.inner.fetch_max(val, Ordering::SeqCst)
                }

                pub fn fetch_min(&self, val: $prim, _order: Ordering) -> $prim {
                    hook();
                    self.inner.fetch_min(val, Ordering::SeqCst)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$prim>::default())
                }
            }
        };
    }

    atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);

    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        atomic_common!(bool);
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }
}
