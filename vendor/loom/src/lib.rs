//! Offline stand-in for the [`loom`](https://docs.rs/loom) model checker
//! (this container has no crates.io access), exposing the subset of its API
//! this workspace uses:
//!
//! - [`model`] / [`model::Builder`] — run a closure under every explored
//!   thread interleaving.
//! - [`thread::spawn`] / [`thread::yield_now`] — scheduler-controlled threads.
//! - [`sync::Mutex`], [`sync::Condvar`], [`sync::Arc`],
//!   [`sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize}`].
//!
//! # How it works
//!
//! [`model`] repeatedly executes the closure, each time under a cooperative
//! scheduler that serializes all controlled threads and picks, at every
//! synchronization point, which runnable thread proceeds next (see
//! `rt.rs`). The choice sequence is enumerated depth-first with backtracking
//! until the space is exhausted or an iteration cap is hit, with a
//! CHESS-style *preemption bound* (default 2) pruning schedules that need
//! many involuntary context switches — the standard result being that most
//! concurrency bugs manifest within two preemptions. Deadlocks (including
//! lost wakeups: every thread blocked, none runnable) fail the model with
//! the decision path that produced them.
//!
//! # Divergences from real loom
//!
//! - Atomics are explored at `SeqCst` only; weak-memory reorderings are not
//!   modeled. The workspace's atomics are statistics counters and a
//!   shutdown flag, none of which rely on relaxed-ordering subtleties for
//!   correctness claims checked here (mutual exclusion does the publishing).
//! - Exploration is bounded by `LOOM_MAX_ITERATIONS` (default 20 000) as
//!   well as `LOOM_MAX_PREEMPTIONS` (default 2); hitting the iteration cap
//!   prints a note and passes, like loom's `max_branches` cutoff.
//! - Outside a `model()` run all primitives fall back to plain `std`
//!   behavior, so `--features loom` builds still run non-model tests.

mod rt;

pub mod sync;
pub mod thread;

use std::panic::Location;
use std::sync::{Arc, Once};

pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Panic hook for loom-controlled threads: silence the default report
/// (their panics are re-reported once, with the failing schedule, by
/// `model()`) and record the failure into the runtime **before** unwinding
/// starts, so every parked thread wakes, aborts out, and releases its
/// locks — destructors running during this unwind may need them. Other
/// threads keep the previous hook.
fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_loom = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("loom-"));
            if !in_loom {
                prev(info);
                return;
            }
            let msg = match info.location() {
                Some(loc) => format!("{} at {loc}", payload_message(info.payload())),
                None => payload_message(info.payload()),
            };
            rt::record_early_failure(&msg);
        }));
    });
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

pub mod model {
    use super::*;

    /// Configures a model-checking run (subset of loom's builder).
    pub struct Builder {
        /// Maximum involuntary context switches per schedule (CHESS bound).
        pub preemption_bound: Option<usize>,
        /// Maximum schedules to explore before declaring the run good enough.
        pub max_iterations: Option<usize>,
    }

    impl Default for Builder {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Builder {
        pub fn new() -> Self {
            Builder {
                preemption_bound: None,
                max_iterations: None,
            }
        }

        /// Run `f` under every explored interleaving; panics on the first
        /// failing schedule with the decision path that produced it.
        #[track_caller]
        pub fn check<F>(&self, f: F)
        where
            F: Fn() + Send + Sync + 'static,
        {
            let caller = Location::caller();
            install_quiet_hook();
            assert!(
                rt::current().is_none(),
                "nested loom::model is not supported"
            );
            let preemption_bound = self
                .preemption_bound
                .unwrap_or_else(|| env_usize("LOOM_MAX_PREEMPTIONS", 2));
            let max_iterations = self
                .max_iterations
                .unwrap_or_else(|| env_usize("LOOM_MAX_ITERATIONS", 20_000));
            let log_every = env_usize("LOOM_LOG", 0);

            let f = Arc::new(f);
            let mut prefix: Vec<usize> = Vec::new();
            let mut iterations = 0usize;
            loop {
                iterations += 1;
                let rt = Arc::new(rt::Rt::new(prefix.clone(), preemption_bound));

                let f2 = Arc::clone(&f);
                let rt2 = Arc::clone(&rt);
                let root = std::thread::Builder::new()
                    .name("loom-main".to_string())
                    .spawn(move || {
                        rt::set_ctx(Arc::clone(&rt2), 0);
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f2()));
                        rt2.thread_finished(0, out.err().map(|p| payload_message(&*p)));
                    })
                    .expect("spawn loom root thread");

                // The iteration is over when every controlled thread —
                // including ones the closure spawned and never joined — has
                // finished; the scheduler may still be running some of them
                // after thread 0 exits.
                {
                    let mut st = rt
                        .state
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    while st.live > 0 {
                        st = rt
                            .cv
                            .wait(st)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                }
                let _ = root.join();

                let (failure, decisions) = {
                    let st = rt
                        .state
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    (st.failure.clone(), st.decisions.clone())
                };
                if let Some(msg) = failure {
                    let path: Vec<usize> = decisions.iter().map(|&(c, _)| c).collect();
                    panic!(
                        "loom model failure at {caller} (iteration {iterations}, \
                         schedule {path:?}): {msg}"
                    );
                }
                if log_every > 0 && iterations.is_multiple_of(log_every) {
                    eprintln!("loom: {iterations} schedules explored at {caller}");
                }

                // Depth-first advance: bump the deepest decision that still
                // has an untried alternative; drop everything after it.
                let mut choices = decisions;
                let mut advanced = false;
                while let Some((chosen, n_options)) = choices.pop() {
                    if chosen + 1 < n_options {
                        prefix = choices.iter().map(|&(c, _)| c).collect();
                        prefix.push(chosen + 1);
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    if log_every > 0 {
                        eprintln!("loom: space exhausted after {iterations} schedules at {caller}");
                    }
                    return;
                }
                if iterations >= max_iterations {
                    eprintln!(
                        "loom: iteration cap {max_iterations} reached at {caller} \
                         (set LOOM_MAX_ITERATIONS to explore further)"
                    );
                    return;
                }
            }
        }
    }
}

/// Run `f` under every explored thread interleaving with default bounds.
#[track_caller]
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model::Builder::new().check(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn finds_atomic_increment_race() {
        // load-then-store is racy; the model must find the lost update.
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = Arc::clone(&n);
                        super::thread::spawn(move || {
                            let v = n.load(Ordering::SeqCst);
                            n.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("join");
                }
                assert_eq!(n.load(Ordering::SeqCst), 2);
            });
        });
        assert!(found.is_err(), "model missed the lost-update interleaving");
    }

    #[test]
    fn mutex_increment_is_race_free() {
        super::model(|| {
            let n = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        *n.lock() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("join");
            }
            assert_eq!(*n.lock(), 2);
        });
    }

    #[test]
    fn finds_lost_wakeup_as_deadlock() {
        // An unconditional wait with a lock-free notify: in the schedule
        // where the notify lands before the wait, the wakeup is lost and
        // every thread blocks — the model must report the deadlock.
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let pair = Arc::new((Mutex::new(()), Condvar::new()));
                let p2 = Arc::clone(&pair);
                let waiter = super::thread::spawn(move || {
                    let (m, cv) = &*p2;
                    let mut g = m.lock();
                    // BUG under test: no predicate guards the wait.
                    cv.wait(&mut g);
                });
                pair.1.notify_one();
                waiter.join().expect("join");
            });
        });
        assert!(found.is_err(), "model missed the lost wakeup");
    }

    #[test]
    fn condvar_handoff_with_predicate_loop_passes() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let consumer = super::thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut slot = m.lock();
                while *slot == 0 {
                    cv.wait(&mut slot);
                }
                *slot
            });
            let (m, cv) = &*pair;
            {
                let mut slot = m.lock();
                *slot = 7;
            }
            cv.notify_all();
            assert_eq!(consumer.join().expect("join"), 7);
        });
    }
}
