//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as an
//! annotation — nothing bounds on the serde traits or calls a serializer
//! (persistence goes through hand-rolled text formats). These derives
//! therefore expand to nothing, which keeps every `derive` attribute in
//! the tree compiling without network access to the real serde.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
