//! Offline stand-in for the `proptest` crate.
//!
//! This container has no crates.io access, so the workspace vendors the
//! proptest surface its property tests use: the `Strategy` trait with
//! `prop_map`/`prop_flat_map`, range/tuple/`Just`/`bool::ANY`/
//! `collection::vec` strategies, `prop_oneof!` (plain and weighted), and
//! the `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports the deterministic seed and
//!   case number instead of a minimized input.
//! - **Deterministic seeding.** The RNG seed derives from the test name
//!   (override with `PROPTEST_SEED=<u64>`), so runs are reproducible.

/// Strategies: composable random-value generators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A reusable generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate an intermediate value, then a strategy from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn sample(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    trait DynStrategy<V> {
        fn sample_dyn(&self, rng: &mut StdRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// Type-erased strategy; see [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut StdRng) -> V {
            self.0.sample_dyn(rng)
        }
    }

    /// Weighted choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms; weights must sum > 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut StdRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights changed mid-sample")
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniform `bool` strategy type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true`/`false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact `usize`, `a..b`, or `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_incl);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and driver used by the `proptest!` macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's config: the number of cases per test.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property: the formatted assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    fn seed_for(name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse() {
                return v;
            }
        }
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        h
    }

    /// Run `body` for `config.cases` deterministic random cases, panicking
    /// with seed + case number on the first failure (no shrinking).
    pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let seed = seed_for(name);
        let mut rng = StdRng::seed_from_u64(seed);
        for case in 0..config.cases {
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest {name}: case {}/{} failed (PROPTEST_SEED={seed}): {e}",
                    case + 1,
                    config.cases,
                );
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current property case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Fail the current property case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Weighted or uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) $( $(#[$meta:meta])+ fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                $crate::test_runner::run(&config, stringify!($name), |rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (usize, f64)> {
        (1usize..10).prop_flat_map(|n| (Just(n).prop_map(|v| v * 2), -1.0..1.0f64))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..40, y in -5.0..5.0f64) {
            prop_assert!(x < 40);
            prop_assert!((-5.0..5.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_lengths_respect_size((n, _f) in pairs(), v in crate::collection::vec(0u8..=3, 2..6)) {
            prop_assert!(n >= 2 && n % 2 == 0);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b <= 3));
        }

        #[test]
        fn oneof_honors_arms(v in prop_oneof![3 => Just(0.0), 2 => 5.0..6.0f64], b in crate::bool::ANY) {
            prop_assert!(v == 0.0 || (5.0..6.0).contains(&v));
            prop_assert_eq!(b, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = crate::collection::vec(0u32..100, 5..9);
        let a: Vec<Vec<u32>> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10).map(|_| s.sample(&mut rng)).collect()
        };
        let b: Vec<Vec<u32>> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10).map(|_| s.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
