//! One-class SVM novelty detection: train on normal traffic only, flag
//! anomalies — the distribution-estimation member of the SVM family.
//!
//! Run with: `cargo run --release -p gmp-svm --example novelty_detection`

use gmp_datasets::BlobSpec;
use gmp_sparse::CsrMatrix;
use gmp_svm::{train_one_class, KernelKind, OneClassParams};

fn main() {
    // "Normal" observations: one tight cluster.
    let normal = BlobSpec {
        n: 300,
        dim: 2,
        classes: 2,
        spread: 0.12,
        seed: 10,
    }
    .generate();
    let params = OneClassParams {
        kernel: KernelKind::Rbf { gamma: 1.5 },
        nu: 0.05,
        tolerance: 1e-3,
        ws_size: 64,
    };
    let model = train_one_class(params, &normal.x);
    println!(
        "trained one-class SVM: {} support vectors / {} points (nu = {})",
        model.n_sv(),
        normal.n(),
        params.nu
    );

    let train_inliers = model
        .predict_inlier(&normal.x)
        .iter()
        .filter(|&&b| b)
        .count();
    println!(
        "training data accepted: {}/{} ({:.1}% flagged, bounded by nu)",
        train_inliers,
        normal.n(),
        100.0 * (normal.n() - train_inliers) as f64 / normal.n() as f64
    );

    // Probe with novel points at increasing distance from the cluster.
    println!("\n| probe | decision value | verdict |");
    println!("|---|---|---|");
    for r in [0.5, 1.5, 3.0, 6.0] {
        let probe = CsrMatrix::from_dense(&[vec![1.0 + r, r]], 2);
        let v = model.decision_values(&probe)[0];
        println!(
            "| distance ~{r} | {v:.4} | {} |",
            if v > 0.0 { "inlier" } else { "NOVEL" }
        );
    }
}
