//! ε-SVR: the regression extension the paper's related work points to
//! (Wen et al., "Scalable and fast SVM regression using modern hardware").
//! Fits a noisy sine wave and reports tube statistics.
//!
//! Run with: `cargo run --release -p gmp-svm --example regression`

use gmp_sparse::CsrMatrix;
use gmp_svm::{train_svr, KernelKind, SvrParams};

fn main() {
    // Noisy sine: z = sin(x) + noise, x in [0, 6].
    let n = 200;
    let mut seed = 7u64;
    let mut noise = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.2
    };
    let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![6.0 * i as f64 / n as f64]).collect();
    let zs: Vec<f64> = xs.iter().map(|v| v[0].sin() + noise()).collect();
    let x = CsrMatrix::from_dense(&xs, 1);

    for epsilon in [0.3, 0.1, 0.02] {
        let params = SvrParams {
            kernel: KernelKind::Rbf { gamma: 2.0 },
            c: 10.0,
            epsilon,
            ..Default::default()
        };
        let model = train_svr(params, &x, &zs);
        let pred = model.predict(&x);
        let mse: f64 = pred
            .iter()
            .zip(&zs)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / n as f64;
        let in_tube = pred
            .iter()
            .zip(&zs)
            .filter(|(p, t)| (*p - *t).abs() <= epsilon + 1e-9)
            .count();
        println!(
            "epsilon = {epsilon:<4}: {} support vectors ({}% of data), mse {:.4}, {}% of points inside the tube",
            model.n_sv(),
            100 * model.n_sv() / n,
            mse,
            100 * in_tube / n,
        );
    }
    println!("\nshrinking the tube trades sparsity (support vectors) for fit, as expected for epsilon-SVR.");
}
