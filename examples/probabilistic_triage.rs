//! Probabilistic triage: the application pattern that motivates MP-SVMs in
//! the paper's introduction (medical image retrieval / recognition with
//! reject option). The classifier abstains when its class probability is
//! below a confidence threshold; probability outputs make the
//! coverage/accuracy trade-off tunable.
//!
//! Run with: `cargo run --release -p gmp-svm --example probabilistic_triage`

use gmp_datasets::BlobSpec;
use gmp_svm::{Backend, MpSvmTrainer, SvmParams};

fn main() {
    // Overlapping classes: some cases are genuinely ambiguous.
    let data = BlobSpec {
        n: 600,
        dim: 4,
        classes: 4,
        spread: 0.45,
        seed: 99,
    }
    .generate();
    let split = data.split(0.3, 5);
    let params = SvmParams::default()
        .with_c(2.0)
        .with_rbf(0.8)
        .with_working_set(64, 32);
    let backend = Backend::gmp_default();
    let outcome = MpSvmTrainer::new(params, backend.clone())
        .train(&split.train)
        .expect("training failed");
    let pred = outcome
        .model
        .predict(&split.test.x, &backend)
        .expect("prediction failed");

    println!(
        "confidence-thresholded triage on {} ambiguous cases:",
        split.test.n()
    );
    println!("\n| threshold | coverage | accuracy on accepted |");
    println!("|---|---|---|");
    for threshold in [0.0, 0.4, 0.5, 0.6, 0.7, 0.8] {
        let mut accepted = 0usize;
        let mut correct = 0usize;
        for i in 0..split.test.n() {
            let p = &pred.probabilities[i];
            let conf = p.iter().cloned().fold(0.0, f64::max);
            if conf >= threshold {
                accepted += 1;
                if pred.labels[i] == split.test.y[i] {
                    correct += 1;
                }
            }
        }
        println!(
            "| {:.1} | {:.1}% | {:.1}% |",
            threshold,
            100.0 * accepted as f64 / split.test.n() as f64,
            if accepted > 0 {
                100.0 * correct as f64 / accepted as f64
            } else {
                0.0
            }
        );
    }
    println!("\nraising the threshold trades coverage for accuracy — only possible with probabilistic output.");
}
