//! Quickstart: train a multi-class probabilistic SVM on a toy 3-class
//! problem and inspect the probability outputs.
//!
//! Run with: `cargo run --release -p gmp-svm --example quickstart`

use gmp_datasets::BlobSpec;
use gmp_svm::{Backend, MpSvmTrainer, SvmParams};

fn main() {
    // Three Gaussian blobs, 150 points.
    let data = BlobSpec {
        n: 150,
        dim: 2,
        classes: 3,
        spread: 0.2,
        seed: 42,
    }
    .generate();
    let split = data.split(0.2, 7);

    // Paper-default configuration on the simulated Tesla P100.
    let params = SvmParams::default()
        .with_c(2.0)
        .with_rbf(1.0)
        .with_working_set(64, 32);
    let trainer = MpSvmTrainer::new(params, Backend::gmp_default());

    let outcome = trainer.train(&split.train).expect("training failed");
    println!(
        "trained {} binary SVMs ({} shared support vectors) in {:.2} ms simulated / {:.2} ms wall",
        outcome.model.binaries.len(),
        outcome.model.n_sv(),
        outcome.report.sim_s * 1e3,
        outcome.report.wall_s * 1e3,
    );

    let pred = outcome
        .model
        .predict(&split.test.x, &Backend::gmp_default())
        .expect("prediction failed");
    let correct = pred
        .labels
        .iter()
        .zip(&split.test.y)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "test accuracy: {}/{} = {:.1}%",
        correct,
        split.test.n(),
        100.0 * correct as f64 / split.test.n() as f64
    );

    println!("\nfirst five test instances:");
    for i in 0..5.min(split.test.n()) {
        let p = &pred.probabilities[i];
        println!(
            "  true={} predicted={} P = [{:.3}, {:.3}, {:.3}]",
            split.test.y[i], pred.labels[i], p[0], p[1], p[2]
        );
    }
}
