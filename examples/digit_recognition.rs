//! Digit recognition: the paper's MNIST workload at reduced scale,
//! comparing GMP-SVM against the GPU baseline (the Table 1 / Fig. 4
//! story on one dataset).
//!
//! Run with: `cargo run --release -p gmp-svm --example digit_recognition`

use gmp_datasets::PaperDataset;
use gmp_svm::predict::error_rate;
use gmp_svm::{Backend, MpSvmTrainer};

fn main() {
    // MNIST stand-in: 10 classes, 780 features, published C=10, gamma=0.125.
    let scale = 0.005;
    let split = PaperDataset::Mnist.generate_split(scale);
    println!(
        "MNIST stand-in at scale {scale}: {} train / {} test instances, {} classes",
        split.train.n(),
        split.test.n(),
        split.train.n_classes()
    );
    let spec = PaperDataset::Mnist.spec();
    let params = gmp_svm::SvmParams::default()
        .with_c(spec.c)
        .with_rbf(spec.gamma)
        .with_working_set(64, 32);

    let mut rows = Vec::new();
    for backend in [Backend::gpu_baseline_default(), Backend::gmp_default()] {
        let outcome = MpSvmTrainer::new(params, backend.clone())
            .train(&split.train)
            .expect("training failed");
        let pred = outcome
            .model
            .predict(&split.test.x, &backend)
            .expect("prediction failed");
        let err = error_rate(&pred.labels, &split.test.y);
        println!(
            "\n[{}]\n  45 binary SVMs: {} SMO iterations total, {} kernel evals",
            outcome.report.backend,
            outcome.report.total_iterations(),
            outcome.report.kernel_evals,
        );
        println!(
            "  train {:.3} s simulated, predict {:.4} s simulated, test error {:.2}%",
            outcome.report.sim_s,
            pred.report.sim_s,
            100.0 * err
        );
        rows.push((outcome.report.sim_s, pred.report.sim_s));
    }
    println!(
        "\nGMP-SVM speedup over GPU baseline: {:.1}x train, {:.1}x predict",
        rows[0].0 / rows[1].0,
        rows[0].1 / rows[1].1
    );
}
