//! Text classification: a News20-style sparse high-dimensional workload,
//! demonstrating model persistence (save to the LibSVM-inspired text
//! format, reload, verify identical predictions).
//!
//! Run with: `cargo run --release -p gmp-svm --example text_classification`

use gmp_datasets::PaperDataset;
use gmp_svm::predict::error_rate;
use gmp_svm::{Backend, MpSvmModel, MpSvmTrainer};

fn main() {
    let split = PaperDataset::News20.generate_split(0.02);
    println!(
        "News20 stand-in: {} train docs, {} test docs, {} topics, {} features ({:.3}% dense)",
        split.train.n(),
        split.test.n(),
        split.train.n_classes(),
        split.train.dim(),
        100.0 * split.train.x.density(),
    );
    let spec = PaperDataset::News20.spec();
    let params = gmp_svm::SvmParams::default()
        .with_c(spec.c)
        .with_rbf(spec.gamma)
        .with_working_set(32, 16);

    let backend = Backend::gmp_default();
    let outcome = MpSvmTrainer::new(params, backend.clone())
        .train(&split.train)
        .expect("training failed");
    println!(
        "trained {} binary SVMs, {} shared SVs (vs {} unshared references: {:.0}% saved)",
        outcome.model.binaries.len(),
        outcome.model.n_sv(),
        outcome.model.total_sv_refs(),
        100.0 * (1.0 - outcome.model.n_sv() as f64 / outcome.model.total_sv_refs().max(1) as f64),
    );

    // Persist and reload.
    let path = std::env::temp_dir().join("news20_standin.gmpsvm");
    std::fs::write(&path, outcome.model.to_text()).expect("save model");
    let loaded = MpSvmModel::from_text(&std::fs::read_to_string(&path).expect("read model"))
        .expect("parse model");
    println!("model saved to {} and reloaded", path.display());

    let before = outcome
        .model
        .predict(&split.test.x, &backend)
        .expect("predict");
    let after = loaded.predict(&split.test.x, &backend).expect("predict");
    assert_eq!(
        before.labels, after.labels,
        "reloaded model must predict identically"
    );
    println!(
        "reloaded model verified: identical predictions, test error {:.2}%",
        100.0 * error_rate(&after.labels, &split.test.y)
    );
}
