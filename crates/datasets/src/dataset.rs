//! Labeled sparse datasets.

use gmp_sparse::CsrMatrix;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A labeled dataset: CSR features plus integer class labels `0..k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix, one row per instance.
    pub x: CsrMatrix,
    /// Class label per instance (`0..n_classes`).
    pub y: Vec<u32>,
}

/// A train/test split of a [`Dataset`].
#[derive(Debug, Clone)]
pub struct SplitDataset {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion.
    pub test: Dataset,
}

impl Dataset {
    /// Build, validating label/row agreement.
    pub fn new(x: CsrMatrix, y: Vec<u32>) -> Self {
        assert_eq!(x.nrows(), y.len(), "row/label count mismatch");
        Dataset { x, y }
    }

    /// Number of instances.
    pub fn n(&self) -> usize {
        self.y.len()
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.x.ncols()
    }

    /// Number of distinct classes (assumes labels are `0..k` dense).
    pub fn n_classes(&self) -> usize {
        self.y.iter().copied().max().map_or(0, |m| m as usize + 1)
    }

    /// Count of instances per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let k = self.n_classes();
        let mut counts = vec![0usize; k];
        for &c in &self.y {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Instance indices of class `c`.
    pub fn class_indices(&self, c: u32) -> Vec<usize> {
        self.y
            .iter()
            .enumerate()
            .filter(|(_, &y)| y == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// A new dataset with only the given rows (in the given order).
    pub fn select(&self, rows: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(rows),
            y: rows.iter().map(|&r| self.y[r]).collect(),
        }
    }

    /// Deterministically shuffle and split: first `1 - test_fraction` of the
    /// permutation trains, the remainder tests.
    pub fn split(&self, test_fraction: f64, seed: u64) -> SplitDataset {
        assert!((0.0..1.0).contains(&test_fraction), "bad test fraction");
        let mut order: Vec<usize> = (0..self.n()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let n_test = ((self.n() as f64) * test_fraction).round() as usize;
        let n_train = self.n() - n_test;
        SplitDataset {
            train: self.select(&order[..n_train]),
            test: self.select(&order[n_train..]),
        }
    }

    /// Group instances class-contiguously (class 0 first, then 1, ...),
    /// returning the grouped dataset, the per-class offsets (length `k+1`),
    /// and the mapping `grouped index -> original index`.
    ///
    /// This is the layout the shared kernel store (Fig. 3) requires.
    pub fn group_by_class(&self) -> (Dataset, Vec<usize>, Vec<usize>) {
        let k = self.n_classes();
        let mut order: Vec<usize> = Vec::with_capacity(self.n());
        let mut offsets = Vec::with_capacity(k + 1);
        offsets.push(0);
        for c in 0..k as u32 {
            order.extend(self.class_indices(c));
            offsets.push(order.len());
        }
        (self.select(&order), offsets, order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = CsrMatrix::from_dense(
            &[
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
                vec![2.0, 0.0],
                vec![0.0, 2.0],
            ],
            2,
        );
        Dataset::new(x, vec![0, 1, 2, 0, 1])
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.n(), 5);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.class_counts(), vec![2, 2, 1]);
        assert_eq!(d.class_indices(0), vec![0, 3]);
    }

    #[test]
    fn select_keeps_labels_aligned() {
        let d = toy();
        let s = d.select(&[4, 0]);
        assert_eq!(s.y, vec![1, 0]);
        assert_eq!(s.x.row(0).values, d.x.row(4).values);
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let d = toy();
        let s1 = d.split(0.4, 7);
        let s2 = d.split(0.4, 7);
        assert_eq!(s1.train.y, s2.train.y);
        assert_eq!(s1.test.y, s2.test.y);
        assert_eq!(s1.train.n() + s1.test.n(), d.n());
        assert_eq!(s1.test.n(), 2);
    }

    #[test]
    fn different_seeds_differ() {
        // With 5! permutations, two seeds almost surely give different
        // splits; pick seeds verified to differ.
        let d = toy();
        let a = d.split(0.4, 1);
        let b = d.split(0.4, 2);
        assert!(a.train.y != b.train.y || a.train.x != b.train.x);
    }

    #[test]
    fn group_by_class_layout() {
        let d = toy();
        let (g, offsets, map) = d.group_by_class();
        assert_eq!(offsets, vec![0, 2, 4, 5]);
        assert_eq!(g.y, vec![0, 0, 1, 1, 2]);
        assert_eq!(map, vec![0, 3, 1, 4, 2]);
        // Content preserved under the mapping.
        for (gi, &orig) in map.iter().enumerate() {
            assert_eq!(g.x.row(gi).values, d.x.row(orig).values);
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_mismatched_labels() {
        let x = CsrMatrix::from_dense(&[vec![1.0]], 1);
        Dataset::new(x, vec![0, 1]);
    }
}
