//! LibSVM text format: `label idx:val idx:val ...` per line, 1-based
//! feature indices. This is the interchange format of the paper's datasets
//! ("publicly available (e.g., LibSVM website)").

use crate::dataset::Dataset;
use gmp_sparse::CsrBuilder;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Parse failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse LibSVM-format text into a dataset.
///
/// Labels may be arbitrary integers/floats; they are densified to `0..k` in
/// order of first appearance sorted numerically. Feature indices are
/// 1-based per the format; `dim` is inferred as the maximum index unless
/// `min_dim` demands more columns.
pub fn parse_libsvm(text: &str, min_dim: usize) -> Result<Dataset, ParseError> {
    let mut raw_labels: Vec<f64> = Vec::new();
    let mut rows: Vec<Vec<(u32, f64)>> = Vec::new();
    let mut max_col = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label_tok = parts.next().expect("non-empty line has a token");
        let label: f64 = label_tok.parse().map_err(|_| ParseError {
            line: lineno + 1,
            message: format!("bad label '{label_tok}'"),
        })?;
        let mut feats: Vec<(u32, f64)> = Vec::new();
        let mut prev: Option<u32> = None;
        for tok in parts {
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| ParseError {
                line: lineno + 1,
                message: format!("feature token '{tok}' missing ':'"),
            })?;
            let idx: usize = idx_s.parse().map_err(|_| ParseError {
                line: lineno + 1,
                message: format!("bad feature index '{idx_s}'"),
            })?;
            if idx == 0 {
                return Err(ParseError {
                    line: lineno + 1,
                    message: "feature indices are 1-based".to_string(),
                });
            }
            let val: f64 = val_s.parse().map_err(|_| ParseError {
                line: lineno + 1,
                message: format!("bad feature value '{val_s}'"),
            })?;
            let col = (idx - 1) as u32;
            if let Some(p) = prev {
                if col <= p {
                    return Err(ParseError {
                        line: lineno + 1,
                        message: "feature indices must be strictly increasing".to_string(),
                    });
                }
            }
            prev = Some(col);
            max_col = max_col.max(idx);
            if val != 0.0 {
                feats.push((col, val));
            }
        }
        raw_labels.push(label);
        rows.push(feats);
    }

    // Densify labels: sort distinct values, map to 0..k.
    let mut distinct: Vec<f64> = raw_labels.clone();
    distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite labels"));
    distinct.dedup();
    let label_map: HashMap<u64, u32> = distinct
        .iter()
        .enumerate()
        .map(|(i, &v)| (v.to_bits(), i as u32))
        .collect();

    let dim = max_col.max(min_dim);
    let mut b = CsrBuilder::new(dim.max(1));
    for feats in &rows {
        b.start_row();
        for &(c, v) in feats {
            b.push(c, v);
        }
    }
    let y: Vec<u32> = raw_labels.iter().map(|v| label_map[&v.to_bits()]).collect();
    Ok(Dataset::new(b.finish(), y))
}

/// Serialize a dataset to LibSVM text (labels written as the dense class
/// ids, feature indices 1-based).
pub fn write_libsvm(d: &Dataset) -> String {
    let mut out = String::new();
    for i in 0..d.n() {
        let _ = write!(out, "{}", d.y[i]);
        let row = d.x.row(i);
        for (&c, &v) in row.indices.iter().zip(row.values) {
            let _ = write!(out, " {}:{}", c + 1, v);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let d = parse_libsvm("1 1:0.5 3:2.0\n-1 2:1.0\n", 0).unwrap();
        assert_eq!(d.n(), 2);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.y, vec![1, 0]); // -1 < 1 so -1 -> 0
        assert_eq!(d.x.row(0).indices, &[0, 2]);
        assert_eq!(d.x.row(1).values, &[1.0]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let d = parse_libsvm("# header\n\n2 1:1\n", 0).unwrap();
        assert_eq!(d.n(), 1);
    }

    #[test]
    fn empty_feature_rows_allowed() {
        let d = parse_libsvm("0\n1 1:5\n", 0).unwrap();
        assert_eq!(d.x.row(0).nnz(), 0);
    }

    #[test]
    fn multiclass_labels_densified_in_order() {
        let d = parse_libsvm("7 1:1\n3 1:1\n7 1:1\n10 1:1\n", 0).unwrap();
        assert_eq!(d.y, vec![1, 0, 1, 2]);
        assert_eq!(d.n_classes(), 3);
    }

    #[test]
    fn min_dim_pads_columns() {
        let d = parse_libsvm("1 1:1\n", 10).unwrap();
        assert_eq!(d.dim(), 10);
    }

    #[test]
    fn roundtrip() {
        let src = "0 1:0.5 3:-2\n1 2:1\n2\n";
        let d = parse_libsvm(src, 0).unwrap();
        let text = write_libsvm(&d);
        let d2 = parse_libsvm(&text, d.dim()).unwrap();
        assert_eq!(d.x, d2.x);
        assert_eq!(d.y, d2.y);
    }

    #[test]
    fn error_bad_label() {
        let e = parse_libsvm("abc 1:1\n", 0).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("bad label"));
    }

    #[test]
    fn error_zero_index() {
        let e = parse_libsvm("1 0:1\n", 0).unwrap_err();
        assert!(e.message.contains("1-based"));
    }

    #[test]
    fn error_unsorted_indices() {
        let e = parse_libsvm("1 3:1 2:1\n", 0).unwrap_err();
        assert!(e.message.contains("increasing"));
    }

    #[test]
    fn error_missing_colon() {
        let e = parse_libsvm("1 17\n", 0).unwrap_err();
        assert!(e.message.contains("missing ':'"));
    }

    #[test]
    fn zero_values_dropped() {
        let d = parse_libsvm("1 1:0 2:5\n", 0).unwrap();
        assert_eq!(d.x.row(0).indices, &[1]);
    }
}
