//! LibSVM text format: `label idx:val idx:val ...` per line, 1-based
//! feature indices. This is the interchange format of the paper's datasets
//! ("publicly available (e.g., LibSVM website)").

use crate::dataset::Dataset;
use gmp_sparse::CsrBuilder;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Parse failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Incremental LibSVM parser: feed lines one at a time (e.g. straight off
/// a `BufReader`, without slurping the file into memory first), then call
/// [`finish`](LibsvmStreamParser::finish) to densify labels and build the
/// CSR matrix.
///
/// `parse_libsvm` is a thin wrapper over this, so the streaming and
/// whole-text paths accept exactly the same inputs and report the same
/// line-numbered errors.
#[derive(Debug, Default)]
pub struct LibsvmStreamParser {
    lineno: usize,
    raw_labels: Vec<f64>,
    rows: Vec<Vec<(u32, f64)>>,
    max_col: usize,
}

impl LibsvmStreamParser {
    /// Fresh parser; the next pushed line is line 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one input line (without its newline). Blank lines and `#`
    /// comments count for line numbering but add no row.
    pub fn push_line(&mut self, line: &str) -> Result<(), ParseError> {
        self.lineno += 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(());
        }
        let mut parts = line.split_whitespace();
        // gmp:allow-panic — guarded: the line was checked non-empty above
        let label_tok = parts.next().expect("non-empty line has a token");
        let label: f64 = label_tok.parse().map_err(|_| ParseError {
            line: self.lineno,
            message: format!("bad label '{label_tok}'"),
        })?;
        let mut feats: Vec<(u32, f64)> = Vec::new();
        let mut prev: Option<u32> = None;
        for tok in parts {
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| ParseError {
                line: self.lineno,
                message: format!("feature token '{tok}' missing ':'"),
            })?;
            let idx: usize = idx_s.parse().map_err(|_| ParseError {
                line: self.lineno,
                message: format!("bad feature index '{idx_s}'"),
            })?;
            if idx == 0 {
                return Err(ParseError {
                    line: self.lineno,
                    message: "feature indices are 1-based".to_string(),
                });
            }
            let val: f64 = val_s.parse().map_err(|_| ParseError {
                line: self.lineno,
                message: format!("bad feature value '{val_s}'"),
            })?;
            let col = (idx - 1) as u32;
            if let Some(p) = prev {
                if col <= p {
                    return Err(ParseError {
                        line: self.lineno,
                        message: "feature indices must be strictly increasing".to_string(),
                    });
                }
            }
            prev = Some(col);
            self.max_col = self.max_col.max(idx);
            if val != 0.0 {
                feats.push((col, val));
            }
        }
        self.raw_labels.push(label);
        self.rows.push(feats);
        Ok(())
    }

    /// Rows accepted so far.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Lines consumed so far (including blanks and comments).
    pub fn lines_seen(&self) -> usize {
        self.lineno
    }

    /// Densify labels and assemble the dataset. `min_dim` demands at least
    /// that many columns; otherwise the dimensionality is the maximum
    /// feature index seen.
    pub fn finish(self, min_dim: usize) -> Dataset {
        // Densify labels: sort distinct values, map to 0..k.
        let mut distinct: Vec<f64> = self.raw_labels.clone();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup();
        let label_map: HashMap<u64, u32> = distinct
            .iter()
            .enumerate()
            .map(|(i, &v)| (v.to_bits(), i as u32))
            .collect();

        let dim = self.max_col.max(min_dim);
        let mut b = CsrBuilder::new(dim.max(1));
        for feats in &self.rows {
            b.start_row();
            for &(c, v) in feats {
                b.push(c, v);
            }
        }
        let y: Vec<u32> = self
            .raw_labels
            .iter()
            .map(|v| label_map[&v.to_bits()])
            .collect();
        Dataset::new(b.finish(), y)
    }
}

/// Parse LibSVM-format text into a dataset.
///
/// Labels may be arbitrary integers/floats; they are densified to `0..k` in
/// order of first appearance sorted numerically. Feature indices are
/// 1-based per the format; `dim` is inferred as the maximum index unless
/// `min_dim` demands more columns.
pub fn parse_libsvm(text: &str, min_dim: usize) -> Result<Dataset, ParseError> {
    let mut p = LibsvmStreamParser::new();
    for line in text.lines() {
        p.push_line(line)?;
    }
    Ok(p.finish(min_dim))
}

/// Serialize a dataset to LibSVM text (labels written as the dense class
/// ids, feature indices 1-based).
pub fn write_libsvm(d: &Dataset) -> String {
    let mut out = String::new();
    for i in 0..d.n() {
        let _ = write!(out, "{}", d.y[i]);
        let row = d.x.row(i);
        for (&c, &v) in row.indices.iter().zip(row.values) {
            let _ = write!(out, " {}:{}", c + 1, v);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let d = parse_libsvm("1 1:0.5 3:2.0\n-1 2:1.0\n", 0).unwrap();
        assert_eq!(d.n(), 2);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.y, vec![1, 0]); // -1 < 1 so -1 -> 0
        assert_eq!(d.x.row(0).indices, &[0, 2]);
        assert_eq!(d.x.row(1).values, &[1.0]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let d = parse_libsvm("# header\n\n2 1:1\n", 0).unwrap();
        assert_eq!(d.n(), 1);
    }

    #[test]
    fn empty_feature_rows_allowed() {
        let d = parse_libsvm("0\n1 1:5\n", 0).unwrap();
        assert_eq!(d.x.row(0).nnz(), 0);
    }

    #[test]
    fn multiclass_labels_densified_in_order() {
        let d = parse_libsvm("7 1:1\n3 1:1\n7 1:1\n10 1:1\n", 0).unwrap();
        assert_eq!(d.y, vec![1, 0, 1, 2]);
        assert_eq!(d.n_classes(), 3);
    }

    #[test]
    fn min_dim_pads_columns() {
        let d = parse_libsvm("1 1:1\n", 10).unwrap();
        assert_eq!(d.dim(), 10);
    }

    #[test]
    fn roundtrip() {
        let src = "0 1:0.5 3:-2\n1 2:1\n2\n";
        let d = parse_libsvm(src, 0).unwrap();
        let text = write_libsvm(&d);
        let d2 = parse_libsvm(&text, d.dim()).unwrap();
        assert_eq!(d.x, d2.x);
        assert_eq!(d.y, d2.y);
    }

    #[test]
    fn error_bad_label() {
        let e = parse_libsvm("abc 1:1\n", 0).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("bad label"));
    }

    #[test]
    fn error_zero_index() {
        let e = parse_libsvm("1 0:1\n", 0).unwrap_err();
        assert!(e.message.contains("1-based"));
    }

    #[test]
    fn error_unsorted_indices() {
        let e = parse_libsvm("1 3:1 2:1\n", 0).unwrap_err();
        assert!(e.message.contains("increasing"));
    }

    #[test]
    fn error_missing_colon() {
        let e = parse_libsvm("1 17\n", 0).unwrap_err();
        assert!(e.message.contains("missing ':'"));
    }

    #[test]
    fn zero_values_dropped() {
        let d = parse_libsvm("1 1:0 2:5\n", 0).unwrap();
        assert_eq!(d.x.row(0).indices, &[1]);
    }

    #[test]
    fn streaming_parser_matches_whole_text_parse() {
        let src = "# hdr\n7 1:0.5 3:2.0\n\n3 2:1.0\n10 1:-1 4:0.25\n";
        let whole = parse_libsvm(src, 6).unwrap();
        let mut p = LibsvmStreamParser::new();
        for line in src.lines() {
            p.push_line(line).unwrap();
        }
        assert_eq!(p.n_rows(), 3);
        assert_eq!(p.lines_seen(), 5);
        let streamed = p.finish(6);
        assert_eq!(whole.x, streamed.x);
        assert_eq!(whole.y, streamed.y);
    }

    #[test]
    fn streaming_parser_error_carries_line_number() {
        let mut p = LibsvmStreamParser::new();
        p.push_line("# comment").unwrap();
        p.push_line("1 1:0.5").unwrap();
        let e = p.push_line("1 2:oops").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bad feature value"));
    }
}
