//! Deterministic synthetic dataset generators.
//!
//! Two families:
//! * [`SynthSpec`] — sparse, high-dimensional, class-structured data in the
//!   style of the paper's text/image datasets: each class owns a signature
//!   feature set; instances mix signature and background features, are
//!   L2-normalized, then scaled so that the dataset's published RBF γ
//!   lands in a sensible operating range (`scale = 1/sqrt(2γ)` makes
//!   `γ·||x_i - x_j||²` span roughly `[0, 1]`).
//! * [`BlobSpec`] — small dense Gaussian blobs for examples and tests.

use crate::dataset::Dataset;
use gmp_sparse::CsrBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Specification of a sparse, signature-based synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Number of instances.
    pub n: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Average fraction of non-zero features per instance.
    pub density: f64,
    /// Fraction of an instance's features drawn from its class signature
    /// (higher = more separable).
    pub class_sep: f64,
    /// Probability of replacing a label with a random other class
    /// (controls irreducible training error).
    pub label_noise: f64,
    /// Multiplier applied to the L2-normalized rows.
    pub scale: f64,
    /// RNG seed — identical specs generate identical datasets.
    pub seed: u64,
}

impl SynthSpec {
    /// Generate the dataset.
    pub fn generate(&self) -> Dataset {
        assert!(self.classes >= 2, "need at least two classes");
        assert!(
            self.dim >= self.classes,
            "need at least one feature per class"
        );
        assert!((0.0..=1.0).contains(&self.class_sep));
        assert!((0.0..=1.0).contains(&self.label_noise));
        let mut rng = StdRng::seed_from_u64(self.seed);

        let nnz_per_row = ((self.density * self.dim as f64).round() as usize).clamp(1, self.dim);
        // Class signatures: disjoint feature bands plus a shared pool. The
        // band is kept narrow relative to the per-row signature count so
        // that two instances of the same class share many features (high
        // within-class kernel similarity), while still fitting `classes`
        // disjoint bands.
        let n_sig_target = ((nnz_per_row as f64) * self.class_sep).round() as usize;
        let band = (2 * n_sig_target.max(2))
            .min(self.dim / self.classes)
            .max(1);
        let sig_start = |c: usize| (c * band).min(self.dim - band);
        let pool_start = (self.classes * band).min(self.dim.saturating_sub(1));

        let mut b = CsrBuilder::new(self.dim);
        b.reserve(self.n * nnz_per_row);
        let mut y = Vec::with_capacity(self.n);

        let mut cols: Vec<u32> = Vec::with_capacity(nnz_per_row);
        for i in 0..self.n {
            let c = i % self.classes; // balanced classes
            let n_sig = ((nnz_per_row as f64) * self.class_sep).round() as usize;
            let n_bg = nnz_per_row - n_sig.min(nnz_per_row);
            cols.clear();
            for _ in 0..n_sig.min(nnz_per_row) {
                cols.push((sig_start(c) + rng.gen_range(0..band)) as u32);
            }
            for _ in 0..n_bg {
                let span = self.dim - pool_start;
                let col = if span > 0 {
                    pool_start + rng.gen_range(0..span)
                } else {
                    rng.gen_range(0..self.dim)
                };
                cols.push(col as u32);
            }
            cols.sort_unstable();
            cols.dedup();

            // Values: positive, jittered; then normalize and scale.
            let vals: Vec<f64> = cols.iter().map(|_| 0.5 + rng.gen::<f64>()).collect();
            let norm: f64 = vals.iter().map(|v| v * v).sum::<f64>().sqrt();
            b.start_row();
            for (&col, v) in cols.iter().zip(&vals) {
                b.push(col, self.scale * v / norm);
            }

            // Label noise.
            let label = if self.label_noise > 0.0 && rng.gen::<f64>() < self.label_noise {
                let mut other = rng.gen_range(0..self.classes - 1);
                if other >= c {
                    other += 1;
                }
                other as u32
            } else {
                c as u32
            };
            y.push(label);
        }
        Dataset::new(b.finish(), y)
    }
}

/// Dense Gaussian blobs: one spherical cluster per class on a circle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlobSpec {
    /// Number of instances.
    pub n: usize,
    /// Feature dimensionality (>= 2).
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Cluster standard deviation (cluster centers sit on the unit circle
    /// of the first two dimensions; `spread` ≳ 0.5 makes classes overlap).
    pub spread: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BlobSpec {
    /// Generate the dataset.
    pub fn generate(&self) -> Dataset {
        assert!(self.dim >= 2, "blobs need at least two dimensions");
        assert!(self.classes >= 2);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = CsrBuilder::new(self.dim);
        let mut y = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let c = i % self.classes;
            let angle = 2.0 * std::f64::consts::PI * (c as f64) / (self.classes as f64);
            let (cx, cy) = (angle.cos(), angle.sin());
            b.start_row();
            for dcol in 0..self.dim {
                let center = match dcol {
                    0 => cx,
                    1 => cy,
                    _ => 0.0,
                };
                // Box–Muller from two uniforms.
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let v = center + self.spread * g;
                if v != 0.0 {
                    b.push(dcol as u32, v);
                }
            }
            y.push(c as u32);
        }
        Dataset::new(b.finish(), y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SynthSpec {
        SynthSpec {
            n: 200,
            dim: 500,
            classes: 4,
            density: 0.05,
            class_sep: 0.8,
            label_noise: 0.0,
            scale: 1.0,
            seed: 11,
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(spec().generate(), spec().generate());
    }

    #[test]
    fn different_seed_differs() {
        let mut s2 = spec();
        s2.seed = 12;
        assert_ne!(spec().generate(), s2.generate());
    }

    #[test]
    fn shape_and_balance() {
        let d = spec().generate();
        assert_eq!(d.n(), 200);
        assert_eq!(d.dim(), 500);
        assert_eq!(d.n_classes(), 4);
        let counts = d.class_counts();
        assert!(counts.iter().all(|&c| c == 50), "{counts:?}");
    }

    #[test]
    fn density_approximate() {
        let d = spec().generate();
        let target = 0.05;
        let got = d.x.density();
        assert!(
            (got - target).abs() / target < 0.4,
            "density {got} vs target {target}"
        );
    }

    #[test]
    fn rows_unit_norm_times_scale() {
        let mut s = spec();
        s.scale = 2.0;
        let d = s.generate();
        for i in 0..20 {
            let norm = d.x.row(i).norm_sq().sqrt();
            assert!((norm - 2.0).abs() < 1e-9, "row {i} norm {norm}");
        }
    }

    #[test]
    fn classes_are_separable_in_feature_space() {
        // Same-class dot products should exceed cross-class on average.
        let d = spec().generate();
        let (mut same, mut cross) = (0.0, 0.0);
        let (mut ns, mut nc) = (0usize, 0usize);
        for i in 0..50 {
            for j in i + 1..50 {
                let dot = d.x.row(i).dot_sparse(&d.x.row(j));
                if d.y[i] == d.y[j] {
                    same += dot;
                    ns += 1;
                } else {
                    cross += dot;
                    nc += 1;
                }
            }
        }
        assert!(same / ns as f64 > 2.0 * (cross / nc as f64).max(1e-9));
    }

    #[test]
    fn label_noise_flips_labels() {
        let mut s = spec();
        s.label_noise = 0.3;
        let noisy = s.generate();
        let clean_labels: Vec<u32> = (0..s.n).map(|i| (i % s.classes) as u32).collect();
        let flips = noisy
            .y
            .iter()
            .zip(&clean_labels)
            .filter(|(a, b)| a != b)
            .count();
        let frac = flips as f64 / s.n as f64;
        assert!((frac - 0.3).abs() < 0.12, "flip fraction {frac}");
    }

    #[test]
    fn blobs_shape() {
        let d = BlobSpec {
            n: 90,
            dim: 3,
            classes: 3,
            spread: 0.2,
            seed: 5,
        }
        .generate();
        assert_eq!(d.n(), 90);
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.class_counts(), vec![30, 30, 30]);
    }

    #[test]
    fn blobs_cluster_around_centers() {
        let d = BlobSpec {
            n: 300,
            dim: 2,
            classes: 3,
            spread: 0.1,
            seed: 9,
        }
        .generate();
        // Mean of class 0 should be near (1, 0).
        let idx = d.class_indices(0);
        let mut mx = 0.0;
        let mut my = 0.0;
        for &i in &idx {
            let mut dense = vec![0.0; 2];
            d.x.row(i).scatter(&mut dense);
            mx += dense[0];
            my += dense[1];
        }
        mx /= idx.len() as f64;
        my /= idx.len() as f64;
        assert!((mx - 1.0).abs() < 0.1 && my.abs() < 0.1, "({mx},{my})");
    }
}
