//! Feature preprocessing: the transformations practitioners apply before
//! SVM training (LibSVM ships `svm-scale`; the public datasets of Table 2
//! are distributed pre-scaled in exactly these ways).

use crate::dataset::Dataset;
use gmp_sparse::{CsrBuilder, CsrMatrix};
use serde::{Deserialize, Serialize};

/// Per-column affine scaling `x' = (x - min) * scale` fitted on training
/// data and replayed on test data (LibSVM's `svm-scale -l 0 -u 1`).
///
/// Only *stored* entries are transformed — structural zeros stay zero, as
/// in `svm-scale`'s sparse behaviour when the column minimum is 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    scales: Vec<f64>,
}

impl MinMaxScaler {
    /// Fit per-column min/max. Structural zeros participate in the range
    /// (a column stored in fewer than `nrows` rows implicitly contains 0),
    /// matching dense semantics.
    pub fn fit(x: &CsrMatrix) -> MinMaxScaler {
        let d = x.ncols();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        let mut stored = vec![0usize; d];
        for i in 0..x.nrows() {
            let row = x.row(i);
            for (&c, &v) in row.indices.iter().zip(row.values) {
                let c = c as usize;
                mins[c] = mins[c].min(v);
                maxs[c] = maxs[c].max(v);
                stored[c] += 1;
            }
        }
        for c in 0..d {
            if stored[c] < x.nrows() && stored[c] > 0 {
                mins[c] = mins[c].min(0.0);
                maxs[c] = maxs[c].max(0.0);
            }
        }
        let scales = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| {
                if hi > lo {
                    1.0 / (hi - lo)
                } else {
                    0.0 // constant (or unseen) column maps to 0
                }
            })
            .collect();
        // Unseen columns: neutral transform.
        let mins = mins
            .into_iter()
            .map(|m| if m.is_finite() { m } else { 0.0 })
            .collect();
        MinMaxScaler { mins, scales }
    }

    /// Apply the fitted transform (entries clamp into `[0, 1]` so unseen
    /// out-of-range test values cannot explode).
    pub fn transform(&self, x: &CsrMatrix) -> CsrMatrix {
        assert_eq!(x.ncols(), self.mins.len(), "dimension mismatch");
        let mut b = CsrBuilder::new(x.ncols());
        b.reserve(x.nnz());
        for i in 0..x.nrows() {
            b.start_row();
            let row = x.row(i);
            for (&c, &v) in row.indices.iter().zip(row.values) {
                let ci = c as usize;
                let scaled = ((v - self.mins[ci]) * self.scales[ci]).clamp(0.0, 1.0);
                if scaled != 0.0 {
                    b.push(c, scaled);
                }
            }
        }
        b.finish()
    }
}

/// L2-normalize every row to unit norm (the standard text-data transform;
/// RCV1/News20 ship this way). Zero rows stay zero.
pub fn l2_normalize(x: &CsrMatrix) -> CsrMatrix {
    let mut b = CsrBuilder::new(x.ncols());
    b.reserve(x.nnz());
    for i in 0..x.nrows() {
        b.start_row();
        let row = x.row(i);
        let norm = row.norm_sq().sqrt();
        if norm > 0.0 {
            for (&c, &v) in row.indices.iter().zip(row.values) {
                b.push(c, v / norm);
            }
        }
    }
    b.finish()
}

/// Convenience: fit a scaler on `train`, producing scaled train and test
/// datasets with labels preserved.
pub fn scale_pair(train: &Dataset, test: &Dataset) -> (Dataset, Dataset, MinMaxScaler) {
    let scaler = MinMaxScaler::fit(&train.x);
    (
        Dataset::new(scaler.transform(&train.x), train.y.clone()),
        Dataset::new(scaler.transform(&test.x), test.y.clone()),
        scaler,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f64>], d: usize) -> CsrMatrix {
        CsrMatrix::from_dense(rows, d)
    }

    #[test]
    fn minmax_maps_training_range_to_unit() {
        let x = m(&[vec![2.0, 10.0], vec![4.0, 20.0], vec![3.0, 15.0]], 2);
        let s = MinMaxScaler::fit(&x);
        let t = s.transform(&x);
        let d = t.to_dense();
        assert!((d[0][0] - 0.0).abs() < 1e-12);
        assert!((d[1][0] - 1.0).abs() < 1e-12);
        assert!((d[2][0] - 0.5).abs() < 1e-12);
        assert!((d[2][1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn minmax_clamps_test_outliers() {
        let train = m(&[vec![0.0, 1.0], vec![2.0, 3.0]], 2);
        let s = MinMaxScaler::fit(&train);
        let test = m(&[vec![100.0, -50.0]], 2);
        let t = s.transform(&test);
        let d = t.to_dense();
        assert_eq!(d[0][0], 1.0);
        assert_eq!(d[0][1], 0.0);
    }

    #[test]
    fn minmax_constant_column_collapses_to_zero() {
        let x = m(&[vec![5.0], vec![5.0]], 1);
        let s = MinMaxScaler::fit(&x);
        let t = s.transform(&x);
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn minmax_unseen_column_neutral() {
        let train = m(&[vec![1.0, 0.0]], 2); // column 1 never stored
        let s = MinMaxScaler::fit(&train);
        let test = m(&[vec![0.0, 7.0]], 2);
        let t = s.transform(&test);
        // Unseen column scale is 0: value collapses (no training range).
        assert_eq!(t.row(0).nnz(), 0);
    }

    #[test]
    fn l2_unit_norms() {
        let x = m(&[vec![3.0, 4.0], vec![0.0, 0.0], vec![5.0, 0.0]], 2);
        let t = l2_normalize(&x);
        assert!((t.row(0).norm_sq() - 1.0).abs() < 1e-12);
        assert_eq!(t.row(1).nnz(), 0);
        assert!((t.row(2).norm_sq() - 1.0).abs() < 1e-12);
        let d = t.to_dense();
        assert!((d[0][0] - 0.6).abs() < 1e-12);
        assert!((d[0][1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn scale_pair_is_consistent() {
        let train = Dataset::new(m(&[vec![0.0, 2.0], vec![10.0, 4.0]], 2), vec![0, 1]);
        let test = Dataset::new(m(&[vec![5.0, 3.0]], 2), vec![0]);
        let (tr, te, scaler) = scale_pair(&train, &test);
        assert_eq!(tr.y, train.y);
        assert_eq!(te.y, test.y);
        let direct = scaler.transform(&test.x);
        assert_eq!(te.x, direct);
        let d = te.x.to_dense();
        assert!((d[0][0] - 0.5).abs() < 1e-12);
        assert!((d[0][1] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn transform_rejects_wrong_width() {
        let s = MinMaxScaler::fit(&m(&[vec![1.0]], 1));
        let _ = s.transform(&m(&[vec![1.0, 2.0]], 2));
    }
}
