//! Dataset substrate: LibSVM-format I/O and deterministic synthetic
//! generators that mirror the paper's nine evaluation datasets (Table 2).
//!
//! The paper evaluates on public datasets (Adult, RCV1, Real-sim, Webdata,
//! CIFAR-10, Connect-4, MNIST, MNIST8M, News20). Those files are not
//! available in this environment, so [`paper::PaperDataset`] generates
//! synthetic stand-ins preserving the properties that drive solver
//! behaviour — class count, dimensionality, feature sparsity, class overlap
//! and the published (C, γ) hyper-parameters — at reduced cardinality (the
//! per-dataset scale factor is reported by every experiment binary).

pub mod dataset;
pub mod libsvm_format;
pub mod paper;
pub mod preprocess;
pub mod synth;

pub use dataset::{Dataset, SplitDataset};
pub use libsvm_format::{parse_libsvm, write_libsvm, LibsvmStreamParser, ParseError};
pub use paper::PaperDataset;
pub use preprocess::{l2_normalize, scale_pair, MinMaxScaler};
pub use synth::{BlobSpec, SynthSpec};
