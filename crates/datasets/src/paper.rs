//! Synthetic stand-ins for the paper's nine evaluation datasets (Table 2).
//!
//! Each variant records the published class count, cardinality,
//! dimensionality and (C, γ) hyper-parameters, plus a density and
//! difficulty profile estimated from the public datasets. `generate(scale)`
//! produces a deterministic synthetic dataset with the same shape at
//! `scale` times the published cardinality — experiments report the scale
//! they ran at, and `EXPERIMENTS.md` records the substitution.

use crate::dataset::{Dataset, SplitDataset};
use crate::synth::SynthSpec;
use serde::{Deserialize, Serialize};

/// The nine datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperDataset {
    /// Adult (a9a): 2 classes, 32,561 x 123, C=100, γ=0.5.
    Adult,
    /// RCV1: 2 classes, 20,242 x 47,236, C=100, γ=0.125.
    Rcv1,
    /// Real-sim: 2 classes, 72,309 x 20,958, C=4, γ=0.5.
    RealSim,
    /// Webdata (w8a-like): 2 classes, 49,749 x 300, C=10, γ=0.5.
    Webdata,
    /// CIFAR-10: 10 classes, 50,000 x 3,072, C=10, γ=0.002.
    Cifar10,
    /// Connect-4: 3 classes, 67,557 x 126, C=1, γ=0.3.
    Connect4,
    /// MNIST: 10 classes, 60,000 x 780, C=10, γ=0.125.
    Mnist,
    /// MNIST8M: 10 classes, 8,100,000 x 784, C=1000, γ=0.006.
    Mnist8m,
    /// News20: 20 classes, 15,935 x 62,061, C=4, γ=0.5.
    News20,
}

/// Published metadata of one dataset plus the generator profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Short name used in tables.
    pub name: &'static str,
    /// Number of classes (Table 2).
    pub classes: usize,
    /// Published cardinality (Table 2).
    pub cardinality: usize,
    /// Published dimensionality (Table 2).
    pub dimension: usize,
    /// Published penalty parameter C (Table 2).
    pub c: f64,
    /// Published RBF γ (Table 2).
    pub gamma: f64,
    /// Approximate feature density of the public dataset.
    pub density: f64,
    /// Class-signature fraction for the generator (separability).
    pub class_sep: f64,
    /// Label-noise fraction (≈ the irreducible training error of Table 4).
    pub label_noise: f64,
}

impl PaperDataset {
    /// All nine datasets in Table 2 / Table 3 order.
    pub fn all() -> [PaperDataset; 9] {
        [
            PaperDataset::Adult,
            PaperDataset::Rcv1,
            PaperDataset::RealSim,
            PaperDataset::Webdata,
            PaperDataset::Cifar10,
            PaperDataset::Connect4,
            PaperDataset::Mnist,
            PaperDataset::Mnist8m,
            PaperDataset::News20,
        ]
    }

    /// The four binary datasets (used by Figs. 9/10 and the binary-level
    /// sensitivity studies).
    pub fn binary() -> [PaperDataset; 4] {
        [
            PaperDataset::Adult,
            PaperDataset::Rcv1,
            PaperDataset::RealSim,
            PaperDataset::Webdata,
        ]
    }

    /// Published metadata and generation profile.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            PaperDataset::Adult => DatasetSpec {
                name: "Adult",
                classes: 2,
                cardinality: 32_561,
                dimension: 123,
                c: 100.0,
                gamma: 0.5,
                density: 0.11,
                class_sep: 0.65,
                label_noise: 0.05,
            },
            PaperDataset::Rcv1 => DatasetSpec {
                name: "RCV1",
                classes: 2,
                cardinality: 20_242,
                dimension: 47_236,
                c: 100.0,
                gamma: 0.125,
                density: 0.0016,
                class_sep: 0.85,
                label_noise: 0.001,
            },
            PaperDataset::RealSim => DatasetSpec {
                name: "Real-sim",
                classes: 2,
                cardinality: 72_309,
                dimension: 20_958,
                c: 4.0,
                gamma: 0.5,
                density: 0.0025,
                class_sep: 0.85,
                label_noise: 0.003,
            },
            PaperDataset::Webdata => DatasetSpec {
                name: "Webdata",
                classes: 2,
                cardinality: 49_749,
                dimension: 300,
                c: 10.0,
                gamma: 0.5,
                density: 0.04,
                class_sep: 0.75,
                label_noise: 0.005,
            },
            PaperDataset::Cifar10 => DatasetSpec {
                name: "CIFAR-10",
                classes: 10,
                cardinality: 50_000,
                dimension: 3_072,
                c: 10.0,
                gamma: 0.002,
                density: 0.99,
                class_sep: 0.55,
                label_noise: 0.004,
            },
            PaperDataset::Connect4 => DatasetSpec {
                name: "Connect-4",
                classes: 3,
                cardinality: 67_557,
                dimension: 126,
                c: 1.0,
                gamma: 0.3,
                density: 0.33,
                class_sep: 0.6,
                label_noise: 0.04,
            },
            PaperDataset::Mnist => DatasetSpec {
                name: "MNIST",
                classes: 10,
                cardinality: 60_000,
                dimension: 780,
                c: 10.0,
                gamma: 0.125,
                density: 0.19,
                class_sep: 0.7,
                label_noise: 0.0,
            },
            PaperDataset::Mnist8m => DatasetSpec {
                name: "MNIST8M",
                classes: 10,
                cardinality: 8_100_000,
                dimension: 784,
                c: 1000.0,
                gamma: 0.006,
                density: 0.25,
                class_sep: 0.7,
                label_noise: 0.0,
            },
            PaperDataset::News20 => DatasetSpec {
                name: "News20",
                classes: 20,
                cardinality: 15_935,
                dimension: 62_061,
                c: 4.0,
                gamma: 0.5,
                density: 0.0013,
                class_sep: 0.8,
                label_noise: 0.02,
            },
        }
    }

    /// Generate the synthetic stand-in at `scale` times the published
    /// cardinality (clamped to at least 8 instances per class).
    ///
    /// Feature values are L2-normalized then multiplied by
    /// `1/sqrt(2γ)` so the published γ operates in a sensible range —
    /// see `crate::synth` docs.
    pub fn generate(&self, scale: f64) -> Dataset {
        let spec = self.spec();
        let n = ((spec.cardinality as f64 * scale).round() as usize).max(8 * spec.classes);
        let dim = spec.dimension;
        SynthSpec {
            n,
            dim,
            classes: spec.classes,
            density: spec.density,
            class_sep: spec.class_sep,
            label_noise: spec.label_noise,
            scale: 1.0 / (2.0 * spec.gamma).sqrt(),
            seed: 0x9e37_79b9 ^ (spec.cardinality as u64),
        }
        .generate()
    }

    /// Generate and split 80/20 train/test (deterministic).
    pub fn generate_split(&self, scale: f64) -> SplitDataset {
        self.generate(scale).split(0.2, 0xdead_beef)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_consistent_with_table2() {
        for ds in PaperDataset::all() {
            let s = ds.spec();
            assert!(s.classes >= 2);
            assert!(s.c > 0.0 && s.gamma > 0.0);
            assert!(s.density > 0.0 && s.density <= 1.0);
        }
        assert_eq!(PaperDataset::Mnist.spec().classes, 10);
        assert_eq!(PaperDataset::News20.spec().classes, 20);
        assert_eq!(PaperDataset::Connect4.spec().classes, 3);
        assert_eq!(PaperDataset::Adult.spec().dimension, 123);
        assert_eq!(PaperDataset::Mnist8m.spec().cardinality, 8_100_000);
    }

    #[test]
    fn binary_subset() {
        for ds in PaperDataset::binary() {
            assert_eq!(ds.spec().classes, 2, "{:?}", ds);
        }
    }

    #[test]
    fn generation_matches_spec_shape() {
        let d = PaperDataset::Mnist.generate(0.01);
        assert_eq!(d.n(), 600);
        assert_eq!(d.dim(), 780);
        assert_eq!(d.n_classes(), 10);
    }

    #[test]
    fn scale_floor_keeps_classes_populated() {
        let d = PaperDataset::News20.generate(0.0001);
        assert!(d.n() >= 8 * 20);
        assert_eq!(d.n_classes(), 20);
        assert!(d.class_counts().iter().all(|&c| c >= 2));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            PaperDataset::Adult.generate(0.01),
            PaperDataset::Adult.generate(0.01)
        );
    }

    #[test]
    fn gamma_operating_range() {
        // γ·E[||xi - xj||²] should land near [0.1, 1.5] for RBF to be
        // informative.
        for ds in [
            PaperDataset::Adult,
            PaperDataset::Cifar10,
            PaperDataset::News20,
        ] {
            let spec = ds.spec();
            let d = ds.generate(0.005);
            let mut acc = 0.0;
            let mut cnt = 0;
            let norms = d.x.row_norms_sq();
            for i in 0..20.min(d.n()) {
                for j in (i + 1)..20.min(d.n()) {
                    let dot = d.x.row(i).dot_sparse(&d.x.row(j));
                    acc += norms[i] + norms[j] - 2.0 * dot;
                    cnt += 1;
                }
            }
            let gd2 = spec.gamma * acc / cnt as f64;
            assert!(
                (0.05..=2.0).contains(&gd2),
                "{}: γ·E[d²] = {gd2}",
                spec.name
            );
        }
    }

    #[test]
    fn split_partitions() {
        let s = PaperDataset::Webdata.generate_split(0.005);
        let total = s.train.n() + s.test.n();
        assert_eq!(total, PaperDataset::Webdata.generate(0.005).n());
        assert!(s.test.n() > 0 && s.train.n() > s.test.n());
    }
}
