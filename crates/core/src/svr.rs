//! ε-support-vector regression on the GMP-SVM solver stack.
//!
//! The paper's related work (§5, [34]) notes the batched-GPU approach
//! "extended … for SVM regression problems"; this module is that
//! extension. The ε-SVR dual
//!
//! ```text
//! min ½(α-α*)ᵀK(α-α*) + ε Σ(α_i+α*_i) - Σ z_i(α_i-α*_i)
//! s.t. Σ(α_i-α*_i) = 0,  0 ≤ α_i, α*_i ≤ C
//! ```
//!
//! maps to the solvers' general form over `2n` variables: `β_i = α_i`
//! (label `+1`) and `β_{n+i} = α*_i` (label `-1`) with linear term
//! `p_i = ε - z_i`, `p_{n+i} = ε + z_i` — exactly LibSVM's `SVR_Q`
//! construction. The kernel matrix of the doubled problem mirrors the base
//! kernel (`K'(s, t) = K(s mod n, t mod n)`), served by [`MirroredRows`]
//! without duplicating the data.

use crate::params::SvmParams;
use gmp_gpusim::{CpuExecutor, Executor};
use gmp_kernel::{KernelKind, KernelOracle, KernelRows, RowProviderStats};
use gmp_smo::{BatchedSmoSolver, SolverResult};
use gmp_sparse::{CsrMatrix, DenseMatrix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// ε-SVR hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvrParams {
    /// Kernel function.
    pub kernel: KernelKind,
    /// Penalty parameter C.
    pub c: f64,
    /// Tube half-width ε (residuals inside the tube cost nothing).
    pub epsilon: f64,
    /// SMO stopping tolerance.
    pub tolerance: f64,
    /// Working-set size for the batched solver.
    pub ws_size: usize,
    /// New violators per round.
    pub q: usize,
}

impl Default for SvrParams {
    fn default() -> Self {
        SvrParams {
            kernel: KernelKind::Rbf { gamma: 0.5 },
            c: 1.0,
            epsilon: 0.1,
            tolerance: 1e-3,
            ws_size: 256,
            q: 128,
        }
    }
}

impl From<SvmParams> for SvrParams {
    fn from(p: SvmParams) -> Self {
        SvrParams {
            kernel: p.kernel,
            c: p.c,
            epsilon: 0.1,
            tolerance: p.eps,
            ws_size: p.ws_size,
            q: p.q,
        }
    }
}

/// A trained ε-SVR model: `ŷ(x) = Σ coef_j K(sv_j, x) - rho`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvrModel {
    /// Kernel used at training time.
    pub kernel: KernelKind,
    /// Support vectors (instances with `α_i ≠ α*_i`).
    pub svs: CsrMatrix,
    /// `α_i - α*_i` per support vector.
    pub coef: Vec<f64>,
    /// Bias.
    pub rho: f64,
    /// Solver iterations (diagnostics).
    pub iterations: u64,
    /// Whether the solver reached tolerance.
    pub converged: bool,
}

/// Row provider of the doubled SVR problem: row `t` of the `2n x 2n`
/// kernel matrix is row `t mod n` of the base kernel, tiled twice.
pub struct MirroredRows {
    oracle: Arc<KernelOracle>,
    resident: HashMap<usize, Vec<f64>>,
    capacity: usize,
    order: Vec<usize>,
    rows_computed: u64,
    hits: u64,
    misses: u64,
}

impl MirroredRows {
    /// A provider over `oracle`'s dataset, doubled, caching up to
    /// `capacity` assembled rows.
    pub fn new(oracle: Arc<KernelOracle>, capacity: usize) -> Self {
        MirroredRows {
            oracle,
            resident: HashMap::new(),
            capacity: capacity.max(2),
            order: Vec::new(),
            rows_computed: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn base_n(&self) -> usize {
        self.oracle.n()
    }
}

impl KernelRows for MirroredRows {
    fn n(&self) -> usize {
        2 * self.base_n()
    }

    fn diag(&self, i: usize) -> f64 {
        self.oracle.diag(i % self.base_n())
    }

    fn ensure(&mut self, exec: &dyn Executor, ids: &[usize]) {
        let n = self.base_n();
        // Distinct base rows still missing.
        let mut missing_base: Vec<usize> = Vec::new();
        for &id in ids {
            if self.resident.contains_key(&id) {
                self.hits += 1;
                continue;
            }
            self.misses += 1;
            let b = id % n;
            if !missing_base.contains(&b) {
                missing_base.push(b);
            }
        }
        if !missing_base.is_empty() {
            let mut block = DenseMatrix::zeros(missing_base.len(), n);
            self.oracle.compute_rows(exec, &missing_base, &mut block);
            self.rows_computed += missing_base.len() as u64;
            for (bi, &b) in missing_base.iter().enumerate() {
                let base = block.row(bi);
                let mut tiled = Vec::with_capacity(2 * n);
                tiled.extend_from_slice(base);
                tiled.extend_from_slice(base);
                // Both mirrored ids share the tiled row.
                for id in [b, b + n] {
                    if ids.contains(&id) || self.resident.len() < self.capacity {
                        self.insert(id, tiled.clone());
                    }
                }
            }
        }
        // Mirrored ids whose base row is resident under the twin id.
        let twins: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|id| !self.resident.contains_key(id))
            .collect();
        for id in twins {
            let twin = if id >= n { id - n } else { id + n };
            let row = self
                .resident
                .get(&twin)
                // gmp:allow-panic — ensure() inserts twin rows pairwise, so the twin is resident
                .expect("twin row resident after batch")
                .clone();
            self.insert(id, row);
        }
    }

    fn row(&self, id: usize) -> &[f64] {
        self.resident
            .get(&id)
            // gmp:allow-panic — row residency is guaranteed by the preceding ensure(); absence is a solver bug
            .unwrap_or_else(|| panic!("row {id} not resident"))
    }

    fn is_resident(&self, id: usize) -> bool {
        self.resident.contains_key(&id)
    }

    fn stats(&self) -> RowProviderStats {
        RowProviderStats {
            kernel_evals: self.rows_computed * self.base_n() as u64,
            rows_computed: self.rows_computed,
            buffer_hits: self.hits,
            buffer_misses: self.misses,
            evictions: 0,
        }
    }
}

impl MirroredRows {
    fn insert(&mut self, id: usize, row: Vec<f64>) {
        while self.resident.len() >= self.capacity {
            // FIFO evict, skipping nothing (capacity >= working set).
            let victim = self.order.remove(0);
            self.resident.remove(&victim);
        }
        if self.resident.insert(id, row).is_none() {
            self.order.push(id);
        }
    }
}

/// Train an ε-SVR on features `x` and targets `z`.
pub fn train_svr(params: SvrParams, x: &CsrMatrix, z: &[f64]) -> SvrModel {
    let n = x.nrows();
    assert_eq!(z.len(), n, "target/instance count mismatch");
    assert!(n >= 2, "need at least two instances");
    assert!(params.epsilon >= 0.0 && params.c > 0.0);
    let exec = CpuExecutor::xeon(1);
    let oracle = Arc::new(KernelOracle::new(Arc::new(x.clone()), params.kernel));

    // Doubled problem.
    let mut y = vec![1.0f64; 2 * n];
    y[n..].fill(-1.0);
    let mut f_init = Vec::with_capacity(2 * n);
    for zi in z {
        f_init.push(params.epsilon - zi); // y=+1 block: f = +1·(ε - z)
    }
    for zi in z {
        f_init.push(-params.epsilon - zi); // y=-1 block: f = -1·(ε + z)
    }
    let caps = vec![params.c; 2 * n];

    let ws = params.ws_size.min(2 * n).max(4);
    let mut rows = MirroredRows::new(oracle, 2 * ws);
    let solver = BatchedSmoSolver::new(gmp_smo::BatchedParams {
        base: gmp_smo::SmoParams {
            c: params.c,
            eps: params.tolerance,
            ..Default::default()
        },
        ws_size: ws,
        q: (params.q.min(ws) / 2).max(2) * 2,
        inner_relax: 0.1,
        max_inner: ws * 4,
    });
    let result: SolverResult = solver.solve_with_init(&y, &mut rows, &exec, &caps, &f_init);

    // Collapse β to per-instance coefficients α_i - α*_i.
    let mut sv_rows = Vec::new();
    let mut coef = Vec::new();
    for i in 0..n {
        let c = result.alpha[i] - result.alpha[n + i];
        if c != 0.0 {
            sv_rows.push(i);
            coef.push(c);
        }
    }
    SvrModel {
        kernel: params.kernel,
        svs: x.select_rows(&sv_rows),
        coef,
        rho: result.rho,
        iterations: result.iterations,
        converged: result.converged,
    }
}

impl SvrModel {
    /// Predict targets for every row of `test`.
    pub fn predict(&self, test: &CsrMatrix) -> Vec<f64> {
        let exec = CpuExecutor::xeon(1);
        if test.nrows() == 0 || self.svs.nrows() == 0 {
            return vec![-self.rho; test.nrows()];
        }
        let oracle = KernelOracle::new(Arc::new(self.svs.clone()), self.kernel);
        let rows: Vec<usize> = (0..test.nrows()).collect();
        let mut block = DenseMatrix::zeros(test.nrows(), self.svs.nrows());
        oracle.compute_cross(&exec, test, &rows, &mut block);
        (0..test.nrows())
            .map(|t| {
                let krow = block.row(t);
                let mut v = 0.0;
                for (j, &c) in self.coef.iter().enumerate() {
                    v += c * krow[j];
                }
                v - self.rho
            })
            .collect()
    }

    /// Number of support vectors.
    pub fn n_sv(&self) -> usize {
        self.svs.nrows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: &[Vec<f64>], d: usize) -> CsrMatrix {
        CsrMatrix::from_dense(rows, d)
    }

    #[test]
    fn fits_linear_function_with_linear_kernel() {
        // z = 2x - 1 on [0, 2].
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 20.0]).collect();
        let z: Vec<f64> = x.iter().map(|v| 2.0 * v[0] - 1.0).collect();
        let params = SvrParams {
            kernel: KernelKind::Linear,
            c: 10.0,
            epsilon: 0.05,
            ..Default::default()
        };
        let model = train_svr(params, &dense(&x, 1), &z);
        assert!(model.converged);
        let pred = model.predict(&dense(&x, 1));
        for (p, t) in pred.iter().zip(&z) {
            assert!((p - t).abs() < 0.1, "pred {p} vs target {t}");
        }
    }

    #[test]
    fn fits_sine_with_rbf() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
        let z: Vec<f64> = x.iter().map(|v| v[0].sin()).collect();
        let params = SvrParams {
            kernel: KernelKind::Rbf { gamma: 1.0 },
            c: 10.0,
            epsilon: 0.02,
            ..Default::default()
        };
        let model = train_svr(params, &dense(&x, 1), &z);
        assert!(model.converged);
        let pred = model.predict(&dense(&x, 1));
        let mse: f64 = pred
            .iter()
            .zip(&z)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / z.len() as f64;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn tube_suppresses_support_vectors() {
        // Constant target: with a wide tube, nothing should be a SV.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let z = vec![0.5; 20];
        let params = SvrParams {
            kernel: KernelKind::Rbf { gamma: 0.1 },
            c: 1.0,
            epsilon: 1.0, // tube wider than the (zero) spread
            ..Default::default()
        };
        let model = train_svr(params, &dense(&x, 1), &z);
        assert_eq!(model.n_sv(), 0, "constant target inside tube needs no SVs");
        // Prediction falls back to -rho; rho must then be ~ -0.5 to track
        // the mean... with no SVs, rho = midpoint of f bounds.
        let pred = model.predict(&dense(&x, 1));
        for p in pred {
            assert!((p - 0.5).abs() < 1.0 + 1e-9, "degenerate prediction {p}");
        }
    }

    #[test]
    fn smaller_epsilon_more_svs() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 10.0]).collect();
        let z: Vec<f64> = x.iter().map(|v| (2.0 * v[0]).cos()).collect();
        let base = SvrParams {
            kernel: KernelKind::Rbf { gamma: 1.0 },
            c: 5.0,
            ..Default::default()
        };
        let loose = train_svr(
            SvrParams {
                epsilon: 0.5,
                ..base
            },
            &dense(&x, 1),
            &z,
        );
        let tight = train_svr(
            SvrParams {
                epsilon: 0.01,
                ..base
            },
            &dense(&x, 1),
            &z,
        );
        assert!(
            tight.n_sv() > loose.n_sv(),
            "tight {} vs loose {}",
            tight.n_sv(),
            loose.n_sv()
        );
    }

    #[test]
    fn mirrored_rows_tile_correctly() {
        let x = dense(&[vec![1.0], vec![2.0], vec![3.0]], 1);
        let oracle = Arc::new(KernelOracle::new(Arc::new(x), KernelKind::Linear));
        let mut rows = MirroredRows::new(oracle.clone(), 8);
        let exec = CpuExecutor::xeon(1);
        rows.ensure(&exec, &[1, 4]); // instance 1 and its mirror 1+3
        assert_eq!(rows.n(), 6);
        let r1 = rows.row(1);
        let r4 = rows.row(4);
        assert_eq!(r1, r4, "mirrored rows identical");
        assert_eq!(r1.len(), 6);
        assert_eq!(r1[0], 2.0); // K(x1, x0) = 2
        assert_eq!(r1[3], 2.0); // tiled copy
        assert_eq!(rows.diag(1), rows.diag(4));
        // Only ONE base row computed for the pair.
        assert_eq!(rows.stats().rows_computed, 1);
    }

    #[test]
    fn equality_constraint_on_collapsed_coefficients() {
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i as f64 * 0.37).sin(), i as f64 / 30.0])
            .collect();
        let z: Vec<f64> = x.iter().map(|v| v[0] + 0.5 * v[1]).collect();
        let model = train_svr(
            SvrParams {
                kernel: KernelKind::Rbf { gamma: 0.5 },
                c: 2.0,
                epsilon: 0.05,
                ..Default::default()
            },
            &dense(&x, 2),
            &z,
        );
        let sum: f64 = model.coef.iter().sum();
        assert!(sum.abs() < 1e-9, "Σ(α - α*) = {sum}");
        assert!(model.coef.iter().all(|&c| c.abs() <= 2.0 + 1e-12));
    }

    #[test]
    fn empty_test_prediction() {
        let x = dense(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]], 1);
        let z = vec![0.0, 1.0, 2.0, 3.0];
        let model = train_svr(SvrParams::default(), &x, &z);
        assert!(model.predict(&CsrMatrix::empty(1)).is_empty());
    }
}
