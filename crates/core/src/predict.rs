//! Prediction with support-vector and kernel-value sharing (§3.3.3, Fig. 2).

use crate::model::MpSvmModel;
use crate::params::Backend;
use crate::telemetry::PredictReport;
use crate::trainer::{resolve_host_threads_opt, TrainError};
use gmp_gpusim::cost::KernelCost;
use gmp_gpusim::pool::parallel_fill;
use gmp_gpusim::{CpuExecutor, Device, Executor, Stream};
use gmp_kernel::{ComputeBackendKind, KernelOracle, RowScorer};
use gmp_prob::{couple_gaussian, sigmoid_predict, PairwiseProbs};
use gmp_sparse::{CsrMatrix, DenseMatrix};
use std::sync::Arc;
use std::time::Instant;

/// Prediction results.
#[derive(Debug, Clone)]
pub struct PredictOutcome {
    /// Predicted class per instance.
    pub labels: Vec<u32>,
    /// Multi-class probabilities per instance (rows sum to 1). Empty when
    /// the model has no sigmoids.
    pub probabilities: Vec<Vec<f64>>,
    /// Decision values per instance per binary SVM (pair-enumeration
    /// order) — the Table 4 comparison quantity.
    pub decision_values: Vec<Vec<f64>>,
    /// Timings and counters.
    pub report: PredictReport,
}

impl MpSvmModel {
    /// Predict labels (and probabilities, when the model has sigmoids) for
    /// every row of `test`.
    ///
    /// Backend selects the execution/cost model **and** the sharing
    /// strategy: GMP-SVM and CMP-SVM compute the test-by-SV kernel block
    /// once for all binary SVMs (support-vector sharing); the LibSVM-like
    /// and GPU-baseline paths score one binary SVM at a time against its
    /// own support vectors, recomputing kernel values for shared SVs.
    pub fn predict(
        &self,
        test: &CsrMatrix,
        backend: &Backend,
    ) -> Result<PredictOutcome, TrainError> {
        self.predict_with_threads(test, backend, None)
    }

    /// [`MpSvmModel::predict`] on an explicit compute backend (instead of
    /// the `GMP_BACKEND` selection).
    pub fn predict_with_compute_backend(
        &self,
        test: &CsrMatrix,
        backend: &Backend,
        compute: ComputeBackendKind,
    ) -> Result<PredictOutcome, TrainError> {
        self.predict_inner(test, backend, resolve_host_threads_opt(None), None, compute)
    }

    /// [`MpSvmModel::predict`] with an explicit real host-thread count for
    /// the numeric work (kernel blocks, decision accumulation, sigmoids,
    /// coupling). `None` = auto (`GMP_HOST_THREADS` env var, else available
    /// parallelism). An explicit value is honoured verbatim, so the
    /// multi-threaded path can be exercised on any machine.
    pub fn predict_with_threads(
        &self,
        test: &CsrMatrix,
        backend: &Backend,
        host_threads: Option<usize>,
    ) -> Result<PredictOutcome, TrainError> {
        self.predict_inner(
            test,
            backend,
            resolve_host_threads_opt(host_threads),
            None,
            ComputeBackendKind::from_env(),
        )
    }

    fn predict_inner(
        &self,
        test: &CsrMatrix,
        backend: &Backend,
        ht: usize,
        prepared_oracle: Option<&KernelOracle>,
        compute: ComputeBackendKind,
    ) -> Result<PredictOutcome, TrainError> {
        let wall = Instant::now();
        let m = test.nrows();
        let k = self.classes;
        let n_binaries = self.binaries.len();
        let shared = matches!(backend, Backend::Gmp { .. } | Backend::CpuBatched { .. });

        // Executor + optional device.
        let device = match backend {
            Backend::GpuBaseline { device } | Backend::Gmp { device, .. } => {
                Some(Device::new(device.clone()))
            }
            _ => None,
        };
        let exec: Box<dyn Executor> = match backend {
            Backend::CpuClassic { threads } | Backend::CpuBatched { threads } => {
                Box::new(CpuExecutor::xeon(*threads as u32))
            }
            // gmp:allow-panic — this match arm is only reached for GPU backends, which always carry a device
            _ => Box::new(Stream::new(device.clone().expect("gpu backend"), 1.0)),
        };
        let exec = &*exec;

        let mut decision_values = vec![vec![0.0f64; n_binaries]; m];
        let mut kernel_evals = 0u64;
        let sim_decision_start = exec.elapsed();

        if m > 0 && self.sv_pool.nrows() > 0 {
            // Squared norms of every test row, once for all chunks and all
            // binary SVMs (the unshared path would otherwise recompute them
            // per binary).
            let test_norms = test.row_norms_sq();
            if shared {
                kernel_evals += match prepared_oracle {
                    Some(oracle) => self.decisions_shared_with(
                        test,
                        &test_norms,
                        exec,
                        device.as_ref(),
                        oracle,
                        &mut decision_values,
                    )?,
                    None => self.decisions_shared(
                        test,
                        &test_norms,
                        exec,
                        device.as_ref(),
                        ht,
                        compute,
                        &mut decision_values,
                    )?,
                };
            } else {
                kernel_evals += self.decisions_unshared(
                    test,
                    &test_norms,
                    exec,
                    device.as_ref(),
                    ht,
                    compute,
                    &mut decision_values,
                )?;
            }
        } else {
            for row in decision_values.iter_mut() {
                for (b, v) in self.binaries.iter().zip(row.iter_mut()) {
                    *v = -b.rho;
                }
            }
        }
        let sim_decision_s = exec.elapsed() - sim_decision_start;

        // --- Sigmoids (Equation 12).
        let sim_sigmoid_start = exec.elapsed();
        let has_prob = self.has_probability();
        let mut pairwise: Vec<PairwiseProbs> = Vec::new();
        if has_prob && m > 0 {
            // Per-instance sigmoid application is embarrassingly parallel;
            // each slot is written by exactly one thread.
            pairwise = vec![PairwiseProbs::new(k.max(2)); m];
            parallel_fill(ht, &mut pairwise, |i| {
                let dv = &decision_values[i];
                let mut r = PairwiseProbs::new(k.max(2));
                for (bi, b) in self.binaries.iter().enumerate() {
                    // gmp:allow-panic — guarded: has_probability() was checked by the caller of this path
                    let sig = b.sigmoid.as_ref().expect("has_probability checked");
                    r.set(b.s as usize, b.t as usize, sigmoid_predict(dv[bi], sig));
                }
                r
            });
            exec.charge(KernelCost::map((m * n_binaries) as u64, 8, 16));
        }
        let sim_sigmoid_s = exec.elapsed() - sim_sigmoid_start;

        // --- Coupling (Problem 14 via Equation 15) + labels.
        let sim_coupling_start = exec.elapsed();
        let mut probabilities: Vec<Vec<f64>> = Vec::new();
        let labels: Vec<u32> = if has_prob && m > 0 {
            // One Gaussian elimination (k³/3 flops) per instance, all
            // instances in parallel on the device (§3.2 Phase iii) — and
            // genuinely in parallel on the host.
            exec.charge(KernelCost::map(
                m as u64,
                ((k * k * k) / 3).max(1) as u64,
                (k * k * 8) as u64,
            ));
            probabilities = vec![Vec::new(); m];
            parallel_fill(ht, &mut probabilities, |i| couple_gaussian(&pairwise[i]));
            probabilities.iter().map(|p| argmax(p) as u32).collect()
        } else {
            // One-against-one voting.
            decision_values
                .iter()
                .map(|dv| {
                    let mut votes = vec![0u32; k.max(1)];
                    for (bi, b) in self.binaries.iter().enumerate() {
                        if dv[bi] > 0.0 {
                            votes[b.s as usize] += 1;
                        } else {
                            votes[b.t as usize] += 1;
                        }
                    }
                    argmax_u32(&votes) as u32
                })
                .collect()
        };
        let sim_coupling_s = exec.elapsed() - sim_coupling_start;

        let report = PredictReport {
            backend: backend.label(),
            compute_backend: compute.name().to_string(),
            wall_s: wall.elapsed().as_secs_f64(),
            sim_s: exec.elapsed(),
            kernel_evals,
            unique_svs: self.n_sv(),
            total_sv_refs: self.total_sv_refs(),
            sim_decision_s,
            sim_sigmoid_s,
            sim_coupling_s,
            host_threads: ht,
        };
        Ok(PredictOutcome {
            labels,
            probabilities,
            decision_values,
            report,
        })
    }

    /// Shared path: one `test x sv_pool` kernel block serves every binary.
    #[allow(clippy::too_many_arguments)]
    fn decisions_shared(
        &self,
        test: &CsrMatrix,
        test_norms: &[f64],
        exec: &dyn Executor,
        device: Option<&Device>,
        host_threads: usize,
        compute: ComputeBackendKind,
        out: &mut [Vec<f64>],
    ) -> Result<u64, TrainError> {
        let oracle = KernelOracle::new(Arc::new(self.sv_pool.clone()), self.kernel)
            .with_host_threads(host_threads)
            .with_backend(compute.instance());
        self.decisions_shared_with(test, test_norms, exec, device, &oracle, out)
    }

    /// [`MpSvmModel::decisions_shared`] against a caller-held oracle over
    /// the SV pool, so long-lived predictors ([`PreparedPredictor`]) pay
    /// the pool clone + norm precomputation once instead of per call.
    /// Host threading rides on the oracle's backend configuration.
    fn decisions_shared_with(
        &self,
        test: &CsrMatrix,
        test_norms: &[f64],
        exec: &dyn Executor,
        device: Option<&Device>,
        oracle: &KernelOracle,
        out: &mut [Vec<f64>],
    ) -> Result<u64, TrainError> {
        let n_sv = self.sv_pool.nrows();
        let evals_before = oracle.eval_count();
        // Device residency: SV pool + one chunk of the kernel block.
        let _sv_mem = match device {
            Some(d) => {
                let bytes = self.sv_pool.mem_bytes() as u64;
                let a = d.alloc(bytes)?;
                exec.charge_transfer(bytes);
                Some(a)
            }
            None => None,
        };
        let scorers: Vec<RowScorer<'_>> = self
            .binaries
            .iter()
            .enumerate()
            .map(|(bi, b)| RowScorer {
                out_col: bi,
                sv_idx: Some(&b.sv_idx),
                coef: &b.coef,
                rho: b.rho,
            })
            .collect();
        let chunk = chunk_rows(test.nrows(), n_sv, device);
        let mut start = 0usize;
        while start < test.nrows() {
            let end = (start + chunk).min(test.nrows());
            let rows: Vec<usize> = (start..end).collect();
            let _block_mem = match device {
                Some(d) => Some(d.alloc((rows.len() * n_sv * 8) as u64)?),
                None => None,
            };
            let mut block = DenseMatrix::zeros(rows.len(), n_sv);
            oracle.compute_cross_with_norms(exec, test, &rows, test_norms, &mut block);
            // All binary SVMs score against the same block: one scorer per
            // binary, one fused backend launch for the whole chunk.
            oracle.score_rows(exec, &block, &scorers, &mut out[start..end]);
            start = end;
        }
        Ok(oracle.eval_count() - evals_before)
    }

    /// Unshared path: each binary SVM scores against its own SV list.
    #[allow(clippy::too_many_arguments)]
    fn decisions_unshared(
        &self,
        test: &CsrMatrix,
        test_norms: &[f64],
        exec: &dyn Executor,
        device: Option<&Device>,
        host_threads: usize,
        compute: ComputeBackendKind,
        out: &mut [Vec<f64>],
    ) -> Result<u64, TrainError> {
        let mut evals = 0u64;
        for (bi, b) in self.binaries.iter().enumerate() {
            if b.sv_idx.is_empty() {
                for row in out.iter_mut() {
                    row[bi] = -b.rho;
                }
                continue;
            }
            let sv_rows: Vec<usize> = b.sv_idx.iter().map(|&i| i as usize).collect();
            let svs = Arc::new(self.sv_pool.select_rows(&sv_rows));
            let _sv_mem = match device {
                Some(d) => {
                    let bytes = svs.mem_bytes() as u64;
                    let a = d.alloc(bytes)?;
                    exec.charge_transfer(bytes);
                    Some(a)
                }
                None => None,
            };
            let oracle = KernelOracle::new(svs, self.kernel)
                .with_host_threads(host_threads)
                .with_backend(compute.instance());
            // This binary's block columns are exactly its SV list, in
            // order: a dense-sweep scorer writing column `bi`.
            let scorer = [RowScorer {
                out_col: bi,
                sv_idx: None,
                coef: &b.coef,
                rho: b.rho,
            }];
            let n_sv = sv_rows.len();
            let chunk = chunk_rows(test.nrows(), n_sv, device);
            let mut start = 0usize;
            while start < test.nrows() {
                let end = (start + chunk).min(test.nrows());
                let rows: Vec<usize> = (start..end).collect();
                let _block_mem = match device {
                    Some(d) => Some(d.alloc((rows.len() * n_sv * 8) as u64)?),
                    None => None,
                };
                let mut block = DenseMatrix::zeros(rows.len(), n_sv);
                oracle.compute_cross_with_norms(exec, test, &rows, test_norms, &mut block);
                oracle.score_rows(exec, &block, &scorer, &mut out[start..end]);
                start = end;
            }
            evals += oracle.eval_count();
        }
        Ok(evals)
    }
}

/// A model prepared for repeated (online) prediction.
///
/// [`MpSvmModel::predict`] rebuilds per-call state the paper's batched
/// prediction amortizes over one big test file: the SV-pool copy handed to
/// the kernel oracle, the pool's squared norms, and the kernel diagonal.
/// A long-lived server scoring many small batches pays that setup on every
/// call. `PreparedPredictor` hoists it to construction time and reuses it
/// for every batch, while routing the actual scoring through the **same**
/// shared code path as `predict` — so results are bit-identical to the
/// offline API no matter how requests are batched.
pub struct PreparedPredictor {
    model: Arc<MpSvmModel>,
    backend: Backend,
    compute: ComputeBackendKind,
    host_threads: usize,
    /// Persistent oracle over the shared SV pool (norms + diagonal
    /// precomputed). `None` for unshared backends, which score per-binary
    /// SV lists and have no pool-wide state to reuse.
    oracle: Option<KernelOracle>,
}

impl PreparedPredictor {
    /// Prepare `model` for repeated prediction on `backend`.
    /// `host_threads` as in [`MpSvmModel::predict_with_threads`].
    pub fn new(model: Arc<MpSvmModel>, backend: Backend, host_threads: Option<usize>) -> Self {
        Self::with_compute_backend(model, backend, host_threads, ComputeBackendKind::from_env())
    }

    /// [`PreparedPredictor::new`] on an explicit compute backend.
    pub fn with_compute_backend(
        model: Arc<MpSvmModel>,
        backend: Backend,
        host_threads: Option<usize>,
        compute: ComputeBackendKind,
    ) -> Self {
        let ht = resolve_host_threads_opt(host_threads);
        let shared = matches!(backend, Backend::Gmp { .. } | Backend::CpuBatched { .. });
        let oracle = (shared && model.sv_pool.nrows() > 0).then(|| {
            KernelOracle::new(Arc::new(model.sv_pool.clone()), model.kernel)
                .with_host_threads(ht)
                .with_backend(compute.instance())
        });
        PreparedPredictor {
            model,
            backend,
            compute,
            host_threads: ht,
            oracle,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<MpSvmModel> {
        &self.model
    }

    /// The backend every call scores on.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Resolved host-thread count.
    pub fn host_threads(&self) -> usize {
        self.host_threads
    }

    /// The compute backend every call scores on.
    pub fn compute_backend(&self) -> ComputeBackendKind {
        self.compute
    }

    /// Predict every row of `test` — bit-identical to
    /// [`MpSvmModel::predict`] on the same rows.
    pub fn predict(&self, test: &CsrMatrix) -> Result<PredictOutcome, TrainError> {
        self.model.predict_inner(
            test,
            &self.backend,
            self.host_threads,
            self.oracle.as_ref(),
            self.compute,
        )
    }
}

/// Test-chunk size so a kernel block fits in a conservative slice of device
/// memory (or a fixed host budget).
fn chunk_rows(m: usize, n_sv: usize, device: Option<&Device>) -> usize {
    let budget = match device {
        Some(d) => (d.mem_available() / 4).max(1 << 20),
        None => 256 << 20,
    };
    ((budget / (n_sv.max(1) as u64 * 8)) as usize).clamp(1, m.max(1))
}

fn argmax(p: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in p.iter().enumerate() {
        if v > p[best] {
            best = i;
        }
    }
    best
}

fn argmax_u32(p: &[u32]) -> usize {
    let mut best = 0;
    for (i, &v) in p.iter().enumerate() {
        if v > p[best] {
            best = i;
        }
    }
    best
}

/// Classification error rate of predictions against reference labels.
pub fn error_rate(predicted: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    if predicted.is_empty() {
        return 0.0;
    }
    let wrong = predicted.iter().zip(truth).filter(|(a, b)| a != b).count();
    wrong as f64 / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SvmParams;
    use crate::trainer::MpSvmTrainer;
    use gmp_datasets::BlobSpec;

    fn trained() -> (crate::trainer::TrainOutcome, gmp_datasets::Dataset) {
        let data = BlobSpec {
            n: 120,
            dim: 2,
            classes: 3,
            spread: 0.15,
            seed: 4,
        }
        .generate();
        let out = MpSvmTrainer::new(
            SvmParams::default()
                .with_c(2.0)
                .with_rbf(1.0)
                .with_working_set(32, 16),
            Backend::gmp_default(),
        )
        .train(&data)
        .unwrap();
        (out, data)
    }

    #[test]
    fn predicts_training_set_accurately() {
        let (out, data) = trained();
        let pred = out.model.predict(&data.x, &Backend::gmp_default()).unwrap();
        let err = error_rate(&pred.labels, &data.y);
        assert!(err < 0.05, "training error {err}");
    }

    #[test]
    fn probabilities_are_distributions() {
        let (out, data) = trained();
        let pred = out.model.predict(&data.x, &Backend::gmp_default()).unwrap();
        assert_eq!(pred.probabilities.len(), data.n());
        for p in &pred.probabilities {
            assert_eq!(p.len(), 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn label_matches_probability_argmax() {
        let (out, data) = trained();
        let pred = out.model.predict(&data.x, &Backend::gmp_default()).unwrap();
        for (lbl, p) in pred.labels.iter().zip(&pred.probabilities) {
            let am = argmax(p) as u32;
            assert_eq!(*lbl, am);
        }
    }

    #[test]
    fn shared_and_unshared_paths_agree() {
        let (out, data) = trained();
        let shared = out.model.predict(&data.x, &Backend::gmp_default()).unwrap();
        let unshared = out
            .model
            .predict(&data.x, &Backend::gpu_baseline_default())
            .unwrap();
        for (a, b) in shared
            .decision_values
            .iter()
            .flatten()
            .zip(unshared.decision_values.iter().flatten())
        {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert_eq!(shared.labels, unshared.labels);
    }

    #[test]
    fn sharing_computes_fewer_kernel_values() {
        let (out, data) = trained();
        let shared = out.model.predict(&data.x, &Backend::gmp_default()).unwrap();
        let unshared = out
            .model
            .predict(&data.x, &Backend::gpu_baseline_default())
            .unwrap();
        assert!(
            shared.report.kernel_evals <= unshared.report.kernel_evals,
            "shared {} vs unshared {}",
            shared.report.kernel_evals,
            unshared.report.kernel_evals
        );
        assert!(shared.report.sim_s < unshared.report.sim_s);
    }

    #[test]
    fn phase_breakdown_covers_total() {
        let (out, data) = trained();
        let pred = out.model.predict(&data.x, &Backend::gmp_default()).unwrap();
        let r = &pred.report;
        let phases = r.sim_decision_s + r.sim_sigmoid_s + r.sim_coupling_s;
        assert!(phases <= r.sim_s + 1e-9);
        assert!(
            r.sim_decision_s > r.sim_coupling_s,
            "decision dominates (Fig 12)"
        );
    }

    #[test]
    fn empty_test_set() {
        let (out, _) = trained();
        let empty = CsrMatrix::empty(2);
        let pred = out.model.predict(&empty, &Backend::gmp_default()).unwrap();
        assert!(pred.labels.is_empty());
        assert!(pred.probabilities.is_empty());
    }

    #[test]
    fn voting_without_probability() {
        let data = BlobSpec {
            n: 90,
            dim: 2,
            classes: 3,
            spread: 0.15,
            seed: 6,
        }
        .generate();
        let out = MpSvmTrainer::new(
            SvmParams::default()
                .with_c(2.0)
                .with_rbf(1.0)
                .without_probability(),
            Backend::libsvm(),
        )
        .train(&data)
        .unwrap();
        let pred = out.model.predict(&data.x, &Backend::libsvm()).unwrap();
        assert!(pred.probabilities.is_empty());
        let err = error_rate(&pred.labels, &data.y);
        assert!(err < 0.1, "voting error {err}");
    }

    #[test]
    fn prepared_predictor_bitwise_matches_predict() {
        let (out, data) = trained();
        let backend = Backend::gmp_default();
        let direct = out
            .model
            .predict_with_threads(&data.x, &backend, Some(1))
            .unwrap();
        let prepared = PreparedPredictor::new(Arc::new(out.model.clone()), backend, Some(1));
        // Whole set in one call.
        let all = prepared.predict(&data.x).unwrap();
        assert_eq!(all.decision_values, direct.decision_values);
        assert_eq!(all.probabilities, direct.probabilities);
        assert_eq!(all.labels, direct.labels);
        // Row-at-a-time and odd-sized chunks: identical bits regardless of
        // how rows are batched (the serving subsystem's core guarantee).
        let mut start = 0usize;
        for chunk in [1usize, 7, 30] {
            while start < data.n() {
                let end = (start + chunk).min(data.n());
                let rows: Vec<usize> = (start..end).collect();
                let sub = data.x.select_rows(&rows);
                let p = prepared.predict(&sub).unwrap();
                for (i, r) in rows.iter().enumerate() {
                    assert_eq!(p.decision_values[i], direct.decision_values[*r]);
                    assert_eq!(p.probabilities[i], direct.probabilities[*r]);
                    assert_eq!(p.labels[i], direct.labels[*r]);
                }
                start = end;
                if start >= data.n() {
                    start = 0;
                    break;
                }
            }
        }
        // Kernel-eval accounting stays per-call (not cumulative).
        let once = prepared.predict(&data.x).unwrap();
        assert_eq!(once.report.kernel_evals, direct.report.kernel_evals);
    }

    #[test]
    fn prepared_predictor_unshared_backend_falls_back() {
        let (out, data) = trained();
        let backend = Backend::gpu_baseline_default();
        let direct = out
            .model
            .predict_with_threads(&data.x, &backend, Some(1))
            .unwrap();
        let prepared = PreparedPredictor::new(Arc::new(out.model.clone()), backend, Some(1));
        let p = prepared.predict(&data.x).unwrap();
        assert_eq!(p.labels, direct.labels);
        assert_eq!(p.decision_values, direct.decision_values);
    }

    #[test]
    fn error_rate_helper() {
        assert_eq!(error_rate(&[1, 2, 3], &[1, 2, 0]), 1.0 / 3.0);
        assert_eq!(error_rate(&[], &[]), 0.0);
    }
}
