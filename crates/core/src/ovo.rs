//! One-vs-one (pairwise coupling) decomposition — Fig. 1 of the paper.

use gmp_datasets::Dataset;
use serde::{Deserialize, Serialize};

/// All `k(k-1)/2` ordered class pairs `(s, t)` with `s < t`, in LibSVM's
/// enumeration order.
pub fn class_pairs(k: usize) -> Vec<(u16, u16)> {
    let mut pairs = Vec::with_capacity(k * (k - 1) / 2);
    for s in 0..k {
        for t in s + 1..k {
            pairs.push((s as u16, t as u16));
        }
    }
    pairs
}

/// A materialized binary subproblem: the instances of classes `s` and `t`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinaryProblem {
    /// Class pair (`s < t`).
    pub s: u16,
    /// Second class.
    pub t: u16,
    /// ±1 labels: `+1` for class `s`, `-1` for class `t` (LibSVM's
    /// convention: decision > 0 predicts the first class).
    pub y: Vec<f64>,
    /// For each local instance, its row index in the *original* dataset.
    pub original_index: Vec<usize>,
}

impl BinaryProblem {
    /// Extract problem `(s, t)` from a class-grouped dataset with the given
    /// per-class offsets, where `grouped_to_original` maps grouped rows
    /// back to original dataset rows.
    ///
    /// Local index space: `0..n_s` are class `s` instances (grouped order),
    /// `n_s..n_s+n_t` class `t` — exactly the layout `SharedRows` serves.
    pub fn from_grouped(
        s: u16,
        t: u16,
        offsets: &[usize],
        grouped_to_original: &[usize],
    ) -> BinaryProblem {
        let rs = offsets[s as usize]..offsets[s as usize + 1];
        let rt = offsets[t as usize]..offsets[t as usize + 1];
        let n_s = rs.len();
        let n_t = rt.len();
        let mut y = Vec::with_capacity(n_s + n_t);
        let mut original_index = Vec::with_capacity(n_s + n_t);
        for g in rs {
            y.push(1.0);
            original_index.push(grouped_to_original[g]);
        }
        for g in rt {
            y.push(-1.0);
            original_index.push(grouped_to_original[g]);
        }
        BinaryProblem {
            s,
            t,
            y,
            original_index,
        }
    }

    /// Number of instances in the subproblem.
    pub fn n(&self) -> usize {
        self.y.len()
    }

    /// Grouped-dataset row range of this problem's class-`s` block
    /// (for slicing sub-datasets out of the grouped matrix).
    pub fn grouped_rows(&self, offsets: &[usize]) -> Vec<usize> {
        let mut rows: Vec<usize> =
            (offsets[self.s as usize]..offsets[self.s as usize + 1]).collect();
        rows.extend(offsets[self.t as usize]..offsets[self.t as usize + 1]);
        rows
    }
}

/// Decompose a dataset: group by class and materialize every pair's
/// problem description (labels + index maps; feature slices are taken
/// lazily by the backends).
pub fn decompose(data: &Dataset) -> (Dataset, Vec<usize>, Vec<usize>, Vec<BinaryProblem>) {
    let (grouped, offsets, map) = data.group_by_class();
    let k = data.n_classes();
    let problems = class_pairs(k)
        .into_iter()
        .map(|(s, t)| BinaryProblem::from_grouped(s, t, &offsets, &map))
        .collect();
    (grouped, offsets, map, problems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_sparse::CsrMatrix;

    #[test]
    fn pair_enumeration() {
        assert_eq!(class_pairs(2), vec![(0, 1)]);
        assert_eq!(class_pairs(3), vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(class_pairs(10).len(), 45);
        assert_eq!(class_pairs(20).len(), 190);
    }

    fn toy() -> Dataset {
        let x = CsrMatrix::from_dense(
            &[
                vec![1.0, 0.0], // class 1
                vec![2.0, 0.0], // class 0
                vec![3.0, 0.0], // class 2
                vec![4.0, 0.0], // class 0
                vec![5.0, 0.0], // class 1
            ],
            2,
        );
        Dataset::new(x, vec![1, 0, 2, 0, 1])
    }

    #[test]
    fn decompose_layout() {
        let d = toy();
        let (grouped, offsets, map, problems) = decompose(&d);
        assert_eq!(offsets, vec![0, 2, 4, 5]);
        assert_eq!(map, vec![1, 3, 0, 4, 2]);
        assert_eq!(problems.len(), 3);
        // Problem (0,1): classes 0 (grouped 0..2) then 1 (grouped 2..4).
        let p01 = &problems[0];
        assert_eq!((p01.s, p01.t), (0, 1));
        assert_eq!(p01.y, vec![1.0, 1.0, -1.0, -1.0]);
        assert_eq!(p01.original_index, vec![1, 3, 0, 4]);
        // Grouped feature rows consistent with labels.
        assert_eq!(grouped.y, vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn grouped_rows_slice() {
        let d = toy();
        let (_, offsets, _, problems) = decompose(&d);
        let p02 = &problems[1];
        assert_eq!((p02.s, p02.t), (0, 2));
        assert_eq!(p02.grouped_rows(&offsets), vec![0, 1, 4]);
        assert_eq!(p02.n(), 3);
        assert_eq!(p02.y, vec![1.0, 1.0, -1.0]);
    }

    #[test]
    fn binary_dataset_single_pair() {
        let x = CsrMatrix::from_dense(&[vec![1.0], vec![2.0]], 1);
        let d = Dataset::new(x, vec![0, 1]);
        let (_, _, _, problems) = decompose(&d);
        assert_eq!(problems.len(), 1);
        assert_eq!(problems[0].y, vec![1.0, -1.0]);
    }
}
