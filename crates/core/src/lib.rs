//! GMP-SVM: efficient multi-class probabilistic SVMs on a (simulated) GPU.
//!
//! Reproduction of Wen, Shi, He, Chen & Chen, *Efficient Multi-Class
//! Probabilistic SVMs on GPUs* (ICDE 2019). The public API:
//!
//! ```
//! use gmp_svm::{Backend, MpSvmTrainer, SvmParams};
//! use gmp_datasets::BlobSpec;
//!
//! // A small 3-class problem.
//! let data = BlobSpec { n: 90, dim: 2, classes: 3, spread: 0.15, seed: 1 }.generate();
//!
//! // Train the full GMP-SVM pipeline on the simulated Tesla P100.
//! let params = SvmParams::default().with_c(1.0).with_rbf(0.5);
//! let outcome = MpSvmTrainer::new(params, Backend::gmp_default()).train(&data).unwrap();
//!
//! // Probabilistic prediction.
//! let pred = outcome.model.predict(&data.x, &Backend::gmp_default()).unwrap();
//! assert_eq!(pred.labels.len(), 90);
//! let p0 = &pred.probabilities[0];
//! assert!((p0.iter().sum::<f64>() - 1.0).abs() < 1e-6);
//! ```
//!
//! Training backends (§4.1 of the paper): [`Backend::CpuClassic`] is the
//! LibSVM reference (1 thread = plain LibSVM, 40 = LibSVM with OpenMP),
//! [`Backend::GpuBaseline`] trains binary SVMs one at a time on the
//! simulated device, [`Backend::CpuBatched`] is CMP-SVM, and
//! [`Backend::Gmp`] is the full system: batched working sets, FIFO kernel
//! buffer, kernel-value sharing across binary SVMs, concurrent training,
//! and support-vector sharing at prediction time.

pub mod cv;
pub mod model;
pub mod model_selection;
pub mod oneclass;
pub mod ovo;
pub mod ovr;
pub mod params;
pub mod predict;
pub mod svr;
pub mod telemetry;
pub mod trainer;

pub use model::{BinarySvm, ModelParseError, MpSvmModel};
pub use model_selection::{GridPoint, GridSearch};
pub use oneclass::{train_one_class, OneClassModel, OneClassParams};
pub use ovo::{class_pairs, BinaryProblem};
pub use ovr::{evaluate_ovr, OvrModel};
pub use params::{Backend, SvmParams};
pub use predict::{PredictOutcome, PreparedPredictor};
pub use svr::{train_svr, SvrModel, SvrParams};
pub use telemetry::{BinaryTrainStats, LatencyHistogram, PredictReport, ServeReport, TrainReport};
pub use trainer::{MpSvmTrainer, TrainError, TrainOutcome};

// Re-exports for downstream convenience.
pub use gmp_datasets::Dataset;
pub use gmp_gpusim::{Device, DeviceConfig, HostConfig};
pub use gmp_kernel::{ComputeBackend, ComputeBackendKind, KernelKind};
