//! k-fold cross-validation over the full MP-SVM pipeline.

use crate::params::{Backend, SvmParams};
use crate::predict::error_rate;
use crate::trainer::{MpSvmTrainer, TrainError};
use gmp_datasets::Dataset;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Cross-validation result.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Per-fold held-out error rates.
    pub fold_errors: Vec<f64>,
    /// Mean held-out error.
    pub mean_error: f64,
}

/// Run `folds`-fold cross-validation: train on `folds - 1` parts, score the
/// held-out part, average the error.
///
/// Deterministic for a fixed `seed`.
pub fn cross_validate(
    params: SvmParams,
    backend: Backend,
    data: &Dataset,
    folds: usize,
    seed: u64,
) -> Result<CvResult, TrainError> {
    assert!(folds >= 2, "need at least two folds");
    assert!(data.n() >= folds, "need at least one instance per fold");
    let mut order: Vec<usize> = (0..data.n()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut fold_errors = Vec::with_capacity(folds);
    for f in 0..folds {
        let lo = f * data.n() / folds;
        let hi = (f + 1) * data.n() / folds;
        let test_idx = &order[lo..hi];
        let train_idx: Vec<usize> = order[..lo].iter().chain(&order[hi..]).copied().collect();
        let train = data.select(&train_idx);
        let test = data.select(test_idx);
        if train.n_classes() < 2 {
            // Degenerate fold (tiny datasets): count as zero-information.
            fold_errors.push(1.0);
            continue;
        }
        let out = MpSvmTrainer::new(params, backend.clone()).train(&train)?;
        let pred = out.model.predict(&test.x, &backend)?;
        fold_errors.push(error_rate(&pred.labels, &test.y));
    }
    let mean_error = fold_errors.iter().sum::<f64>() / folds as f64;
    Ok(CvResult {
        fold_errors,
        mean_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_datasets::BlobSpec;

    #[test]
    fn cv_on_separable_blobs_is_accurate() {
        let data = BlobSpec {
            n: 120,
            dim: 2,
            classes: 3,
            spread: 0.12,
            seed: 8,
        }
        .generate();
        let params = SvmParams::default()
            .with_c(2.0)
            .with_rbf(1.0)
            .with_working_set(32, 16);
        let r = cross_validate(params, Backend::libsvm(), &data, 3, 42).unwrap();
        assert_eq!(r.fold_errors.len(), 3);
        assert!(r.mean_error < 0.15, "cv error {}", r.mean_error);
    }

    #[test]
    fn cv_deterministic() {
        let data = BlobSpec {
            n: 60,
            dim: 2,
            classes: 2,
            spread: 0.2,
            seed: 9,
        }
        .generate();
        let params = SvmParams::default()
            .with_c(1.0)
            .with_rbf(1.0)
            .with_working_set(16, 8);
        let a = cross_validate(params, Backend::libsvm(), &data, 2, 7).unwrap();
        let b = cross_validate(params, Backend::libsvm(), &data, 2, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "two folds")]
    fn rejects_one_fold() {
        let data = BlobSpec {
            n: 10,
            dim: 2,
            classes: 2,
            spread: 0.1,
            seed: 1,
        }
        .generate();
        let _ = cross_validate(SvmParams::default(), Backend::libsvm(), &data, 1, 0);
    }
}
