//! One-class SVM (Schölkopf et al.): novelty detection on the same solver
//! stack — the third member of ThunderSVM's task family (classification,
//! regression, distribution estimation).
//!
//! Dual: `min ½αᵀKα` s.t. `0 ≤ α_i ≤ 1/(νn)`, `Σα = 1`. All "labels" are
//! `+1`, so the SMO pairwise step conserves `Σα`; LibSVM's initialization
//! puts the first `⌊νn⌋` instances at their cap plus one fractional
//! remainder, and we warm-start the batched solver from exactly that
//! point.

use gmp_gpusim::CpuExecutor;
use gmp_kernel::{BufferedRows, KernelKind, KernelOracle, ReplacementPolicy};
use gmp_smo::{BatchedParams, BatchedSmoSolver, SmoParams};
use gmp_sparse::{CsrMatrix, DenseMatrix};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One-class SVM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OneClassParams {
    /// Kernel function.
    pub kernel: KernelKind,
    /// ν ∈ (0, 1]: upper bound on the outlier fraction / lower bound on
    /// the support-vector fraction.
    pub nu: f64,
    /// SMO tolerance.
    pub tolerance: f64,
    /// Working-set size.
    pub ws_size: usize,
}

impl Default for OneClassParams {
    fn default() -> Self {
        OneClassParams {
            kernel: KernelKind::Rbf { gamma: 0.5 },
            nu: 0.1,
            tolerance: 1e-3,
            ws_size: 256,
        }
    }
}

/// A trained one-class SVM: `decision(x) = Σ coef_j K(sv_j, x) - rho`;
/// positive = inlier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OneClassModel {
    /// Kernel used at training time.
    pub kernel: KernelKind,
    /// Support vectors.
    pub svs: CsrMatrix,
    /// Coefficients α per support vector.
    pub coef: Vec<f64>,
    /// Bias.
    pub rho: f64,
    /// Whether the solver reached tolerance.
    pub converged: bool,
}

/// Train a one-class SVM on the rows of `x`.
pub fn train_one_class(params: OneClassParams, x: &CsrMatrix) -> OneClassModel {
    let n = x.nrows();
    assert!(n >= 2, "need at least two instances");
    assert!(params.nu > 0.0 && params.nu <= 1.0, "nu must be in (0, 1]");
    let exec = CpuExecutor::xeon(1);
    let oracle = Arc::new(KernelOracle::new(Arc::new(x.clone()), params.kernel));

    let cap = 1.0 / (params.nu * n as f64);
    let caps = vec![cap; n];
    let y = vec![1.0f64; n];
    // LibSVM's init: first ⌊νn⌋ at cap, one fractional remainder.
    let mut alpha0 = vec![0.0f64; n];
    let full = (params.nu * n as f64).floor() as usize;
    for a in alpha0.iter_mut().take(full.min(n)) {
        *a = cap;
    }
    if full < n {
        alpha0[full] = 1.0 - full as f64 * cap; // remainder keeps Σα = 1
    }
    // f_init = Σ_j α0_j K_ij (p = 0, y = +1): one batched computation over
    // the initialized rows.
    let init_rows: Vec<usize> = (0..n).filter(|&i| alpha0[i] > 0.0).collect();
    let mut f_init = vec![0.0f64; n];
    if !init_rows.is_empty() {
        let mut block = DenseMatrix::zeros(init_rows.len(), n);
        oracle.compute_rows(&exec, &init_rows, &mut block);
        for (bi, &j) in init_rows.iter().enumerate() {
            let w = alpha0[j];
            for (i, fi) in f_init.iter_mut().enumerate() {
                *fi += w * block.get(bi, i);
            }
        }
    }

    let ws = params.ws_size.min(n).max(4);
    let mut rows = BufferedRows::new(
        oracle,
        (2 * ws).min(n.max(2)),
        ReplacementPolicy::FifoBatch,
        None,
    )
    // gmp:allow-panic — host-memory buffer cannot exhaust simulated device memory
    .expect("host buffer");
    let solver = BatchedSmoSolver::new(BatchedParams {
        base: SmoParams {
            c: cap,
            eps: params.tolerance,
            ..Default::default()
        },
        ws_size: ws,
        q: (ws / 2).max(2),
        inner_relax: 0.1,
        max_inner: ws * 4,
    });
    let result = solver.solve_warm(&y, &mut rows, &exec, &caps, &f_init, &alpha0);

    let mut sv_rows = Vec::new();
    let mut coef = Vec::new();
    for (i, &a) in result.alpha.iter().enumerate() {
        if a > 0.0 {
            sv_rows.push(i);
            coef.push(a);
        }
    }
    OneClassModel {
        kernel: params.kernel,
        svs: x.select_rows(&sv_rows),
        coef,
        rho: result.rho,
        converged: result.converged,
    }
}

impl OneClassModel {
    /// Decision values for every row of `test` (positive = inlier).
    pub fn decision_values(&self, test: &CsrMatrix) -> Vec<f64> {
        let exec = CpuExecutor::xeon(1);
        if test.nrows() == 0 || self.svs.nrows() == 0 {
            return vec![-self.rho; test.nrows()];
        }
        let oracle = KernelOracle::new(Arc::new(self.svs.clone()), self.kernel);
        let rows: Vec<usize> = (0..test.nrows()).collect();
        let mut block = DenseMatrix::zeros(test.nrows(), self.svs.nrows());
        oracle.compute_cross(&exec, test, &rows, &mut block);
        (0..test.nrows())
            .map(|t| {
                let krow = block.row(t);
                let mut v = 0.0;
                for (j, &c) in self.coef.iter().enumerate() {
                    v += c * krow[j];
                }
                v - self.rho
            })
            .collect()
    }

    /// Inlier predictions (`decision > 0`).
    pub fn predict_inlier(&self, test: &CsrMatrix) -> Vec<bool> {
        self.decision_values(test)
            .iter()
            .map(|&v| v > 0.0)
            .collect()
    }

    /// Number of support vectors.
    pub fn n_sv(&self) -> usize {
        self.svs.nrows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_datasets::BlobSpec;

    fn cluster() -> CsrMatrix {
        // One tight blob of 2 classes merged = one cluster around origin.
        let d = BlobSpec {
            n: 200,
            dim: 2,
            classes: 2,
            spread: 0.15,
            seed: 4,
        }
        .generate();
        d.x
    }

    fn params(nu: f64) -> OneClassParams {
        OneClassParams {
            kernel: KernelKind::Rbf { gamma: 1.0 },
            nu,
            tolerance: 1e-3,
            ws_size: 64,
        }
    }

    #[test]
    fn trains_and_converges() {
        let x = cluster();
        let m = train_one_class(params(0.1), &x);
        assert!(m.converged);
        assert!(m.n_sv() > 0);
        // ν lower-bounds the SV fraction.
        assert!(m.n_sv() as f64 >= 0.1 * x.nrows() as f64 - 1.0);
    }

    #[test]
    fn nu_bounds_training_outlier_fraction() {
        let x = cluster();
        for nu in [0.05, 0.2] {
            let m = train_one_class(params(nu), &x);
            let inliers = m.predict_inlier(&x).iter().filter(|&&b| b).count();
            let outlier_frac = 1.0 - inliers as f64 / x.nrows() as f64;
            assert!(
                outlier_frac <= nu + 0.06,
                "nu={nu}: outlier fraction {outlier_frac}"
            );
        }
    }

    #[test]
    fn novel_points_score_negative() {
        let x = cluster();
        let m = train_one_class(params(0.1), &x);
        // Far-away probes.
        let novel =
            CsrMatrix::from_dense(&[vec![10.0, 10.0], vec![-8.0, 5.0], vec![0.0, -12.0]], 2);
        for (i, v) in m.decision_values(&novel).iter().enumerate() {
            assert!(*v < 0.0, "novel point {i} scored {v}");
        }
    }

    #[test]
    fn typical_points_score_higher_than_novel() {
        let x = cluster();
        let m = train_one_class(params(0.1), &x);
        let train_scores = m.decision_values(&x);
        let mean_train: f64 = train_scores.iter().sum::<f64>() / train_scores.len() as f64;
        let novel = CsrMatrix::from_dense(&[vec![5.0, 5.0]], 2);
        let novel_score = m.decision_values(&novel)[0];
        assert!(mean_train > novel_score);
    }

    #[test]
    fn alpha_sums_to_one() {
        let x = cluster();
        let m = train_one_class(params(0.15), &x);
        let sum: f64 = m.coef.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "Σα = {sum}");
    }

    #[test]
    #[should_panic(expected = "nu must be in")]
    fn rejects_bad_nu() {
        let _ = train_one_class(params(1.5), &cluster());
    }
}
