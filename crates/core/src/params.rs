//! Training parameters and backend selection.

use gmp_gpusim::DeviceConfig;
use gmp_kernel::{ComputeBackendKind, KernelKind, ReplacementPolicy};
use gmp_smo::{BatchedParams, SmoParams};
use serde::{Deserialize, Serialize};

/// Hyper-parameters shared by every backend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmParams {
    /// Kernel function (the paper evaluates with Gaussian kernels).
    pub kernel: KernelKind,
    /// Penalty parameter `C`.
    pub c: f64,
    /// SMO stopping tolerance ε.
    pub eps: f64,
    /// Fit sigmoids and enable probability estimation.
    pub probability: bool,
    /// Working-set / GPU-buffer rows for the batched solver (paper: 1024).
    pub ws_size: usize,
    /// New violating instances per outer round (paper: 512).
    pub q: usize,
    /// δ-relaxation factor for inner early termination.
    pub inner_relax: f64,
    /// Row-cache capacity for the classic solvers (models LibSVM's kernel
    /// cache / the GPU baseline's "4GB for kernel value caching").
    pub cache_rows: usize,
    /// Buffer replacement policy (FIFO-batch per the paper; LRU for the
    /// ablation).
    pub buffer_policy: ReplacementPolicy,
    /// Safety cap on SMO iterations per binary problem.
    pub max_iter: u64,
    /// LibSVM's shrinking heuristic for the classic (LibSVM-like) solver
    /// paths. Never changes the optimum, only the cost.
    pub shrinking: bool,
    /// Sigmoid-fit decision values: `0` fits directly on the training-set
    /// decision values (the paper's Fig. 1 pipeline, free with the final
    /// optimality indicators); `k >= 2` uses k-fold cross-validated
    /// decision values as LibSVM's `svm_binary_svc_probability` does
    /// (less optimistic calibration, k times the training cost).
    pub sigmoid_cv_folds: usize,
    /// Which numeric compute backend executes the kernel hot ops. All
    /// selections are bit-identical; this only changes host wall-clock.
    pub compute_backend: ComputeBackendKind,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            kernel: KernelKind::Rbf { gamma: 0.5 },
            c: 1.0,
            eps: 1e-3,
            probability: true,
            ws_size: 1024,
            q: 512,
            inner_relax: 0.1,
            cache_rows: 1024,
            buffer_policy: ReplacementPolicy::FifoBatch,
            max_iter: 10_000_000,
            shrinking: false,
            sigmoid_cv_folds: 0,
            compute_backend: ComputeBackendKind::from_env(),
        }
    }
}

impl SvmParams {
    /// Set `C`.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Use an RBF kernel with the given γ.
    pub fn with_rbf(mut self, gamma: f64) -> Self {
        self.kernel = KernelKind::Rbf { gamma };
        self
    }

    /// Set an arbitrary kernel.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Set the working-set size and batch size.
    pub fn with_working_set(mut self, ws_size: usize, q: usize) -> Self {
        self.ws_size = ws_size;
        self.q = q;
        self
    }

    /// Disable probability outputs (plain multi-class SVM, used for the
    /// GTSVM comparison).
    pub fn without_probability(mut self) -> Self {
        self.probability = false;
        self
    }

    /// Fit sigmoids on k-fold cross-validated decision values (LibSVM's
    /// calibration protocol) instead of the direct training-set fit.
    pub fn with_cv_sigmoid(mut self, folds: usize) -> Self {
        assert!(folds >= 2, "need at least two folds");
        self.sigmoid_cv_folds = folds;
        self
    }

    /// Execute the kernel hot ops on the given compute backend (overrides
    /// the `GMP_BACKEND` default).
    pub fn with_compute_backend(mut self, kind: ComputeBackendKind) -> Self {
        self.compute_backend = kind;
        self
    }

    /// The classic-SMO parameter subset.
    pub fn smo(&self) -> SmoParams {
        SmoParams {
            c: self.c,
            eps: self.eps,
            max_iter: self.max_iter,
            shrinking: self.shrinking,
        }
    }

    /// The batched-solver parameter subset.
    pub fn batched(&self) -> BatchedParams {
        BatchedParams {
            base: self.smo(),
            ws_size: self.ws_size,
            q: self.q,
            inner_relax: self.inner_relax,
            max_inner: self.ws_size.max(64) * 4,
        }
    }
}

/// Which implementation trains/predicts (Table 3's five columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Backend {
    /// LibSVM-like: classic SMO per binary problem, sequential, on the
    /// host. `threads = 1` models plain LibSVM; `threads = 40` models
    /// LibSVM with OpenMP (which parallelizes kernel-row computation).
    CpuClassic {
        /// Host threads.
        threads: usize,
    },
    /// CMP-SVM: the GMP-SVM algorithm (batched working sets + kernel value
    /// sharing) on the host.
    CpuBatched {
        /// Host threads.
        threads: usize,
    },
    /// The GPU baseline of §3.2: classic SMO per binary problem, one
    /// binary SVM at a time on the device, LRU row cache.
    GpuBaseline {
        /// Simulated device.
        device: DeviceConfig,
    },
    /// Full GMP-SVM (§3.3): batched working sets, FIFO buffer, kernel
    /// value sharing, concurrent binary SVMs, support-vector sharing.
    Gmp {
        /// Simulated device.
        device: DeviceConfig,
        /// Maximum binary SVMs trained concurrently (streams); the memory
        /// planner may lower it. 0 = auto.
        max_concurrent: usize,
    },
}

impl Backend {
    /// GMP-SVM on the paper's Tesla P100, auto concurrency.
    pub fn gmp_default() -> Backend {
        Backend::Gmp {
            device: DeviceConfig::tesla_p100(),
            max_concurrent: 0,
        }
    }

    /// The GPU baseline on the paper's Tesla P100.
    pub fn gpu_baseline_default() -> Backend {
        Backend::GpuBaseline {
            device: DeviceConfig::tesla_p100(),
        }
    }

    /// LibSVM without OpenMP.
    pub fn libsvm() -> Backend {
        Backend::CpuClassic { threads: 1 }
    }

    /// LibSVM with OpenMP (40 threads, the paper's best configuration).
    pub fn libsvm_openmp() -> Backend {
        Backend::CpuClassic { threads: 40 }
    }

    /// CMP-SVM with 40 threads.
    pub fn cmp_svm() -> Backend {
        Backend::CpuBatched { threads: 40 }
    }

    /// Short display name matching the paper's table headers.
    pub fn label(&self) -> String {
        match self {
            Backend::CpuClassic { threads: 1 } => "LibSVM w/o OpenMP".to_string(),
            Backend::CpuClassic { threads } => format!("LibSVM w/ OpenMP ({threads}t)"),
            Backend::CpuBatched { threads } => format!("CMP-SVM ({threads}t)"),
            Backend::GpuBaseline { .. } => "GPU baseline".to_string(),
            Backend::Gmp { .. } => "GMP-SVM".to_string(),
        }
    }

    /// Does this backend run on the simulated device?
    pub fn is_gpu(&self) -> bool {
        matches!(self, Backend::GpuBaseline { .. } | Backend::Gmp { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_configuration() {
        let p = SvmParams::default();
        assert_eq!(p.ws_size, 1024);
        assert_eq!(p.q, 512);
        assert_eq!(p.eps, 1e-3);
        assert!(p.probability);
        assert!(matches!(p.kernel, KernelKind::Rbf { .. }));
    }

    #[test]
    fn builders_compose() {
        let p = SvmParams::default()
            .with_c(10.0)
            .with_rbf(0.125)
            .with_working_set(256, 128)
            .without_probability();
        assert_eq!(p.c, 10.0);
        assert_eq!(p.kernel, KernelKind::Rbf { gamma: 0.125 });
        assert_eq!((p.ws_size, p.q), (256, 128));
        assert!(!p.probability);
        assert_eq!(p.batched().q, 128);
        assert_eq!(p.smo().c, 10.0);
    }

    #[test]
    fn backend_labels() {
        assert_eq!(Backend::libsvm().label(), "LibSVM w/o OpenMP");
        assert!(Backend::libsvm_openmp().label().contains("OpenMP"));
        assert_eq!(Backend::gmp_default().label(), "GMP-SVM");
        assert!(Backend::gmp_default().is_gpu());
        assert!(!Backend::cmp_svm().is_gpu());
    }
}
