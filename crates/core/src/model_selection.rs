//! Hyper-parameter grid search over (C, γ) by cross-validation — the
//! model-selection workflow the paper's §4.1 sweep ("we also varied the
//! hyper-parameters C from 0.01 to 100 and γ from 0.03 to 10") automates.

use crate::cv::cross_validate;
use crate::params::{Backend, SvmParams};
use crate::trainer::TrainError;
use gmp_datasets::Dataset;
use serde::{Deserialize, Serialize};

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPoint {
    /// Penalty parameter.
    pub c: f64,
    /// RBF γ.
    pub gamma: f64,
    /// Mean cross-validated error.
    pub cv_error: f64,
}

/// Grid-search specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSearch {
    /// Candidate C values.
    pub c_values: Vec<f64>,
    /// Candidate γ values.
    pub gamma_values: Vec<f64>,
    /// Cross-validation folds.
    pub folds: usize,
    /// Shuffle seed for the folds.
    pub seed: u64,
}

impl GridSearch {
    /// The paper's sweep ranges at a coarse resolution:
    /// C in {0.01, 1, 100}, γ in {0.03, 0.5, 10}.
    pub fn paper_sweep() -> Self {
        GridSearch {
            c_values: vec![0.01, 1.0, 100.0],
            gamma_values: vec![0.03, 0.5, 10.0],
            folds: 3,
            seed: 0x5eed,
        }
    }

    /// Evaluate every grid point; returns the best parameter set and all
    /// evaluated points (sorted by ascending error; ties keep grid order,
    /// so results are deterministic).
    pub fn run(
        &self,
        base: SvmParams,
        backend: &Backend,
        data: &Dataset,
    ) -> Result<(SvmParams, Vec<GridPoint>), TrainError> {
        assert!(
            !self.c_values.is_empty() && !self.gamma_values.is_empty(),
            "empty grid"
        );
        let mut points = Vec::with_capacity(self.c_values.len() * self.gamma_values.len());
        for &c in &self.c_values {
            for &gamma in &self.gamma_values {
                let params = base.with_c(c).with_rbf(gamma);
                let cv = cross_validate(params, backend.clone(), data, self.folds, self.seed)?;
                points.push(GridPoint {
                    c,
                    gamma,
                    cv_error: cv.mean_error,
                });
            }
        }
        let best = points
            .iter()
            .min_by(|a, b| a.cv_error.total_cmp(&b.cv_error))
            // gmp:allow-panic — both grid axes are validated non-empty above,
            // so at least one point was pushed.
            .expect("non-empty grid");
        let best_params = base.with_c(best.c).with_rbf(best.gamma);
        points.sort_by(|a, b| a.cv_error.total_cmp(&b.cv_error));
        Ok((best_params, points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_datasets::BlobSpec;

    #[test]
    fn finds_a_sane_operating_point() {
        let data = BlobSpec {
            n: 90,
            dim: 2,
            classes: 3,
            spread: 0.15,
            seed: 77,
        }
        .generate();
        let grid = GridSearch {
            c_values: vec![0.01, 1.0],
            gamma_values: vec![0.01, 1.0],
            folds: 3,
            seed: 1,
        };
        let base = SvmParams::default().with_working_set(16, 8);
        let (best, points) = grid.run(base, &Backend::libsvm(), &data).unwrap();
        assert_eq!(points.len(), 4);
        // Errors sorted ascending.
        assert!(points.windows(2).all(|w| w[0].cv_error <= w[1].cv_error));
        // The best point performs at least as well as the worst by a real
        // margin on this easy problem (tiny C + tiny gamma underfits badly).
        assert!(points[0].cv_error <= points[3].cv_error);
        assert_eq!(best.c, points[0].c);
        // Best parameters classify the blobs well.
        assert!(
            points[0].cv_error < 0.2,
            "best cv error {}",
            points[0].cv_error
        );
    }

    #[test]
    fn deterministic() {
        let data = BlobSpec {
            n: 60,
            dim: 2,
            classes: 2,
            spread: 0.2,
            seed: 78,
        }
        .generate();
        let grid = GridSearch {
            c_values: vec![1.0, 10.0],
            gamma_values: vec![0.5],
            folds: 2,
            seed: 9,
        };
        let base = SvmParams::default().with_working_set(16, 8);
        let a = grid.run(base, &Backend::libsvm(), &data).unwrap();
        let b = grid.run(base, &Backend::libsvm(), &data).unwrap();
        assert_eq!(a.1, b.1);
        assert_eq!(a.0.c, b.0.c);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn rejects_empty_grid() {
        let data = BlobSpec {
            n: 20,
            dim: 2,
            classes: 2,
            spread: 0.2,
            seed: 79,
        }
        .generate();
        let grid = GridSearch {
            c_values: vec![],
            gamma_values: vec![1.0],
            folds: 2,
            seed: 0,
        };
        let _ = grid.run(SvmParams::default(), &Backend::libsvm(), &data);
    }

    #[test]
    fn paper_sweep_shape() {
        let g = GridSearch::paper_sweep();
        assert_eq!(g.c_values.len() * g.gamma_values.len(), 9);
        assert_eq!(g.c_values[0], 0.01);
        assert_eq!(*g.gamma_values.last().unwrap(), 10.0);
    }
}
