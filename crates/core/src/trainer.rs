//! Training pipelines for all four backends (Algorithm 2 of the paper).

use crate::model::{BinarySvm, MpSvmModel, SvPoolBuilder};
use crate::ovo::{self, BinaryProblem};
use crate::params::{Backend, SvmParams};
use crate::telemetry::{BinaryTrainStats, TrainReport};
use gmp_datasets::Dataset;
use gmp_gpusim::cost::KernelCost;
use gmp_gpusim::{CpuExecutor, Device, DeviceError, Executor, Stream};
use gmp_kernel::{
    BufferedRows, ClassLayout, KernelOracle, ReplacementPolicy, SharedKernelStore, SharedRows,
};
use gmp_prob::{sigmoid_train, SigmoidParams};
use gmp_smo::{
    decision_values_for, decision_values_from_f, BatchedSmoSolver, ClassicSmoSolver, SolverResult,
};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Training failure.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// Fewer than two classes in the training data.
    TooFewClasses {
        /// Classes found.
        found: usize,
    },
    /// The simulated device ran out of memory even for the minimal plan.
    Device(DeviceError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::TooFewClasses { found } => {
                write!(f, "need at least 2 classes, found {found}")
            }
            TrainError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<DeviceError> for TrainError {
    fn from(e: DeviceError) -> Self {
        TrainError::Device(e)
    }
}

/// A trained model plus its training report.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The trained MP-SVM.
    pub model: MpSvmModel,
    /// Timings and counters.
    pub report: TrainReport,
}

/// Trains MP-SVM models with a fixed parameter set and backend.
#[derive(Debug, Clone)]
pub struct MpSvmTrainer {
    params: SvmParams,
    backend: Backend,
    /// Per-class penalty multipliers (LibSVM's `-wi`): instance `i` of
    /// class `c` gets box cap `C · class_weights[c]`. Empty = unweighted.
    class_weights: Vec<f64>,
    /// Real host threads driving concurrent binary problems in the GMP
    /// backend's waves. `None` = auto (`GMP_HOST_THREADS` env var, else the
    /// machine's available parallelism).
    host_threads: Option<usize>,
}

/// Result of one binary problem: solver output + sigmoid + stream time.
struct BinaryFit {
    result: SolverResult,
    sigmoid: Option<SigmoidParams>,
    sim_s: f64,
    kernel_evals: u64,
}

impl MpSvmTrainer {
    /// A trainer with the given parameters and backend.
    pub fn new(params: SvmParams, backend: Backend) -> Self {
        MpSvmTrainer {
            params,
            backend,
            class_weights: Vec::new(),
            host_threads: None,
        }
    }

    /// Pin the number of real host threads used to run concurrent binary
    /// problems (GMP backend waves). An explicit value is honoured verbatim
    /// — it is NOT clamped to the machine's core count, so tests can
    /// exercise the multi-threaded path on any box. `None` (the default)
    /// resolves from the `GMP_HOST_THREADS` environment variable, falling
    /// back to available parallelism.
    pub fn with_host_threads(mut self, threads: Option<usize>) -> Self {
        self.host_threads = threads;
        self
    }

    fn resolve_host_threads(&self) -> usize {
        resolve_host_threads_opt(self.host_threads)
    }

    /// Weight the penalty per class (LibSVM's `-wi`): class `c` instances
    /// get `C · weights[c]`. Classes beyond the vector default to 1.
    pub fn with_class_weights(mut self, weights: Vec<f64>) -> Self {
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        self.class_weights = weights;
        self
    }

    fn weight_of(&self, class: u16) -> f64 {
        self.class_weights
            .get(class as usize)
            .copied()
            .unwrap_or(1.0)
    }

    /// Box caps for a binary problem: `+1` instances belong to class `s`,
    /// `-1` to class `t`.
    fn caps_for(&self, prob: &BinaryProblem) -> Vec<f64> {
        let cp = self.params.c * self.weight_of(prob.s);
        let cn = self.params.c * self.weight_of(prob.t);
        prob.y
            .iter()
            .map(|&yi| if yi > 0.0 { cp } else { cn })
            .collect()
    }

    /// The parameter set.
    pub fn params(&self) -> &SvmParams {
        &self.params
    }

    /// Train on `data` (labels `0..k`).
    pub fn train(&self, data: &Dataset) -> Result<TrainOutcome, TrainError> {
        let k = data.n_classes();
        if k < 2 {
            return Err(TrainError::TooFewClasses { found: k });
        }
        let wall_start = Instant::now();
        let (grouped, offsets, map, problems) = ovo::decompose(data);

        let (fits, sim_s, device, peak_mem, concurrency, host_threads) = match &self.backend {
            Backend::CpuClassic { threads } => {
                let (fits, sim) = self.train_cpu_classic(&grouped, &offsets, &problems, *threads);
                (fits, sim, None, 0, 1, effective_host_threads(*threads))
            }
            Backend::CpuBatched { threads } => {
                let (fits, sim) = self.train_cpu_batched(&grouped, &offsets, &problems, *threads);
                (fits, sim, None, 0, 1, effective_host_threads(*threads))
            }
            Backend::GpuBaseline { device } => {
                let dev = Device::new(device.clone());
                let (fits, sim) = self.train_gpu_baseline(&grouped, &offsets, &problems, &dev)?;
                let peak = dev.mem_peak();
                (fits, sim, Some(dev), peak, 1, 1)
            }
            Backend::Gmp {
                device,
                max_concurrent,
            } => {
                let dev = Device::new(device.clone());
                let (fits, sim, conc) =
                    self.train_gmp(&grouped, &offsets, &problems, &dev, *max_concurrent)?;
                let peak = dev.mem_peak();
                (
                    fits,
                    sim,
                    Some(dev),
                    peak,
                    conc,
                    self.resolve_host_threads(),
                )
            }
        };

        // Assemble the model with support-vector sharing.
        let mut pool = SvPoolBuilder::new();
        let mut binaries = Vec::with_capacity(problems.len());
        let mut per_binary = Vec::with_capacity(problems.len());
        let mut sim_phases = gmp_smo::PhaseTimes::default();
        let mut wall_phases = gmp_smo::PhaseTimes::default();
        let mut kernel_evals = 0u64;
        let mut rows_computed = 0u64;
        let mut buffer_hits = 0u64;

        for (prob, fit) in problems.iter().zip(&fits) {
            let r = &fit.result;
            let mut sv_idx = Vec::new();
            let mut coef = Vec::new();
            for (local, &a) in r.alpha.iter().enumerate() {
                if a > 0.0 {
                    let orig = prob.original_index[local];
                    sv_idx.push(pool.intern(orig));
                    coef.push(prob.y[local] * a);
                }
            }
            per_binary.push(BinaryTrainStats {
                pair: (prob.s, prob.t),
                n: prob.n(),
                iterations: r.iterations,
                outer_rounds: r.outer_rounds,
                n_sv: sv_idx.len(),
                converged: r.converged,
                kernel_evals: fit.kernel_evals,
                sim_s: fit.sim_s,
            });
            sim_phases = sim_phases.add(&r.telemetry.sim_phases);
            wall_phases = wall_phases.add(&r.telemetry.wall_phases);
            kernel_evals += fit.kernel_evals;
            rows_computed += r.telemetry.rows.rows_computed;
            buffer_hits += r.telemetry.rows.buffer_hits;
            binaries.push(BinarySvm {
                s: prob.s,
                t: prob.t,
                sv_idx,
                coef,
                rho: r.rho,
                sigmoid: fit.sigmoid,
            });
        }

        let sigmoid_sim_s = 0.0;
        let model = MpSvmModel {
            classes: k,
            kernel: self.params.kernel,
            sv_pool: pool.build(&data.x),
            binaries,
        };
        let report = TrainReport {
            backend: self.backend.label(),
            compute_backend: self.params.compute_backend.name().to_string(),
            wall_s: wall_start.elapsed().as_secs_f64(),
            sim_s,
            kernel_evals,
            rows_computed,
            buffer_hits,
            sim_phases,
            wall_phases,
            per_binary,
            device: device.as_ref().map(|d| d.stats()),
            peak_device_mem: peak_mem,
            sigmoid_sim_s,
            concurrency,
            host_threads,
        };
        let _ = map; // grouped->original map is carried inside problems
        Ok(TrainOutcome { model, report })
    }

    /// Solve one problem with the classic solver over a per-problem
    /// sub-dataset (no cross-problem sharing).
    fn solve_classic_sub(
        &self,
        grouped: &Dataset,
        offsets: &[usize],
        prob: &BinaryProblem,
        exec: &dyn Executor,
        host_threads: usize,
        device: Option<&Device>,
    ) -> Result<BinaryFit, DeviceError> {
        let rows_sel = prob.grouped_rows(offsets);
        let sub = Arc::new(grouped.x.select_rows(&rows_sel));
        // Sub-dataset resident on the device for the duration (baseline
        // copies each binary problem's data up).
        let _data_mem = match device {
            Some(d) => {
                let bytes = sub.mem_bytes() as u64;
                let alloc = d.alloc(bytes)?;
                exec.charge_transfer(bytes);
                Some(alloc)
            }
            None => None,
        };
        let oracle = Arc::new(
            KernelOracle::new(sub, self.params.kernel)
                .with_host_threads(host_threads)
                .with_backend(self.params.compute_backend.instance()),
        );
        let mut rows = BufferedRows::new(
            oracle.clone(),
            self.params.cache_rows,
            ReplacementPolicy::Lru,
            device,
        )?;
        let sim_before = exec.elapsed();
        let caps = self.caps_for(prob);
        let result = ClassicSmoSolver::new(self.params.smo())
            .solve_weighted(&prob.y, &mut rows, exec, &caps);
        let sigmoid = self.fit_sigmoid_for(grouped, offsets, prob, &result, exec);
        Ok(BinaryFit {
            kernel_evals: oracle.eval_count(),
            sim_s: exec.elapsed() - sim_before,
            result,
            sigmoid,
        })
    }

    /// Fit the binary problem's sigmoid, honouring `sigmoid_cv_folds`.
    fn fit_sigmoid_for(
        &self,
        grouped: &Dataset,
        offsets: &[usize],
        prob: &BinaryProblem,
        result: &SolverResult,
        exec: &dyn Executor,
    ) -> Option<SigmoidParams> {
        if !self.params.probability {
            return None;
        }
        if self.params.sigmoid_cv_folds >= 2 {
            return Some(self.fit_sigmoid_cv(grouped, offsets, prob, exec));
        }
        self.fit_sigmoid(result, &prob.y, exec)
    }

    /// LibSVM's calibration protocol (`svm_binary_svc_probability`): fit
    /// the sigmoid on k-fold cross-validated decision values, so the
    /// calibration data was never seen by the scoring SVM.
    fn fit_sigmoid_cv(
        &self,
        grouped: &Dataset,
        offsets: &[usize],
        prob: &BinaryProblem,
        exec: &dyn Executor,
    ) -> SigmoidParams {
        let folds = self.params.sigmoid_cv_folds;
        let rows_sel = prob.grouped_rows(offsets);
        let sub = grouped.x.select_rows(&rows_sel);
        let n = prob.n();
        let mut dec = vec![0.0f64; n];
        for f in 0..folds {
            let test_idx: Vec<usize> = (0..n).filter(|i| i % folds == f).collect();
            let train_idx: Vec<usize> = (0..n).filter(|i| i % folds != f).collect();
            let y_tr: Vec<f64> = train_idx.iter().map(|&i| prob.y[i]).collect();
            if test_idx.is_empty()
                || !(y_tr.iter().any(|&v| v > 0.0) && y_tr.iter().any(|&v| v < 0.0))
            {
                continue; // degenerate fold: decision values stay 0
            }
            let fold_x = Arc::new(sub.select_rows(&train_idx));
            let oracle = Arc::new(
                KernelOracle::new(fold_x, self.params.kernel)
                    .with_backend(self.params.compute_backend.instance()),
            );
            let mut rows = BufferedRows::new(
                oracle.clone(),
                self.params.cache_rows,
                ReplacementPolicy::Lru,
                None,
            )
            // gmp:allow-panic — host-side fold buffer cannot exhaust simulated device memory
            .expect("host-side fold buffer needs no device memory");
            let r = ClassicSmoSolver::new(self.params.smo()).solve(&y_tr, &mut rows, exec);
            let test_x = sub.select_rows(&test_idx);
            let vals = decision_values_for(exec, &oracle, &y_tr, &r.alpha, r.rho, &test_x);
            for (ti, &i) in test_idx.iter().enumerate() {
                dec[i] = vals[ti];
            }
        }
        sigmoid_train(&dec, &prob.y)
    }

    fn fit_sigmoid(
        &self,
        result: &SolverResult,
        y: &[f64],
        exec: &dyn Executor,
    ) -> Option<SigmoidParams> {
        if !self.params.probability {
            return None;
        }
        let v = decision_values_from_f(&result.f, y, result.rho);
        let params = sigmoid_train(&v, y);
        // Newton's method: each iteration is two reductions over n plus a
        // line search of a few objective evaluations (Phase ii of §3.2).
        let n = y.len() as u64;
        for _ in 0..params.iterations {
            exec.charge(KernelCost::map(n, 12, 16));
            exec.charge(KernelCost::reduction(n));
            exec.charge(KernelCost::reduction(n));
        }
        Some(params)
    }

    fn train_cpu_classic(
        &self,
        grouped: &Dataset,
        offsets: &[usize],
        problems: &[BinaryProblem],
        threads: usize,
    ) -> (Vec<BinaryFit>, f64) {
        let exec = CpuExecutor::xeon(threads as u32);
        let host_threads = effective_host_threads(threads);
        let fits = problems
            .iter()
            .map(|p| {
                self.solve_classic_sub(grouped, offsets, p, &exec, host_threads, None)
                    // gmp:allow-panic — CPU executor has no device memory to exhaust
                    .expect("CPU path cannot hit device errors")
            })
            .collect();
        let sim = exec.elapsed();
        (fits, sim)
    }

    fn train_cpu_batched(
        &self,
        grouped: &Dataset,
        offsets: &[usize],
        problems: &[BinaryProblem],
        threads: usize,
    ) -> (Vec<BinaryFit>, f64) {
        let exec = CpuExecutor::xeon(threads as u32);
        let host_threads = effective_host_threads(threads);
        let oracle = Arc::new(
            KernelOracle::new(Arc::new(grouped.x.clone()), self.params.kernel)
                .with_host_threads(host_threads)
                .with_backend(self.params.compute_backend.instance()),
        );
        let layout = ClassLayout::new(offsets.to_vec());
        let store = Arc::new(
            SharedKernelStore::new(oracle, layout, shared_store_budget_bytes(grouped.n()), None)
                // gmp:allow-panic — host-memory store cannot exhaust simulated device memory
                .expect("host store needs no device memory"),
        );
        let solver = BatchedSmoSolver::new(self.params.batched());
        let mut fits = Vec::with_capacity(problems.len());
        for p in problems {
            let mut rows = SharedRows::new(
                store.clone(),
                p.s as usize,
                p.t as usize,
                self.params.ws_size,
            );
            let sim_before = exec.elapsed();
            let caps = self.caps_for(p);
            let result = solver.solve_weighted(&p.y, &mut rows, &exec, &caps);
            let sigmoid = self.fit_sigmoid_for(grouped, offsets, p, &result, &exec);
            fits.push(BinaryFit {
                kernel_evals: result.telemetry.rows.kernel_evals,
                sim_s: exec.elapsed() - sim_before,
                result,
                sigmoid,
            });
        }
        let sim = exec.elapsed();
        (fits, sim)
    }

    fn train_gpu_baseline(
        &self,
        grouped: &Dataset,
        offsets: &[usize],
        problems: &[BinaryProblem],
        device: &Device,
    ) -> Result<(Vec<BinaryFit>, f64), DeviceError> {
        let mut total_sim = 0.0;
        let mut fits = Vec::with_capacity(problems.len());
        for p in problems {
            // One binary SVM at a time, full device (§3.2).
            let stream = Stream::new(device.clone(), 1.0);
            let fit = self.solve_classic_sub(grouped, offsets, p, &stream, 1, Some(device))?;
            total_sim += stream.elapsed();
            fits.push(fit);
        }
        Ok((fits, total_sim))
    }

    fn train_gmp(
        &self,
        grouped: &Dataset,
        offsets: &[usize],
        problems: &[BinaryProblem],
        device: &Device,
        max_concurrent: usize,
    ) -> Result<(Vec<BinaryFit>, f64, usize), DeviceError> {
        // One resident copy of the (grouped) dataset serves all problems.
        let data_bytes = grouped.x.mem_bytes() as u64;
        let _data_mem = device.alloc(data_bytes)?;
        let setup = Stream::new(device.clone(), 1.0);
        setup.charge_transfer(data_bytes);
        let mut total_sim = setup.elapsed();

        let oracle = Arc::new(
            KernelOracle::new(Arc::new(grouped.x.clone()), self.params.kernel)
                .with_backend(self.params.compute_backend.instance()),
        );
        let layout = ClassLayout::new(offsets.to_vec());
        // Shared store: half of the remaining device memory, capped.
        let budget = shared_store_budget_bytes(grouped.n())
            .min(device.mem_available() / 2)
            .max(1 << 16);
        let store = Arc::new(SharedKernelStore::new(
            oracle,
            layout,
            budget,
            Some(device),
        )?);

        // Concurrency plan: each active problem needs its working-set
        // assembly region (ws x n_pair x 8 B) on the device.
        let footprint =
            |p: &BinaryProblem| -> u64 { (self.params.ws_size.min(p.n()) * p.n() * 8) as u64 };
        let upper = if max_concurrent == 0 {
            8
        } else {
            max_concurrent
        };
        let mut conc = upper.min(problems.len()).max(1);
        while conc > 1 {
            let mut worst: Vec<u64> = problems.iter().map(footprint).collect();
            worst.sort_unstable_by(|a, b| b.cmp(a));
            let need: u64 = worst.iter().take(conc).sum();
            if need <= device.mem_available() {
                break;
            }
            conc -= 1;
        }

        let solver = BatchedSmoSolver::new(self.params.batched());
        let host_threads = self.resolve_host_threads();
        let mut fits: Vec<Option<BinaryFit>> = (0..problems.len()).map(|_| None).collect();
        for wave in (0..problems.len()).collect::<Vec<_>>().chunks(conc) {
            let frac = 1.0 / wave.len() as f64;
            // Claim every active problem's working-set region up front, so
            // device-memory exhaustion surfaces as an error here rather
            // than a panic inside a worker thread. The regions live until
            // the whole wave retires — exactly the concurrency plan above.
            let mut ws_mems = Vec::with_capacity(wave.len());
            for &pi in wave {
                ws_mems.push(device.alloc(footprint(&problems[pi]))?);
            }
            let workers = host_threads.min(wave.len()).max(1);
            if workers == 1 {
                // Sequential reference path (also the bit-exactness anchor
                // for the concurrency tests).
                for &pi in wave {
                    fits[pi] = Some(self.solve_gmp_one(
                        grouped,
                        offsets,
                        &problems[pi],
                        &store,
                        device,
                        frac,
                        &solver,
                    ));
                }
            } else {
                // Tentpole: the wave's binary problems run on real host
                // threads, all hammering the one shared kernel store. Work
                // is dealt round-robin so the assignment (and thus every
                // per-problem result) is deterministic; single-flight in
                // the store keeps each (row, class) segment computed once
                // regardless of interleaving.
                let solved = crossbeam::thread::scope(|s| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let store = &store;
                            let solver = &solver;
                            s.spawn(move |_| {
                                let mut out: Vec<(usize, BinaryFit)> = Vec::new();
                                for (wi, &pi) in wave.iter().enumerate() {
                                    if wi % workers != w {
                                        continue;
                                    }
                                    let fit = self.solve_gmp_one(
                                        grouped,
                                        offsets,
                                        &problems[pi],
                                        store,
                                        device,
                                        frac,
                                        solver,
                                    );
                                    out.push((pi, fit));
                                }
                                out
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        // gmp:allow-panic — propagating a worker-thread panic; swallowing it would hide the original failure
                        .flat_map(|h| h.join().expect("wave worker panicked"))
                        .collect::<Vec<_>>()
                })
                // gmp:allow-panic — propagating a worker-thread panic; swallowing it would hide the original failure
                .expect("wave scope panicked");
                for (pi, fit) in solved {
                    fits[pi] = Some(fit);
                }
            }
            drop(ws_mems);
            let wave_max = wave
                .iter()
                // gmp:allow-panic — this wave just filled these slots
                .map(|&pi| fits[pi].as_ref().expect("wave slot filled").sim_s)
                .fold(0.0f64, f64::max);
            total_sim += wave_max;
        }
        let fits: Vec<BinaryFit> = fits
            .into_iter()
            // gmp:allow-panic — every problem index is assigned to exactly one wave, so all slots are filled
            .map(|f| f.expect("all waves ran"))
            .collect();
        Ok((fits, total_sim, conc))
    }

    /// Solve one GMP binary problem on its own fractional stream against
    /// the shared kernel store. Safe to call from concurrent wave workers:
    /// every mutable structure (stream, rows view, solver state) is local,
    /// and per-problem `kernel_evals` come from the store's owner-attributed
    /// accounting rather than racy oracle-counter deltas.
    #[allow(clippy::too_many_arguments)]
    fn solve_gmp_one(
        &self,
        grouped: &Dataset,
        offsets: &[usize],
        p: &BinaryProblem,
        store: &Arc<SharedKernelStore>,
        device: &Device,
        frac: f64,
        solver: &BatchedSmoSolver,
    ) -> BinaryFit {
        let stream = Stream::new(device.clone(), frac);
        let mut rows = SharedRows::new(
            store.clone(),
            p.s as usize,
            p.t as usize,
            self.params.ws_size,
        );
        let caps = self.caps_for(p);
        let result = solver.solve_weighted(&p.y, &mut rows, &stream, &caps);
        let sigmoid = self.fit_sigmoid_for(grouped, offsets, p, &result, &stream);
        BinaryFit {
            kernel_evals: result.telemetry.rows.kernel_evals,
            sim_s: stream.elapsed(),
            result,
            sigmoid,
        }
    }
}

/// Device-memory budget heuristic for the shared kernel store: enough for a
/// few thousand full rows, the scale of the paper's 4 GB cache relative to
/// its datasets.
fn shared_store_budget_bytes(n: usize) -> u64 {
    // 4096 full rows, at least 1 MiB.
    ((4096 * n * 8) as u64).max(1 << 20)
}

/// Resolve a real host-thread count. An explicit request is honoured
/// verbatim (so tests can force the multi-threaded path on a single-core
/// box); auto consults the `GMP_HOST_THREADS` environment variable, then
/// the machine's available parallelism.
pub(crate) fn resolve_host_threads_opt(explicit: Option<usize>) -> usize {
    match explicit {
        Some(n) => n.max(1),
        None => std::env::var("GMP_HOST_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
    }
}

/// Real host threads to use for numeric work (the cost model still charges
/// for the configured thread count; execution uses what the machine has).
fn effective_host_threads(configured: usize) -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    configured.min(avail).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_datasets::BlobSpec;
    use gmp_gpusim::DeviceConfig;

    fn blobs3() -> Dataset {
        BlobSpec {
            n: 120,
            dim: 2,
            classes: 3,
            spread: 0.18,
            seed: 3,
        }
        .generate()
    }

    fn params() -> SvmParams {
        SvmParams::default()
            .with_c(2.0)
            .with_rbf(1.0)
            .with_working_set(32, 16)
    }

    fn train_with(backend: Backend) -> TrainOutcome {
        MpSvmTrainer::new(params(), backend)
            .train(&blobs3())
            .unwrap()
    }

    #[test]
    fn cpu_classic_trains_all_pairs() {
        let out = train_with(Backend::libsvm());
        assert_eq!(out.model.binaries.len(), 3);
        assert!(out.report.all_converged());
        assert!(out.model.has_probability());
        assert!(out.model.n_sv() > 0);
        assert!(out.report.sim_s > 0.0);
    }

    #[test]
    fn gmp_trains_all_pairs() {
        let out = train_with(Backend::gmp_default());
        assert_eq!(out.model.binaries.len(), 3);
        assert!(out.report.all_converged());
        assert!(out.report.device.is_some());
        assert!(out.report.peak_device_mem > 0);
    }

    #[test]
    fn backends_agree_on_the_classifier() {
        // Table 4's claim: same classifier across implementations.
        let a = train_with(Backend::libsvm());
        let b = train_with(Backend::gmp_default());
        let c = train_with(Backend::cmp_svm());
        let d = train_with(Backend::gpu_baseline_default());
        for (other, name) in [(&b, "gmp"), (&c, "cmp"), (&d, "baseline")] {
            for (x, y) in a.model.binaries.iter().zip(&other.model.binaries) {
                assert!(
                    (x.rho - y.rho).abs() < 5e-3,
                    "{name}: rho {} vs {}",
                    x.rho,
                    y.rho
                );
            }
        }
    }

    #[test]
    fn gmp_computes_fewer_kernel_values_than_baseline() {
        // The paper's regime: the problem is hard (many iterations), the
        // baseline's cache covers only a slice of the kernel matrix, and
        // enough classes that every (row, class) segment is reused by
        // several binary problems (k - 1 of the k(k-1)/2 share it).
        // Equal memory for both: baseline cache = GMP working set.
        let data = BlobSpec {
            n: 240,
            dim: 2,
            classes: 4,
            spread: 0.55, // heavy class overlap -> many SVs, many iterations
            seed: 21,
        }
        .generate();
        let mut p = params().with_working_set(16, 8);
        p.cache_rows = 16;
        p.c = 5.0;
        let base = MpSvmTrainer::new(p, Backend::gpu_baseline_default())
            .train(&data)
            .unwrap();
        let gmp = MpSvmTrainer::new(p, Backend::gmp_default())
            .train(&data)
            .unwrap();
        assert!(
            gmp.report.kernel_evals < base.report.kernel_evals,
            "gmp {} vs baseline {}",
            gmp.report.kernel_evals,
            base.report.kernel_evals
        );
    }

    #[test]
    fn gmp_sim_faster_than_baseline() {
        let base = train_with(Backend::gpu_baseline_default());
        let gmp = train_with(Backend::gmp_default());
        assert!(
            gmp.report.sim_s < base.report.sim_s,
            "gmp {} vs baseline {}",
            gmp.report.sim_s,
            base.report.sim_s
        );
    }

    #[test]
    fn openmp_sim_faster_than_single_thread() {
        // Needs enough per-row work for parallel regions to beat the
        // fork/join overhead (high-dimensional sparse data).
        let data = gmp_datasets::SynthSpec {
            n: 200,
            dim: 2000,
            classes: 2,
            density: 0.05,
            class_sep: 0.6,
            label_noise: 0.02,
            scale: 1.0,
            seed: 17,
        }
        .generate();
        let p = SvmParams::default().with_c(5.0).with_rbf(0.5);
        let one = MpSvmTrainer::new(p, Backend::libsvm())
            .train(&data)
            .unwrap();
        let forty = MpSvmTrainer::new(p, Backend::libsvm_openmp())
            .train(&data)
            .unwrap();
        assert!(
            forty.report.sim_s < one.report.sim_s,
            "40t {} vs 1t {}",
            forty.report.sim_s,
            one.report.sim_s
        );
    }

    #[test]
    fn single_class_fails() {
        let mut d = blobs3();
        d.y.iter_mut().for_each(|y| *y = 0);
        let err = MpSvmTrainer::new(params(), Backend::libsvm())
            .train(&d)
            .unwrap_err();
        assert_eq!(err, TrainError::TooFewClasses { found: 1 });
    }

    #[test]
    fn tiny_device_rejects_gmp() {
        let backend = Backend::Gmp {
            device: DeviceConfig::tiny_test(256),
            max_concurrent: 0,
        };
        let err = MpSvmTrainer::new(params(), backend).train(&blobs3());
        assert!(matches!(err, Err(TrainError::Device(_))));
    }

    #[test]
    fn probability_can_be_disabled() {
        let out = MpSvmTrainer::new(params().without_probability(), Backend::libsvm())
            .train(&blobs3())
            .unwrap();
        assert!(!out.model.has_probability());
    }

    #[test]
    fn sv_sharing_dedups_pool() {
        let out = train_with(Backend::gmp_default());
        assert!(out.model.n_sv() <= out.model.total_sv_refs());
    }

    #[test]
    fn class_weights_shift_the_boundary() {
        // Imbalanced 2-class data: up-weighting the minority class must
        // reduce its error at the expense of the majority.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..160 {
            let t = i as f64 / 160.0;
            let jitter = ((i * 2654435761_usize) % 89) as f64 / 89.0 - 0.5;
            // 140 majority (class 0) vs 20 minority (class 1), overlapping.
            if i % 8 == 0 {
                x.push(vec![0.25 + 0.5 * jitter, t]);
                y.push(1u32);
            } else {
                x.push(vec![-0.25 + 0.5 * jitter, t]);
                y.push(0u32);
            }
        }
        let data = Dataset::new(gmp_sparse::CsrMatrix::from_dense(&x, 2), y);
        let p = SvmParams::default()
            .with_c(0.5)
            .with_rbf(20.0)
            .with_working_set(32, 16);
        let minority_errors = |weights: Vec<f64>| -> usize {
            let trainer = MpSvmTrainer::new(p, Backend::libsvm()).with_class_weights(weights);
            let out = trainer.train(&data).unwrap();
            let pred = out.model.predict(&data.x, &Backend::libsvm()).unwrap();
            pred.labels
                .iter()
                .zip(&data.y)
                .filter(|(pl, tl)| **tl == 1 && **pl != 1)
                .count()
        };
        let unweighted = minority_errors(vec![]);
        let weighted = minority_errors(vec![1.0, 25.0]);
        assert!(
            weighted < unweighted || (weighted == 0 && unweighted == 0),
            "weighting did not help the minority: {weighted} vs {unweighted}"
        );
        assert!(unweighted > 0, "problem too easy to exercise weighting");
    }

    #[test]
    fn cv_sigmoid_calibration_differs_from_direct() {
        // CV-fitted sigmoids see held-out decision values: the fitted
        // (A, B) must differ from the optimistic direct fit, while the
        // model still predicts sensibly.
        let data = blobs3();
        let direct = MpSvmTrainer::new(params(), Backend::libsvm())
            .train(&data)
            .unwrap();
        let cv = MpSvmTrainer::new(params().with_cv_sigmoid(3), Backend::libsvm())
            .train(&data)
            .unwrap();
        assert!(cv.model.has_probability());
        let mut any_diff = false;
        for (a, b) in direct.model.binaries.iter().zip(&cv.model.binaries) {
            // Same decision function either way.
            assert!((a.rho - b.rho).abs() < 1e-12);
            let (sa, sb) = (a.sigmoid.unwrap(), b.sigmoid.unwrap());
            if (sa.a - sb.a).abs() > 1e-9 || (sa.b - sb.b).abs() > 1e-9 {
                any_diff = true;
            }
        }
        assert!(any_diff, "CV calibration produced identical sigmoids");
        let pred = cv.model.predict(&data.x, &Backend::libsvm()).unwrap();
        let err = crate::predict::error_rate(&pred.labels, &data.y);
        assert!(err < 0.1, "cv-sigmoid model error {err}");
    }

    #[test]
    fn report_phases_populated() {
        let out = train_with(Backend::gmp_default());
        assert!(out.report.sim_phases.total() > 0.0);
        assert!(out.report.kernel_evals > 0);
        assert!(out.report.rows_computed > 0);
    }
}
