//! The trained MP-SVM model with shared support-vector storage (§3.3.3).

use gmp_kernel::KernelKind;
use gmp_prob::SigmoidParams;
use gmp_sparse::{CsrBuilder, CsrMatrix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// One binary probabilistic SVM of the pairwise-coupling ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinarySvm {
    /// Class pair `(s, t)` with `s < t`; `decision > 0` votes class `s`.
    pub s: u16,
    /// Second class.
    pub t: u16,
    /// Indices into the model's shared support-vector pool.
    pub sv_idx: Vec<u32>,
    /// Dual coefficients `y_i α_i` aligned with `sv_idx`.
    pub coef: Vec<f64>,
    /// Bias: `decision(x) = Σ coef_j K(sv_j, x) - rho`.
    pub rho: f64,
    /// Fitted sigmoid (present when trained with probability).
    pub sigmoid: Option<SigmoidParams>,
}

impl BinarySvm {
    /// Number of support vectors this binary SVM references.
    pub fn n_sv(&self) -> usize {
        self.sv_idx.len()
    }
}

/// A trained multi-class probabilistic SVM.
///
/// Support vectors are stored **once** in `sv_pool` and referenced by index
/// from each binary SVM — the paper's support-vector sharing, which both
/// shrinks the model by up to `(k-1)x` and lets prediction compute the
/// test-by-SV kernel block a single time for all binary SVMs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpSvmModel {
    /// Number of classes.
    pub classes: usize,
    /// Kernel function used at training time.
    pub kernel: KernelKind,
    /// Deduplicated support vectors (union across binary SVMs).
    pub sv_pool: CsrMatrix,
    /// The `k(k-1)/2` binary SVMs in pair-enumeration order.
    pub binaries: Vec<BinarySvm>,
}

/// Model (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ModelParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ModelParseError {}

impl MpSvmModel {
    /// Whether every binary SVM carries a fitted sigmoid.
    pub fn has_probability(&self) -> bool {
        self.binaries.iter().all(|b| b.sigmoid.is_some())
    }

    /// Total (shared) support vectors.
    pub fn n_sv(&self) -> usize {
        self.sv_pool.nrows()
    }

    /// Sum of per-binary SV references (what unshared storage would cost).
    pub fn total_sv_refs(&self) -> usize {
        self.binaries.iter().map(|b| b.n_sv()).sum()
    }

    /// Bias of the last binary SVM — the quantity Table 4's "bias" column
    /// reports for multi-class problems.
    pub fn last_bias(&self) -> f64 {
        self.binaries.last().map_or(0.0, |b| b.rho)
    }

    /// Serialize to the plain-text model format (LibSVM-inspired).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("gmp-svm-model v1\n");
        let _ = writeln!(out, "classes {}", self.classes);
        match self.kernel {
            KernelKind::Rbf { gamma } => {
                let _ = writeln!(out, "kernel rbf {gamma}");
            }
            KernelKind::Linear => {
                let _ = writeln!(out, "kernel linear");
            }
            KernelKind::Poly {
                gamma,
                coef0,
                degree,
            } => {
                let _ = writeln!(out, "kernel poly {gamma} {coef0} {degree}");
            }
            KernelKind::Sigmoid { gamma, coef0 } => {
                let _ = writeln!(out, "kernel sigmoid {gamma} {coef0}");
            }
        }
        let _ = writeln!(
            out,
            "sv_pool {} {}",
            self.sv_pool.nrows(),
            self.sv_pool.ncols()
        );
        for i in 0..self.sv_pool.nrows() {
            let row = self.sv_pool.row(i);
            let mut first = true;
            for (&c, &v) in row.indices.iter().zip(row.values) {
                if !first {
                    out.push(' ');
                }
                let _ = write!(out, "{}:{v}", c + 1);
                first = false;
            }
            out.push('\n');
        }
        for b in &self.binaries {
            let (a, bb) = b
                .sigmoid
                .map(|s| (s.a, s.b))
                .unwrap_or((f64::NAN, f64::NAN));
            let _ = writeln!(
                out,
                "binary {} {} {} {} {} {}",
                b.s,
                b.t,
                b.rho,
                a,
                bb,
                b.n_sv()
            );
            let mut first = true;
            for (&idx, &c) in b.sv_idx.iter().zip(&b.coef) {
                if !first {
                    out.push(' ');
                }
                let _ = write!(out, "{idx}:{c}");
                first = false;
            }
            out.push('\n');
        }
        out
    }

    /// Parse the plain-text model format.
    pub fn from_text(text: &str) -> Result<MpSvmModel, ModelParseError> {
        let err = |line: usize, message: &str| ModelParseError {
            line,
            message: message.to_string(),
        };
        let mut lines = text.lines().enumerate();
        let (ln, header) = lines.next().ok_or_else(|| err(1, "empty model"))?;
        if header.trim() != "gmp-svm-model v1" {
            return Err(err(ln + 1, "bad header"));
        }
        let (ln, classes_line) = lines.next().ok_or_else(|| err(2, "missing classes"))?;
        let classes: usize = classes_line
            .strip_prefix("classes ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| err(ln + 1, "bad classes line"))?;
        let (ln, kernel_line) = lines.next().ok_or_else(|| err(3, "missing kernel"))?;
        let ktoks: Vec<&str> = kernel_line.split_whitespace().collect();
        let kernel = match ktoks.as_slice() {
            ["kernel", "rbf", g] => KernelKind::Rbf {
                gamma: g.parse().map_err(|_| err(ln + 1, "bad gamma"))?,
            },
            ["kernel", "linear"] => KernelKind::Linear,
            ["kernel", "poly", g, c0, d] => KernelKind::Poly {
                gamma: g.parse().map_err(|_| err(ln + 1, "bad gamma"))?,
                coef0: c0.parse().map_err(|_| err(ln + 1, "bad coef0"))?,
                degree: d.parse().map_err(|_| err(ln + 1, "bad degree"))?,
            },
            ["kernel", "sigmoid", g, c0] => KernelKind::Sigmoid {
                gamma: g.parse().map_err(|_| err(ln + 1, "bad gamma"))?,
                coef0: c0.parse().map_err(|_| err(ln + 1, "bad coef0"))?,
            },
            _ => return Err(err(ln + 1, "bad kernel line")),
        };
        let (ln, pool_line) = lines.next().ok_or_else(|| err(4, "missing sv_pool"))?;
        let ptoks: Vec<&str> = pool_line.split_whitespace().collect();
        if ptoks.len() != 3 || ptoks[0] != "sv_pool" {
            return Err(err(ln + 1, "bad sv_pool line"));
        }
        let pool_rows: usize = ptoks[1].parse().map_err(|_| err(ln + 1, "bad pool rows"))?;
        let pool_cols: usize = ptoks[2].parse().map_err(|_| err(ln + 1, "bad pool cols"))?;
        let mut builder = CsrBuilder::new(pool_cols.max(1));
        for _ in 0..pool_rows {
            let (ln, row_line) = lines.next().ok_or_else(|| err(0, "truncated sv_pool"))?;
            builder.start_row();
            for tok in row_line.split_whitespace() {
                let (i, v) = tok
                    .split_once(':')
                    .ok_or_else(|| err(ln + 1, "bad sv token"))?;
                let col: usize = i.parse().map_err(|_| err(ln + 1, "bad sv index"))?;
                if col == 0 {
                    return Err(err(ln + 1, "sv indices are 1-based"));
                }
                let val: f64 = v.parse().map_err(|_| err(ln + 1, "bad sv value"))?;
                builder.push((col - 1) as u32, val);
            }
        }
        let sv_pool = builder.finish();
        let mut binaries = Vec::new();
        while let Some((ln, bl)) = lines.next() {
            if bl.trim().is_empty() {
                continue;
            }
            let toks: Vec<&str> = bl.split_whitespace().collect();
            if toks.len() != 7 || toks[0] != "binary" {
                return Err(err(ln + 1, "bad binary line"));
            }
            let s: u16 = toks[1].parse().map_err(|_| err(ln + 1, "bad s"))?;
            let t: u16 = toks[2].parse().map_err(|_| err(ln + 1, "bad t"))?;
            let rho: f64 = toks[3].parse().map_err(|_| err(ln + 1, "bad rho"))?;
            let a: f64 = toks[4].parse().map_err(|_| err(ln + 1, "bad A"))?;
            let b: f64 = toks[5].parse().map_err(|_| err(ln + 1, "bad B"))?;
            let nsv: usize = toks[6].parse().map_err(|_| err(ln + 1, "bad nsv"))?;
            let sigmoid = if a.is_nan() {
                None
            } else {
                Some(SigmoidParams {
                    a,
                    b,
                    iterations: 0,
                })
            };
            let (cln, coef_line) = lines
                .next()
                .ok_or_else(|| err(ln + 2, "truncated binary coefficients"))?;
            let mut sv_idx = Vec::with_capacity(nsv);
            let mut coef = Vec::with_capacity(nsv);
            for tok in coef_line.split_whitespace() {
                let (i, v) = tok
                    .split_once(':')
                    .ok_or_else(|| err(cln + 1, "bad coef token"))?;
                let idx: u32 = i.parse().map_err(|_| err(cln + 1, "bad coef index"))?;
                if (idx as usize) >= sv_pool.nrows() {
                    return Err(err(cln + 1, "coef index out of pool"));
                }
                sv_idx.push(idx);
                coef.push(v.parse().map_err(|_| err(cln + 1, "bad coef value"))?);
            }
            if sv_idx.len() != nsv {
                return Err(err(cln + 1, "coefficient count mismatch"));
            }
            binaries.push(BinarySvm {
                s,
                t,
                sv_idx,
                coef,
                rho,
                sigmoid,
            });
        }
        Ok(MpSvmModel {
            classes,
            kernel,
            sv_pool,
            binaries,
        })
    }
}

/// Builds the shared SV pool: deduplicates training instances referenced by
/// several binary SVMs (keyed by original dataset row).
#[derive(Debug, Default)]
pub struct SvPoolBuilder {
    index_of: HashMap<usize, u32>,
    rows: Vec<usize>,
}

impl SvPoolBuilder {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern the original-dataset row `orig`, returning its pool index.
    pub fn intern(&mut self, orig: usize) -> u32 {
        if let Some(&i) = self.index_of.get(&orig) {
            return i;
        }
        let i = self.rows.len() as u32;
        self.index_of.insert(orig, i);
        self.rows.push(orig);
        i
    }

    /// Number of unique rows interned.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Materialize the pool matrix from the original dataset.
    pub fn build(&self, x: &CsrMatrix) -> CsrMatrix {
        x.select_rows(&self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> MpSvmModel {
        let sv_pool = CsrMatrix::from_dense(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![1.5, -0.5]], 2);
        MpSvmModel {
            classes: 3,
            kernel: KernelKind::Rbf { gamma: 0.25 },
            sv_pool,
            binaries: vec![
                BinarySvm {
                    s: 0,
                    t: 1,
                    sv_idx: vec![0, 1],
                    coef: vec![0.5, -0.5],
                    rho: 0.1,
                    sigmoid: Some(SigmoidParams {
                        a: -1.5,
                        b: 0.2,
                        iterations: 3,
                    }),
                },
                BinarySvm {
                    s: 0,
                    t: 2,
                    sv_idx: vec![0, 2],
                    coef: vec![0.7, -0.7],
                    rho: -0.2,
                    sigmoid: Some(SigmoidParams {
                        a: -2.0,
                        b: 0.0,
                        iterations: 4,
                    }),
                },
                BinarySvm {
                    s: 1,
                    t: 2,
                    sv_idx: vec![1, 2],
                    coef: vec![0.3, -0.3],
                    rho: 0.05,
                    sigmoid: Some(SigmoidParams {
                        a: -1.0,
                        b: 0.1,
                        iterations: 2,
                    }),
                },
            ],
        }
    }

    #[test]
    fn roundtrip_text() {
        let m = sample_model();
        let text = m.to_text();
        let m2 = MpSvmModel::from_text(&text).unwrap();
        assert_eq!(m.classes, m2.classes);
        assert_eq!(m.kernel, m2.kernel);
        assert_eq!(m.sv_pool, m2.sv_pool);
        assert_eq!(m.binaries.len(), m2.binaries.len());
        for (a, b) in m.binaries.iter().zip(&m2.binaries) {
            assert_eq!((a.s, a.t), (b.s, b.t));
            assert_eq!(a.sv_idx, b.sv_idx);
            assert_eq!(a.coef, b.coef);
            assert_eq!(a.rho, b.rho);
            let (sa, sb) = (a.sigmoid.unwrap(), b.sigmoid.unwrap());
            assert_eq!((sa.a, sa.b), (sb.a, sb.b));
        }
    }

    #[test]
    fn roundtrip_without_probability() {
        let mut m = sample_model();
        for b in m.binaries.iter_mut() {
            b.sigmoid = None;
        }
        let m2 = MpSvmModel::from_text(&m.to_text()).unwrap();
        assert!(!m2.has_probability());
        assert!(m2.binaries.iter().all(|b| b.sigmoid.is_none()));
    }

    #[test]
    fn sharing_accounting() {
        let m = sample_model();
        assert_eq!(m.n_sv(), 3);
        assert_eq!(m.total_sv_refs(), 6);
        assert!(m.has_probability());
        assert_eq!(m.last_bias(), 0.05);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert!(MpSvmModel::from_text("").is_err());
        let e = MpSvmModel::from_text("nope\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = MpSvmModel::from_text("gmp-svm-model v1\nclasses x\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = MpSvmModel::from_text("gmp-svm-model v1\nclasses 2\nkernel warp 1\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn pool_builder_dedups() {
        let mut b = SvPoolBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.intern(10), 0);
        assert_eq!(b.intern(5), 1);
        assert_eq!(b.intern(10), 0);
        assert_eq!(b.len(), 2);
        let x = CsrMatrix::from_dense(&(0..12).map(|i| vec![i as f64]).collect::<Vec<_>>(), 1);
        let pool = b.build(&x);
        assert_eq!(pool.nrows(), 2);
        assert_eq!(pool.row(0).values, &[10.0]);
        assert_eq!(pool.row(1).values, &[5.0]);
    }

    #[test]
    fn all_kernel_kinds_roundtrip() {
        for kernel in [
            KernelKind::Linear,
            KernelKind::Poly {
                gamma: 0.5,
                coef0: 1.0,
                degree: 3,
            },
            KernelKind::Sigmoid {
                gamma: 0.1,
                coef0: -0.5,
            },
        ] {
            let mut m = sample_model();
            m.kernel = kernel;
            let m2 = MpSvmModel::from_text(&m.to_text()).unwrap();
            assert_eq!(m2.kernel, kernel);
        }
    }
}
