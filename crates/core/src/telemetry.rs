//! Training and prediction reports: wall time, simulated time, and the
//! hardware-independent counters every speedup claim is grounded in.

use gmp_gpusim::DeviceStats;
use gmp_smo::PhaseTimes;
use serde::{Deserialize, Serialize};

/// Per-binary-SVM training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryTrainStats {
    /// Class pair.
    pub pair: (u16, u16),
    /// Subproblem size.
    pub n: usize,
    /// SMO pair updates.
    pub iterations: u64,
    /// Outer working-set rounds.
    pub outer_rounds: u64,
    /// Support vector count.
    pub n_sv: usize,
    /// Converged within ε?
    pub converged: bool,
    /// Kernel values computed for this problem.
    pub kernel_evals: u64,
    /// Simulated seconds on this problem's stream/executor.
    pub sim_s: f64,
}

/// Aggregate training report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Backend label (Table 3 column).
    pub backend: String,
    /// Compute backend that executed the numeric hot ops ("scalar",
    /// "blocked"). Orthogonal to `backend`: changes host wall-clock only,
    /// never `sim_s` or any counter.
    pub compute_backend: String,
    /// Wall-clock seconds (host, this machine — not comparable to the
    /// paper's testbed).
    pub wall_s: f64,
    /// Simulated seconds on the modeled hardware: per-stream maxima for
    /// concurrent phases plus serial phases.
    pub sim_s: f64,
    /// Total kernel values computed across all binary problems.
    pub kernel_evals: u64,
    /// Total kernel rows computed.
    pub rows_computed: u64,
    /// Buffer hits across problems.
    pub buffer_hits: u64,
    /// Phase attribution (simulated time) — Fig. 11's three components.
    pub sim_phases: PhaseTimes,
    /// Phase attribution (wall time).
    pub wall_phases: PhaseTimes,
    /// Per-binary statistics.
    pub per_binary: Vec<BinaryTrainStats>,
    /// Device counters (GPU backends only).
    pub device: Option<DeviceStats>,
    /// Peak simulated device memory in bytes (GPU backends only).
    pub peak_device_mem: u64,
    /// Simulated seconds spent fitting sigmoids (probability phase).
    pub sigmoid_sim_s: f64,
    /// Binary SVMs trained concurrently per wave (1 = sequential).
    pub concurrency: usize,
    /// Real host threads that drove concurrent work (1 = sequential).
    pub host_threads: usize,
}

impl TrainReport {
    /// Total SMO iterations across binary problems.
    pub fn total_iterations(&self) -> u64 {
        self.per_binary.iter().map(|b| b.iterations).sum()
    }

    /// Did every binary problem converge?
    pub fn all_converged(&self) -> bool {
        self.per_binary.iter().all(|b| b.converged)
    }
}

/// Aggregate prediction report (Fig. 12's three components).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictReport {
    /// Backend label.
    pub backend: String,
    /// Compute backend that executed the numeric hot ops.
    pub compute_backend: String,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Simulated seconds.
    pub sim_s: f64,
    /// Kernel values computed (test x SV blocks).
    pub kernel_evals: u64,
    /// Unique support vectors scored (after sharing).
    pub unique_svs: usize,
    /// Sum of per-binary SV list lengths (what *no* sharing would score).
    pub total_sv_refs: usize,
    /// Simulated time computing decision values.
    pub sim_decision_s: f64,
    /// Simulated time applying sigmoids.
    pub sim_sigmoid_s: f64,
    /// Simulated time solving the coupling problem (Equation 15).
    pub sim_coupling_s: f64,
    /// Real host threads that drove concurrent work (1 = sequential).
    pub host_threads: usize,
}

impl PredictReport {
    /// Fraction of SV kernel work avoided by support-vector sharing.
    pub fn sharing_saving(&self) -> f64 {
        if self.total_sv_refs == 0 {
            return 0.0;
        }
        1.0 - (self.unique_svs as f64 / self.total_sv_refs as f64)
    }
}

/// Log-bucketed latency histogram: microsecond durations in power-of-two
/// buckets, so online recording is O(1) and quantile queries need no
/// stored samples. Bucket `i` holds durations in `[2^i, 2^(i+1)) µs`
/// (bucket 0 also absorbs sub-microsecond values); quantiles report the
/// bucket's upper bound, i.e. they are conservative to within 2x.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Per-bucket counts.
    buckets: Vec<u64>,
    /// Total recorded durations.
    count: u64,
    /// Sum of recorded microseconds (for the mean).
    sum_us: u64,
    /// Largest recorded duration in microseconds.
    max_us: u64,
}

/// `2^40` µs ≈ 13 days — anything longer saturates into the last bucket.
const LATENCY_BUCKETS: usize = 41;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; LATENCY_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Record one duration (in microseconds).
    pub fn record_us(&mut self, us: u64) {
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Record one duration.
    pub fn record(&mut self, d: std::time::Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean recorded duration in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_us as f64 / self.count as f64
    }

    /// Largest recorded duration in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1), in
    /// microseconds. Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i covers [2^i, 2^(i+1)); report the upper bound,
                // clamped to the observed maximum so p100 is exact.
                return (1u64 << (i + 1)).saturating_sub(1).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// Snapshot of the online-serving counters (`gmp-serve`): admission,
/// batching, and end-to-end latency. Produced by the serving subsystem's
/// metrics recorder; everything here is cumulative since server start.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests answered successfully.
    pub served: u64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_overload: u64,
    /// Requests that missed their deadline while queued.
    pub expired_deadline: u64,
    /// Requests that failed in scoring (model/backend error).
    pub failed: u64,
    /// Batches scored.
    pub batches: u64,
    /// Sum of batch sizes (mean batch size = `batched_rows / batches`).
    pub batched_rows: u64,
    /// Distribution of batch sizes: `batch_size_hist[i]` counts batches of
    /// size `i+1`; oversized batches saturate into the last slot.
    pub batch_size_hist: Vec<u64>,
    /// High-water mark of the request queue.
    pub peak_queue_depth: usize,
    /// End-to-end request latency (enqueue to response).
    pub latency: LatencyHistogram,
    /// Wall-clock seconds the metrics cover (server uptime at snapshot).
    pub uptime_s: f64,
    /// *Simulated* device-seconds consumed by scoring calls — the
    /// paper-comparable cost of the served traffic on the modeled GPU
    /// (launch overheads and SV-pool transfers amortize across a batch).
    pub scoring_sim_s: f64,
}

impl ServeReport {
    /// Mean batch size (0 when no batch was scored).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_rows as f64 / self.batches as f64
    }

    /// Served requests per second over the covered window.
    pub fn throughput_rps(&self) -> f64 {
        if self.uptime_s <= 0.0 {
            return 0.0;
        }
        self.served as f64 / self.uptime_s
    }

    /// Every accepted request got exactly one terminal outcome — the
    /// no-silent-drop accounting identity the saturation tests assert.
    pub fn is_balanced(&self) -> bool {
        self.accepted == self.served + self.expired_deadline + self.failed
    }

    /// Scored rows per *simulated* device-second (0 when nothing was
    /// scored) — the throughput the modeled GPU would sustain on this
    /// batch mix.
    pub fn sim_throughput_rps(&self) -> f64 {
        if self.scoring_sim_s <= 0.0 {
            return 0.0;
        }
        self.batched_rows as f64 / self.scoring_sim_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut r = TrainReport::default();
        r.per_binary.push(BinaryTrainStats {
            pair: (0, 1),
            n: 10,
            iterations: 5,
            outer_rounds: 2,
            n_sv: 4,
            converged: true,
            kernel_evals: 100,
            sim_s: 0.1,
        });
        r.per_binary.push(BinaryTrainStats {
            pair: (0, 2),
            n: 12,
            iterations: 7,
            outer_rounds: 3,
            n_sv: 6,
            converged: false,
            kernel_evals: 150,
            sim_s: 0.2,
        });
        assert_eq!(r.total_iterations(), 12);
        assert!(!r.all_converged());
    }

    #[test]
    fn sharing_saving() {
        let r = PredictReport {
            unique_svs: 60,
            total_sv_refs: 100,
            ..Default::default()
        };
        assert!((r.sharing_saving() - 0.4).abs() < 1e-12);
        assert_eq!(PredictReport::default().sharing_saving(), 0.0);
    }

    #[test]
    fn latency_histogram_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        // 90 fast requests (~100 µs), 10 slow ones (~50 ms).
        for _ in 0..90 {
            h.record_us(100);
        }
        for _ in 0..10 {
            h.record_us(50_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.50);
        let p95 = h.quantile_us(0.95);
        let p99 = h.quantile_us(0.99);
        // p50 lands in the 100 µs bucket [64, 128); p95/p99 in the 50 ms
        // bucket. Log buckets are conservative within 2x.
        assert!((64..=255).contains(&p50), "p50 {p50}");
        assert!(p95 >= 32_768, "p95 {p95}");
        assert!((32_768..=50_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile_us(1.0), 50_000);
        assert!((h.mean_us() - (90.0 * 100.0 + 10.0 * 50_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn latency_histogram_merge_and_edges() {
        let mut a = LatencyHistogram::new();
        a.record_us(0); // sub-microsecond → bucket 0
        a.record(std::time::Duration::from_micros(3));
        let mut b = LatencyHistogram::new();
        b.record_us(u64::MAX); // saturates into the last bucket
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_us(), u64::MAX);
        assert!(a.quantile_us(0.01) <= 3);
    }

    #[test]
    fn serve_report_accounting() {
        let r = ServeReport {
            accepted: 10,
            served: 8,
            expired_deadline: 1,
            failed: 1,
            rejected_overload: 5,
            batches: 4,
            batched_rows: 8,
            uptime_s: 2.0,
            ..Default::default()
        };
        assert!(r.is_balanced());
        assert!((r.mean_batch_size() - 2.0).abs() < 1e-12);
        assert!((r.throughput_rps() - 4.0).abs() < 1e-12);
        assert!(ServeReport::default().is_balanced());
        assert_eq!(ServeReport::default().mean_batch_size(), 0.0);
        assert_eq!(ServeReport::default().throughput_rps(), 0.0);
    }
}
