//! Training and prediction reports: wall time, simulated time, and the
//! hardware-independent counters every speedup claim is grounded in.

use gmp_gpusim::DeviceStats;
use gmp_smo::PhaseTimes;
use serde::{Deserialize, Serialize};

/// Per-binary-SVM training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryTrainStats {
    /// Class pair.
    pub pair: (u16, u16),
    /// Subproblem size.
    pub n: usize,
    /// SMO pair updates.
    pub iterations: u64,
    /// Outer working-set rounds.
    pub outer_rounds: u64,
    /// Support vector count.
    pub n_sv: usize,
    /// Converged within ε?
    pub converged: bool,
    /// Kernel values computed for this problem.
    pub kernel_evals: u64,
    /// Simulated seconds on this problem's stream/executor.
    pub sim_s: f64,
}

/// Aggregate training report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Backend label (Table 3 column).
    pub backend: String,
    /// Wall-clock seconds (host, this machine — not comparable to the
    /// paper's testbed).
    pub wall_s: f64,
    /// Simulated seconds on the modeled hardware: per-stream maxima for
    /// concurrent phases plus serial phases.
    pub sim_s: f64,
    /// Total kernel values computed across all binary problems.
    pub kernel_evals: u64,
    /// Total kernel rows computed.
    pub rows_computed: u64,
    /// Buffer hits across problems.
    pub buffer_hits: u64,
    /// Phase attribution (simulated time) — Fig. 11's three components.
    pub sim_phases: PhaseTimes,
    /// Phase attribution (wall time).
    pub wall_phases: PhaseTimes,
    /// Per-binary statistics.
    pub per_binary: Vec<BinaryTrainStats>,
    /// Device counters (GPU backends only).
    pub device: Option<DeviceStats>,
    /// Peak simulated device memory in bytes (GPU backends only).
    pub peak_device_mem: u64,
    /// Simulated seconds spent fitting sigmoids (probability phase).
    pub sigmoid_sim_s: f64,
    /// Binary SVMs trained concurrently per wave (1 = sequential).
    pub concurrency: usize,
    /// Real host threads that drove concurrent work (1 = sequential).
    pub host_threads: usize,
}

impl TrainReport {
    /// Total SMO iterations across binary problems.
    pub fn total_iterations(&self) -> u64 {
        self.per_binary.iter().map(|b| b.iterations).sum()
    }

    /// Did every binary problem converge?
    pub fn all_converged(&self) -> bool {
        self.per_binary.iter().all(|b| b.converged)
    }
}

/// Aggregate prediction report (Fig. 12's three components).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictReport {
    /// Backend label.
    pub backend: String,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Simulated seconds.
    pub sim_s: f64,
    /// Kernel values computed (test x SV blocks).
    pub kernel_evals: u64,
    /// Unique support vectors scored (after sharing).
    pub unique_svs: usize,
    /// Sum of per-binary SV list lengths (what *no* sharing would score).
    pub total_sv_refs: usize,
    /// Simulated time computing decision values.
    pub sim_decision_s: f64,
    /// Simulated time applying sigmoids.
    pub sim_sigmoid_s: f64,
    /// Simulated time solving the coupling problem (Equation 15).
    pub sim_coupling_s: f64,
    /// Real host threads that drove concurrent work (1 = sequential).
    pub host_threads: usize,
}

impl PredictReport {
    /// Fraction of SV kernel work avoided by support-vector sharing.
    pub fn sharing_saving(&self) -> f64 {
        if self.total_sv_refs == 0 {
            return 0.0;
        }
        1.0 - (self.unique_svs as f64 / self.total_sv_refs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut r = TrainReport::default();
        r.per_binary.push(BinaryTrainStats {
            pair: (0, 1),
            n: 10,
            iterations: 5,
            outer_rounds: 2,
            n_sv: 4,
            converged: true,
            kernel_evals: 100,
            sim_s: 0.1,
        });
        r.per_binary.push(BinaryTrainStats {
            pair: (0, 2),
            n: 12,
            iterations: 7,
            outer_rounds: 3,
            n_sv: 6,
            converged: false,
            kernel_evals: 150,
            sim_s: 0.2,
        });
        assert_eq!(r.total_iterations(), 12);
        assert!(!r.all_converged());
    }

    #[test]
    fn sharing_saving() {
        let r = PredictReport {
            unique_svs: 60,
            total_sv_refs: 100,
            ..Default::default()
        };
        assert!((r.sharing_saving() - 0.4).abs() < 1e-12);
        assert_eq!(PredictReport::default().sharing_saving(), 0.0);
    }
}
