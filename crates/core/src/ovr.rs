//! One-vs-rest (one-against-all) multi-class SVMs.
//!
//! The paper's §5 discusses Rifkin & Klautau's "In defense of one-vs-all"
//! but follows Wu, Lin & Weng in using pairwise coupling for probability
//! estimation, noting "one-against-all is rarely used for probabilistic
//! SVMs". This module implements the one-vs-rest alternative so that the
//! choice can be *measured* (see the `ablation_ovr_vs_ovo` experiment):
//! `k` binary SVMs, each separating one class from all others, with
//! probability estimates from normalized per-class sigmoids.

use crate::params::SvmParams;
use crate::predict::error_rate;
use gmp_datasets::Dataset;
use gmp_gpusim::{CpuExecutor, Executor};
use gmp_kernel::{BufferedRows, KernelKind, KernelOracle, ReplacementPolicy};
use gmp_prob::{sigmoid_predict, sigmoid_train, SigmoidParams};
use gmp_smo::{decision_values_for, decision_values_from_f, BatchedSmoSolver};
use gmp_sparse::CsrMatrix;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One binary one-vs-rest SVM (positive = its class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OvrBinary {
    /// The positive class.
    pub class: u32,
    /// Support-vector rows (indices into the shared pool).
    pub sv_idx: Vec<u32>,
    /// Dual coefficients `y_i α_i`.
    pub coef: Vec<f64>,
    /// Bias.
    pub rho: f64,
    /// Fitted sigmoid.
    pub sigmoid: SigmoidParams,
}

/// A trained one-vs-rest ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OvrModel {
    /// Number of classes.
    pub classes: usize,
    /// Kernel used at training time.
    pub kernel: KernelKind,
    /// Shared support-vector pool.
    pub sv_pool: CsrMatrix,
    /// One binary SVM per class.
    pub binaries: Vec<OvrBinary>,
}

impl OvrModel {
    /// Train `k` one-vs-rest probabilistic SVMs on the host with the
    /// batched solver (the strategy comparison is statistical, so a single
    /// execution backend suffices).
    pub fn train(params: SvmParams, data: &Dataset) -> OvrModel {
        let k = data.n_classes();
        assert!(k >= 2, "need at least two classes");
        let exec = CpuExecutor::xeon(1);
        let x = Arc::new(data.x.clone());
        let oracle = Arc::new(KernelOracle::new(x.clone(), params.kernel));
        let solver = BatchedSmoSolver::new(params.batched());

        let mut pool = crate::model::SvPoolBuilder::new();
        let mut binaries = Vec::with_capacity(k);
        for class in 0..k as u32 {
            let y: Vec<f64> = data
                .y
                .iter()
                .map(|&c| if c == class { 1.0 } else { -1.0 })
                .collect();
            let mut rows = BufferedRows::new(
                oracle.clone(),
                params.ws_size.max(2),
                ReplacementPolicy::FifoBatch,
                None,
            )
            // gmp:allow-panic — host-memory buffer cannot exhaust simulated device memory
            .expect("host buffer");
            let r = solver.solve(&y, &mut rows, &exec);
            let dec = decision_values_from_f(&r.f, &y, r.rho);
            let sigmoid = sigmoid_train(&dec, &y);
            let mut sv_idx = Vec::new();
            let mut coef = Vec::new();
            for (i, &a) in r.alpha.iter().enumerate() {
                if a > 0.0 {
                    sv_idx.push(pool.intern(i));
                    coef.push(y[i] * a);
                }
            }
            binaries.push(OvrBinary {
                class,
                sv_idx,
                coef,
                rho: r.rho,
                sigmoid,
            });
        }
        OvrModel {
            classes: k,
            kernel: params.kernel,
            sv_pool: pool.build(&data.x),
            binaries,
        }
    }

    /// Predict labels and normalized per-class probabilities.
    ///
    /// Probabilities are `sigmoid_c(v_c)` normalized to sum to one — the
    /// naive calibration one-vs-rest affords (no coupling problem exists).
    pub fn predict(&self, test: &CsrMatrix) -> (Vec<u32>, Vec<Vec<f64>>) {
        let exec = CpuExecutor::xeon(1);
        predict_ovr(self, test, &exec)
    }
}

fn predict_ovr(
    model: &OvrModel,
    test: &CsrMatrix,
    exec: &dyn Executor,
) -> (Vec<u32>, Vec<Vec<f64>>) {
    let m = test.nrows();
    let k = model.classes;
    if m == 0 {
        return (Vec::new(), Vec::new());
    }
    let oracle = KernelOracle::new(Arc::new(model.sv_pool.clone()), model.kernel);
    // Per-class decision values via the shared pool (one cross block).
    let mut scores = vec![vec![0.0f64; k]; m];
    for b in &model.binaries {
        // Expand the class's coefficients over the pool.
        let mut alpha = vec![0.0f64; model.sv_pool.nrows()];
        let mut ysign = vec![1.0f64; model.sv_pool.nrows()];
        for (&idx, &c) in b.sv_idx.iter().zip(&b.coef) {
            alpha[idx as usize] = c.abs();
            ysign[idx as usize] = c.signum();
        }
        let vals = decision_values_for(exec, &oracle, &ysign, &alpha, b.rho, test);
        for (i, &v) in vals.iter().enumerate() {
            scores[i][b.class as usize] = v;
        }
    }
    let mut labels = Vec::with_capacity(m);
    let mut probs = Vec::with_capacity(m);
    for row in &scores {
        let mut p: Vec<f64> = (0..k)
            .map(|c| sigmoid_predict(row[c], &model.binaries[c].sigmoid).max(1e-12))
            .collect();
        let sum: f64 = p.iter().sum();
        for v in p.iter_mut() {
            *v /= sum;
        }
        let best = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i as u32)
            // gmp:allow-panic — the model always has k >= 2 classes, so the
            // probability vector is never empty.
            .expect("k >= 2");
        labels.push(best);
        probs.push(p);
    }
    (labels, probs)
}

/// Convenience: train + evaluate OVR on a split, returning
/// `(test_error, log_loss)`.
pub fn evaluate_ovr(params: SvmParams, train: &Dataset, test: &Dataset) -> (f64, f64) {
    let model = OvrModel::train(params, train);
    let (labels, probs) = model.predict(&test.x);
    (
        error_rate(&labels, &test.y),
        gmp_prob::log_loss(&probs, &test.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_datasets::BlobSpec;

    fn data() -> Dataset {
        BlobSpec {
            n: 150,
            dim: 2,
            classes: 3,
            spread: 0.18,
            seed: 91,
        }
        .generate()
    }

    fn params() -> SvmParams {
        SvmParams::default()
            .with_c(2.0)
            .with_rbf(1.0)
            .with_working_set(32, 16)
    }

    #[test]
    fn trains_k_binaries() {
        let model = OvrModel::train(params(), &data());
        assert_eq!(model.binaries.len(), 3);
        assert!(model.sv_pool.nrows() > 0);
        for b in &model.binaries {
            assert_eq!(b.sv_idx.len(), b.coef.len());
        }
    }

    #[test]
    fn classifies_separable_blobs() {
        let d = data();
        let model = OvrModel::train(params(), &d);
        let (labels, probs) = model.predict(&d.x);
        let err = error_rate(&labels, &d.y);
        assert!(err < 0.05, "ovr training error {err}");
        for p in &probs {
            assert_eq!(p.len(), 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn labels_match_probability_argmax() {
        let d = data();
        let model = OvrModel::train(params(), &d);
        let (labels, probs) = model.predict(&d.x);
        for (l, p) in labels.iter().zip(&probs) {
            let am = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(*l as usize, am);
        }
    }

    #[test]
    fn evaluate_helper() {
        let d = data();
        let split = d.split(0.3, 3);
        let (err, ll) = evaluate_ovr(params(), &split.train, &split.test);
        assert!(err < 0.1, "err {err}");
        assert!(ll < 3.0f64.ln() * 1.1, "log loss {ll} vs uniform baseline");
    }

    #[test]
    fn empty_test() {
        let model = OvrModel::train(params(), &data());
        let (l, p) = model.predict(&CsrMatrix::empty(2));
        assert!(l.is_empty() && p.is_empty());
    }
}
