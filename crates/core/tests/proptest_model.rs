//! Property test: the plain-text model format is lossless.
//!
//! `MpSvmModel::from_text(m.to_text())` must reproduce the model exactly —
//! f64 `Display` emits the shortest round-trippable decimal, so equality
//! here is bitwise, not approximate. Models are generated directly
//! (random class counts, sparse SV pools, with/without sigmoids) rather
//! than trained, to reach corner cases training never emits: empty SV
//! rows, empty coefficient lists, negative values, mixed sigmoid presence.

use gmp_prob::SigmoidParams;
use gmp_sparse::CsrBuilder;
use gmp_svm::{BinarySvm, KernelKind, MpSvmModel};
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = KernelKind> {
    prop_oneof![
        Just(KernelKind::Linear),
        (0.001..10.0f64).prop_map(|gamma| KernelKind::Rbf { gamma }),
        (0.001..10.0f64, -2.0..2.0f64, 2u32..5).prop_map(|(gamma, coef0, degree)| {
            KernelKind::Poly {
                gamma,
                coef0,
                degree,
            }
        }),
        (0.001..10.0f64, -2.0..2.0f64)
            .prop_map(|(gamma, coef0)| KernelKind::Sigmoid { gamma, coef0 }),
    ]
}

/// A sparse SV-pool row: (column, value) pairs with strictly increasing
/// columns, possibly empty.
fn pool_row(ncols: usize) -> impl Strategy<Value = Vec<(u32, f64)>> {
    proptest::collection::vec(
        (
            0..ncols as u32,
            prop_oneof![2 => -100.0..100.0f64, 1 => 0.001..1.0f64],
        ),
        0..=ncols.min(6),
    )
    .prop_map(|mut cells| {
        cells.sort_by_key(|&(c, _)| c);
        cells.dedup_by_key(|&mut (c, _)| c);
        cells
    })
}

/// The `iterations` counter is metadata the text format intentionally
/// drops (parse restores 0), so generate it as 0 to keep `==` exact.
fn sigmoid_strategy() -> impl Strategy<Value = Option<SigmoidParams>> {
    prop_oneof![
        1 => Just(None),
        2 => (-30.0..-0.01f64, -8.0..8.0f64).prop_map(|(a, b)| Some(SigmoidParams {
            a,
            b,
            iterations: 0,
        })),
    ]
}

/// One binary's random payload: pool references, rho, sigmoid.
fn binary_payload(
    pool_rows: usize,
) -> impl Strategy<Value = (Vec<(u32, f64)>, f64, Option<SigmoidParams>)> {
    (
        proptest::collection::vec((0..pool_rows as u32, -4.0..4.0f64), 0..=pool_rows.min(5)),
        -3.0..3.0f64,
        sigmoid_strategy(),
    )
        .prop_map(|(mut refs, rho, sigmoid)| {
            // A binary may reference any pool subset, but not the same row
            // twice.
            refs.sort_by_key(|&(i, _)| i);
            refs.dedup_by_key(|&mut (i, _)| i);
            (refs, rho, sigmoid)
        })
}

fn model_strategy() -> impl Strategy<Value = MpSvmModel> {
    (2usize..=4, 1usize..=8, 1usize..=10).prop_flat_map(|(classes, pool_rows, ncols)| {
        let n_pairs = classes * (classes - 1) / 2;
        (
            Just(classes),
            kernel_strategy(),
            proptest::collection::vec(pool_row(ncols), pool_rows),
            proptest::collection::vec(binary_payload(pool_rows), n_pairs),
        )
            .prop_map(move |(classes, kernel, rows, payloads)| {
                let mut b = CsrBuilder::new(ncols);
                for row in &rows {
                    b.start_row();
                    for &(c, v) in row {
                        b.push(c, v);
                    }
                }
                let pairs = (0..classes as u16)
                    .flat_map(|s| ((s + 1)..classes as u16).map(move |t| (s, t)));
                let binaries = pairs
                    .zip(payloads)
                    .map(|((s, t), (refs, rho, sigmoid))| {
                        let (sv_idx, coef) = refs.into_iter().unzip();
                        BinarySvm {
                            s,
                            t,
                            sv_idx,
                            coef,
                            rho,
                            sigmoid,
                        }
                    })
                    .collect();
                MpSvmModel {
                    classes,
                    kernel,
                    sv_pool: b.finish(),
                    binaries,
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_format_roundtrips_exactly(m in model_strategy()) {
        let text = m.to_text();
        let back = MpSvmModel::from_text(&text).unwrap();
        prop_assert_eq!(&m, &back);
        // And the format is a fixed point: reserializing changes nothing.
        prop_assert_eq!(text, back.to_text());
    }
}
