//! Host-parallelism guarantees: running the GMP backend's waves on real
//! threads must change wall-clock behaviour only — every reported number
//! that defines the experiment (classifier, kernel-eval counts, device
//! budget) must be identical to the sequential run.

use gmp_datasets::BlobSpec;
use gmp_svm::{Backend, MpSvmTrainer, SvmParams, TrainOutcome};

/// Four classes -> six binary problems, so a wave genuinely holds several
/// concurrent problems and every (row, class) segment is reused by k-1 = 3
/// of them.
fn data() -> gmp_datasets::Dataset {
    BlobSpec {
        n: 240,
        dim: 3,
        classes: 4,
        spread: 0.3,
        seed: 11,
    }
    .generate()
}

fn params() -> SvmParams {
    SvmParams::default()
        .with_c(2.0)
        .with_rbf(1.0)
        .with_working_set(32, 16)
}

fn train(threads: usize) -> TrainOutcome {
    MpSvmTrainer::new(params(), Backend::gmp_default())
        .with_host_threads(Some(threads))
        .train(&data())
        .unwrap()
}

#[test]
fn four_threads_reproduce_sequential_classifier_bit_for_bit() {
    let seq = train(1);
    let par = train(4);
    assert_eq!(par.report.host_threads, 4);
    assert_eq!(seq.report.host_threads, 1);
    assert_eq!(seq.model.binaries.len(), par.model.binaries.len());
    for (a, b) in seq.model.binaries.iter().zip(&par.model.binaries) {
        assert_eq!(
            a.rho.to_bits(),
            b.rho.to_bits(),
            "rho differs for pair {:?}",
            (a.s, a.t)
        );
        assert_eq!(
            a.sv_idx,
            b.sv_idx,
            "SV set differs for pair {:?}",
            (a.s, a.t)
        );
        assert_eq!(a.coef.len(), b.coef.len());
        for (ca, cb) in a.coef.iter().zip(&b.coef) {
            assert_eq!(
                ca.to_bits(),
                cb.to_bits(),
                "coef differs for {:?}",
                (a.s, a.t)
            );
        }
        match (a.sigmoid, b.sigmoid) {
            (Some(sa), Some(sb)) => {
                assert_eq!(sa.a.to_bits(), sb.a.to_bits());
                assert_eq!(sa.b.to_bits(), sb.b.to_bits());
            }
            (None, None) => {}
            _ => panic!("sigmoid presence differs"),
        }
    }
}

#[test]
fn four_threads_compute_the_same_kernel_work() {
    // Single-flight in the shared store: with the store budget comfortably
    // above the working set, each (row, class) segment is computed exactly
    // once no matter how many threads race for it — so total kernel evals
    // and rows computed must match the sequential run exactly.
    let seq = train(1);
    let par = train(4);
    assert_eq!(
        seq.report.kernel_evals, par.report.kernel_evals,
        "threading changed total kernel evals"
    );
    assert_eq!(
        seq.report.rows_computed, par.report.rows_computed,
        "threading changed rows computed"
    );
    assert!(seq.report.kernel_evals > 0);
}

#[test]
fn concurrent_training_respects_device_budget() {
    let par = train(4);
    let device = par.report.device.as_ref().expect("gmp runs on a device");
    assert!(par.report.peak_device_mem > 0);
    // gmp_default models a Tesla P100: 12 GiB of global memory.
    assert!(
        par.report.peak_device_mem <= 12 * (1u64 << 30),
        "peak {} exceeds device capacity",
        par.report.peak_device_mem
    );
    assert!(device.launches > 0);
    assert!(par.report.concurrency > 1, "waves were not concurrent");
}

#[test]
fn threaded_prediction_matches_sequential() {
    let out = train(1);
    let d = data();
    let seq = out
        .model
        .predict_with_threads(&d.x, &Backend::gmp_default(), Some(1))
        .unwrap();
    let par = out
        .model
        .predict_with_threads(&d.x, &Backend::gmp_default(), Some(4))
        .unwrap();
    assert_eq!(seq.labels, par.labels);
    assert_eq!(par.report.host_threads, 4);
    for (a, b) in seq
        .decision_values
        .iter()
        .flatten()
        .zip(par.decision_values.iter().flatten())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "decision values diverged");
    }
    for (a, b) in seq
        .probabilities
        .iter()
        .flatten()
        .zip(par.probabilities.iter().flatten())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "probabilities diverged");
    }
}
