//! Serving-semantics guarantees: micro-batched results are bit-identical
//! to offline `predict()`, saturation fails loudly (`Overloaded` /
//! `DeadlineExceeded`, never a panic or a silent drop), and graceful
//! shutdown serves everything already admitted.

use gmp_datasets::{BlobSpec, Dataset};
use gmp_serve::{PredictorEngine, ServeConfig, ServeError, Server};
use gmp_sparse::CsrMatrix;
use gmp_svm::{Backend, MpSvmModel, MpSvmTrainer, PredictOutcome, SvmParams};
use std::time::Duration;

fn trained() -> (MpSvmModel, Dataset) {
    let data = BlobSpec {
        n: 150,
        dim: 3,
        classes: 3,
        spread: 0.2,
        seed: 11,
    }
    .generate();
    let model = MpSvmTrainer::new(
        SvmParams::default().with_c(2.0).with_rbf(1.0),
        Backend::gmp_default(),
    )
    .train(&data)
    .unwrap()
    .model;
    (model, data)
}

fn engine(model: MpSvmModel) -> PredictorEngine {
    PredictorEngine::new(model, Backend::gmp_default(), Some(1)).unwrap()
}

/// Sparse features of row `i` as the submit API wants them.
fn row_features(x: &CsrMatrix, i: usize) -> Vec<(u32, f64)> {
    let r = x.row(i);
    r.indices
        .iter()
        .copied()
        .zip(r.values.iter().copied())
        .collect()
}

#[test]
fn microbatched_results_bitwise_match_offline_predict() {
    let (model, data) = trained();
    let offline: PredictOutcome = model.predict(&data.x, &Backend::gmp_default()).unwrap();
    let server = Server::start(
        engine(model),
        ServeConfig {
            max_batch: 16,
            max_delay: Duration::from_millis(3),
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .expect("start server");

    // 30 concurrent clients, 5 rows each: arrival order is arbitrary, so
    // rows land in different batches at different positions on every run —
    // and the bits must not care.
    let n = data.n();
    crossbeam::thread::scope(|s| {
        for client in 0..30usize {
            let handle = server.handle();
            let x = &data.x;
            let offline = &offline;
            s.spawn(move |_| {
                for k in 0..5usize {
                    let i = (client * 5 + k) % n;
                    let p = handle.submit(row_features(x, i)).unwrap();
                    assert_eq!(p.label, offline.labels[i], "row {i}");
                    assert_eq!(
                        p.probabilities, offline.probabilities[i],
                        "row {i}: bitwise probability mismatch"
                    );
                }
            });
        }
    })
    .unwrap();

    let report = server.shutdown();
    assert_eq!(report.served, 150);
    assert_eq!(report.accepted, 150);
    assert!(report.is_balanced(), "ledger: {report:?}");
}

#[test]
fn backlog_actually_coalesces_into_batches() {
    let (model, data) = trained();
    let server = Server::start(
        engine(model),
        ServeConfig {
            max_batch: 16,
            max_delay: Duration::from_millis(1),
            workers: 1,
            // Slow scoring so a backlog builds behind the single worker.
            score_delay: Duration::from_millis(15),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    crossbeam::thread::scope(|s| {
        for i in 0..24usize {
            let handle = server.handle();
            let x = &data.x;
            s.spawn(move |_| handle.submit(row_features(x, i)).unwrap());
        }
    })
    .unwrap();
    let report = server.shutdown();
    assert_eq!(report.served, 24);
    assert!(
        report.batch_size_hist.len() >= 2,
        "expected at least one multi-row batch, got sizes {:?}",
        report.batch_size_hist
    );
    assert!(report.mean_batch_size() > 1.0);
}

#[test]
fn full_queue_rejects_with_overloaded_and_nothing_is_lost() {
    let (model, data) = trained();
    let server = Server::start(
        engine(model),
        ServeConfig {
            max_batch: 1,
            max_delay: Duration::ZERO,
            queue_cap: 2,
            workers: 1,
            // Each batch takes ~80 ms, so 16 one-shot clients saturate the
            // 2-slot queue long before it drains.
            score_delay: Duration::from_millis(80),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let outcomes: Vec<Result<_, ServeError>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..16usize)
            .map(|i| {
                let handle = server.handle();
                let x = &data.x;
                s.spawn(move |_| handle.submit(row_features(x, i)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    let ok = outcomes.iter().filter(|r| r.is_ok()).count();
    let overloaded = outcomes
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Overloaded)))
        .count();
    // Every client got exactly one verdict, and the only failure mode was
    // the explicit admission rejection.
    assert_eq!(ok + overloaded, 16, "unexpected outcomes: {outcomes:?}");
    assert!(overloaded > 0, "queue_cap=2 with 16 clients must overload");

    let report = server.shutdown();
    assert_eq!(report.rejected_overload as usize, overloaded);
    assert_eq!(report.accepted as usize, ok);
    assert_eq!(report.served as usize, ok);
    assert!(report.is_balanced(), "ledger: {report:?}");
    assert!(report.peak_queue_depth <= 2);
}

#[test]
fn expired_deadline_fails_explicitly() {
    let (model, data) = trained();
    let server = Server::start(
        engine(model),
        ServeConfig {
            max_batch: 1,
            max_delay: Duration::ZERO,
            workers: 1,
            score_delay: Duration::from_millis(60),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let (slow, fast) = crossbeam::thread::scope(|s| {
        let handle = server.handle();
        let x = &data.x;
        // First request occupies the worker for ~60 ms.
        let a = s.spawn(move |_| handle.submit(row_features(x, 0)));
        std::thread::sleep(Duration::from_millis(10));
        // Second request can only be scored after ~50 more ms — far past
        // its 5 ms deadline, so it must expire in the queue.
        let handle = server.handle();
        let b = s.spawn(move |_| {
            handle.submit_with_deadline(row_features(x, 1), Some(Duration::from_millis(5)))
        });
        (a.join().unwrap(), b.join().unwrap())
    })
    .unwrap();

    assert!(slow.is_ok(), "undeadlined request must be served: {slow:?}");
    assert_eq!(fast.unwrap_err(), ServeError::DeadlineExceeded);

    let report = server.shutdown();
    assert_eq!(report.expired_deadline, 1);
    assert_eq!(report.served, 1);
    assert!(report.is_balanced(), "ledger: {report:?}");
}

#[test]
fn graceful_shutdown_drains_admitted_requests() {
    let (model, data) = trained();
    let server = Server::start(
        engine(model),
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            workers: 1,
            score_delay: Duration::from_millis(30),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let handle = server.handle();
    let results = crossbeam::thread::scope(|s| {
        let clients: Vec<_> = (0..8usize)
            .map(|i| {
                let handle = handle.clone();
                let x = &data.x;
                s.spawn(move |_| handle.submit(row_features(x, i)))
            })
            .collect();
        // Let every client reach the queue, then shut down while most of
        // the work is still waiting behind the slow worker.
        std::thread::sleep(Duration::from_millis(10));
        let report = server.shutdown();
        let results: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        (report, results)
    })
    .unwrap();
    let (report, results) = results;

    // Everything admitted before the shutdown was *served*, not dropped.
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "request {i} lost in shutdown: {r:?}");
    }
    assert_eq!(report.served, 8);
    assert!(report.is_balanced(), "ledger: {report:?}");

    // After shutdown the handle fails fast.
    assert_eq!(
        handle.submit(row_features(&data.x, 0)).unwrap_err(),
        ServeError::ShuttingDown
    );
}

#[test]
fn bad_input_is_rejected_before_admission() {
    let (model, _) = trained();
    let server = Server::start(engine(model), ServeConfig::default()).expect("start server");
    let handle = server.handle();
    // Feature index beyond the model's dimensionality.
    let err = handle.submit(vec![(99, 1.0)]).unwrap_err();
    assert!(matches!(err, ServeError::BadInput(_)), "{err:?}");
    // Unsorted features.
    let err = handle.submit(vec![(2, 1.0), (1, 1.0)]).unwrap_err();
    assert!(matches!(err, ServeError::BadInput(_)), "{err:?}");
    let report = server.shutdown();
    assert_eq!(report.accepted, 0);
    assert!(report.is_balanced());
}

#[test]
fn empty_feature_vector_is_served() {
    // An all-zeros instance is legal LibSVM (no tokens) and must score,
    // not crash.
    let (model, _) = trained();
    let offline = model
        .predict(
            &CsrMatrix::empty(model.sv_pool.ncols()),
            &Backend::gmp_default(),
        )
        .unwrap();
    assert!(offline.labels.is_empty());
    let server = Server::start(engine(model), ServeConfig::default()).expect("start server");
    let p = server.handle().submit(vec![]).unwrap();
    assert!((p.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    let report = server.shutdown();
    assert_eq!(report.served, 1);
}
