//! Loom model-check of the micro-batcher lifecycle.
//!
//! Run with: `cargo test -p gmp-serve --features loom --test loom_batcher`
//!
//! The server's request/job channels, shutdown flag, metrics lock, and
//! every thread it spawns go through `gmp-sync`, so inside `loom::model`
//! the scheduler interleaves submitters, the batcher, the worker, and the
//! shutting-down owner. Over every explored schedule:
//!
//! - **terminal verdicts**: each submitter gets exactly one outcome, and
//!   the only admissible ones are `Ok(prediction)` or `ShuttingDown` —
//!   `Canceled` (a dropped responder) or a stranded submitter (model
//!   deadlock) is a failed schedule;
//! - **ledger balance**: `accepted == served + expired + failed` holds in
//!   the final report, with `accepted` equal to the number of successful
//!   submissions — the close-based shutdown admits and drains under one
//!   channel lock, so an admitted request is never flushed as
//!   `ShuttingDown`;
//! - **no lost wakeups**: a schedule where the batcher misses a submit
//!   notification or a submitter misses its verdict deadlocks the model.
//!
//! Scoring itself (`PredictorEngine::predict_batch`) is sequential and
//! lock-free per worker; with one worker it contributes no interleavings,
//! only wall-clock cost, so the model is trained once outside the checker
//! and cloned per schedule.
#![cfg(feature = "loom")]

use gmp_datasets::BlobSpec;
use gmp_serve::{PredictorEngine, ServeConfig, ServeError, Server};
use gmp_svm::{Backend, MpSvmModel, MpSvmTrainer, SvmParams};
use std::time::Duration;

fn tiny_model() -> MpSvmModel {
    let data = BlobSpec {
        n: 12,
        dim: 2,
        classes: 2,
        spread: 0.15,
        seed: 5,
    }
    .generate();
    MpSvmTrainer::new(
        SvmParams::default().with_c(1.0).with_rbf(1.0),
        Backend::gmp_default(),
    )
    .train(&data)
    .expect("tiny blob model trains")
    .model
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        max_batch: 2,
        // Zero flush delay keeps the straggler wait (a wall-clock timed
        // branch the model cannot advance) out of the explored schedules.
        max_delay: Duration::ZERO,
        queue_cap: 2,
        workers: 1,
        default_deadline: None,
        score_delay: Duration::ZERO,
    }
}

/// Submitters race `Server::shutdown`: whichever interleaving the model
/// picks, the ledger balances and an admitted request is always served.
#[test]
fn ledger_balances_under_concurrent_submit_and_shutdown() {
    let model = tiny_model();
    let mut b = loom::model::Builder::new();
    // 5 threads (owner, batcher, worker, 2 submitters) blow well past
    // exhaustive exploration; a bounded sample of schedules is the point.
    b.max_iterations = Some(1500);
    b.check(move || {
        let engine = PredictorEngine::new(model.clone(), Backend::gmp_default(), Some(1))
            .expect("tiny model serves");
        let server = Server::start(engine, serve_cfg()).expect("loom spawn is infallible");
        let submitters: Vec<_> = (0..2)
            .map(|i| {
                let h = server.handle();
                loom::thread::spawn(move || h.submit(vec![(0, 0.25 * (i + 1) as f64)]))
            })
            .collect();
        let report = server.shutdown();
        let results: Vec<_> = submitters
            .into_iter()
            .map(|t| t.join().expect("submitter panicked"))
            .collect();

        let mut ok = 0u64;
        for r in &results {
            match r {
                Ok(p) => {
                    ok += 1;
                    assert!(
                        !p.probabilities.is_empty(),
                        "probability model serves probs"
                    );
                }
                // The only legal failure: the submit lost the race against
                // shutdown *before* admission. An admitted request must
                // never surface `ShuttingDown`, `Canceled`, or anything
                // else.
                Err(ServeError::ShuttingDown) => {}
                Err(other) => panic!("illegal verdict under shutdown race: {other:?}"),
            }
        }
        assert_eq!(report.accepted, ok, "admitted ≠ successfully answered");
        assert_eq!(report.served, ok);
        assert_eq!(report.expired_deadline, 0);
        assert_eq!(report.failed, 0);
        assert!(report.is_balanced(), "ledger: {report:?}");
    });
}

/// Without a shutdown race every submission must be served — a schedule
/// where the batcher or a submitter misses its wakeup deadlocks the model.
#[test]
fn all_submissions_served_when_shutdown_waits() {
    let model = tiny_model();
    let mut b = loom::model::Builder::new();
    b.max_iterations = Some(1500);
    b.check(move || {
        let engine = PredictorEngine::new(model.clone(), Backend::gmp_default(), Some(1))
            .expect("tiny model serves");
        let server = Server::start(engine, serve_cfg()).expect("loom spawn is infallible");
        let submitters: Vec<_> = (0..2)
            .map(|i| {
                let h = server.handle();
                loom::thread::spawn(move || h.submit(vec![(1, -0.5 * (i + 1) as f64)]))
            })
            .collect();
        for t in submitters {
            let r = t.join().expect("submitter panicked");
            assert!(r.is_ok(), "submission lost without any shutdown: {r:?}");
        }
        let report = server.shutdown();
        assert_eq!(report.accepted, 2);
        assert_eq!(report.served, 2);
        assert!(report.is_balanced(), "ledger: {report:?}");
    });
}
