//! End-to-end smoke test for the `gmp-serve` binary: train a tiny model,
//! start the server on an ephemeral port, round-trip predictions and
//! STATS over TCP, then ask it to shut down and verify a clean exit.

use gmp_datasets::BlobSpec;
use gmp_svm::{Backend, MpSvmTrainer, SvmParams};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_binary_round_trips_over_tcp() {
    let data = BlobSpec {
        n: 90,
        dim: 3,
        classes: 3,
        spread: 0.2,
        seed: 5,
    }
    .generate();
    let trained = MpSvmTrainer::new(
        SvmParams::default().with_c(2.0).with_rbf(1.0),
        Backend::gmp_default(),
    )
    .train(&data)
    .unwrap();
    let offline = trained
        .model
        .predict(&data.x, &Backend::gmp_default())
        .unwrap();

    let model_path =
        std::env::temp_dir().join(format!("gmp_serve_smoke_{}.model", std::process::id()));
    std::fs::write(&model_path, trained.model.to_text()).unwrap();

    let mut child = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_gmp-serve"))
            .arg("--port")
            .arg("0")
            .arg("--max-batch")
            .arg("8")
            .arg("--max-delay-us")
            .arg("500")
            .arg(&model_path)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn gmp-serve"),
    );

    // The server announces its ephemeral port on stdout.
    let mut stdout = BufReader::new(child.0.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .strip_prefix("gmp-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_string();

    let stream = TcpStream::connect(&addr).expect("connect to gmp-serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut ask = |line: &str| -> String {
        writeln!(writer, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    };

    // Replay a few training rows; the served label must match offline
    // predict, and probabilities must be well-formed.
    for i in [0usize, 17, 42] {
        let row = data.x.row(i);
        let mut line = String::new();
        for (c, v) in row.indices.iter().zip(row.values.iter()) {
            line.push_str(&format!("{}:{} ", c + 1, v));
        }
        let reply = ask(line.trim());
        let mut parts = reply.split_whitespace();
        let label: u32 = parts.next().unwrap().parse().unwrap();
        assert_eq!(label, offline.labels[i], "row {i}: {reply}");
        let probs: Vec<f64> = parts.map(|p| p.parse().unwrap()).collect();
        assert_eq!(probs.len(), 3, "row {i}: {reply}");
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-3);
    }

    // Malformed input gets an ERR, not a dropped connection.
    let reply = ask("not a row");
    assert!(reply.starts_with("ERR "), "{reply}");

    // STATS returns one JSON line reflecting the served requests.
    let stats = ask("STATS");
    assert!(stats.starts_with('{') && stats.ends_with('}'), "{stats}");
    assert!(stats.contains("\"served\": 3"), "{stats}");

    // SHUTDOWN drains and exits cleanly.
    let reply = ask("SHUTDOWN");
    assert_eq!(reply, "OK shutting down");
    let status = child.0.wait().unwrap();
    assert!(status.success(), "server exit status: {status}");

    let _ = std::fs::remove_file(&model_path);
}
