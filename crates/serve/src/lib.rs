//! `gmp-serve` — online inference over a trained MP-SVM.
//!
//! The paper's prediction phase amortizes kernel work by scoring one
//! batched `test × SV-pool` kernel block for *all* binary SVMs (support-
//! vector sharing, §3.3.3). Offline, that amortization comes free: the
//! whole test file is one batch. Online traffic arrives one instance at a
//! time, so a per-request `predict()` call pays the per-launch setup on
//! every instance and can never use intra-batch parallelism.
//!
//! This crate closes that gap with a **dynamic micro-batcher**:
//!
//! * [`PredictorEngine`] loads the model once and precomputes the SV-pool
//!   state every call reuses (pool copy, squared norms, kernel diagonal,
//!   sigmoid validation) via [`gmp_svm::PreparedPredictor`].
//! * [`Server`] coalesces single-instance requests from a bounded queue
//!   into batches of up to `max_batch`, flushing a partial batch after
//!   `max_delay`. Scoring runs on a small worker pool; results go back to
//!   the callers one by one, **bit-identical** to what an offline
//!   `predict()` over the same rows returns.
//! * Admission control is explicit: a full queue rejects with
//!   [`ServeError::Overloaded`] instead of queueing unboundedly, expired
//!   per-request deadlines fail with [`ServeError::DeadlineExceeded`], and
//!   [`Server::shutdown`] drains everything already admitted.
//! * [`ServeMetrics`] feeds the serving counters of
//!   [`gmp_svm::ServeReport`]: end-to-end latency histogram (p50/p95/p99),
//!   queue-depth high-water mark, batch-size distribution, throughput, and
//!   rejected/expired counts.
//! * [`proto`] defines the newline-delimited front-end protocol spoken by
//!   the `gmp-serve` binary: LibSVM rows in, `label p1 … pk` out.

pub mod batcher;
pub mod engine;
pub mod metrics;
pub mod proto;

pub use batcher::{Prediction, ServeConfig, ServeError, ServeHandle, Server};
pub use engine::{EngineError, PredictorEngine};
pub use metrics::ServeMetrics;
