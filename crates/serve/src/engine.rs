//! The serving-side predictor: one model, loaded and validated once,
//! scored many times.

use gmp_sparse::CsrMatrix;
use gmp_svm::predict::PreparedPredictor;
use gmp_svm::trainer::TrainError;
use gmp_svm::ComputeBackendKind;
use gmp_svm::{Backend, MpSvmModel, PredictOutcome};
use std::fmt;
use std::sync::Arc;

/// Model rejected at engine construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The model has no binary SVMs to score with.
    NoBinaries,
    /// Fewer than two classes.
    TooFewClasses(usize),
    /// Some binaries carry sigmoids and some do not — probabilities would
    /// be silently dropped, which a server must not do.
    PartialSigmoids,
    /// A binary references a support vector outside the pool.
    SvIndexOutOfPool { binary: usize, index: u32 },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoBinaries => write!(f, "model has no binary SVMs"),
            EngineError::TooFewClasses(k) => write!(f, "model has {k} classes (need >= 2)"),
            EngineError::PartialSigmoids => write!(
                f,
                "model mixes sigmoid-fitted and plain binaries; refusing to serve"
            ),
            EngineError::SvIndexOutOfPool { binary, index } => write!(
                f,
                "binary {binary} references SV {index} outside the shared pool"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// A trained [`MpSvmModel`] prepared for long-lived online serving.
///
/// Construction validates the invariants the serving loop depends on and
/// hoists the per-call SV-pool setup (pool copy handed to the kernel
/// oracle, squared norms, kernel diagonal) into one-time state, so every
/// batch — however small — only pays for the actual scoring.
pub struct PredictorEngine {
    predictor: PreparedPredictor,
    dim: usize,
}

impl fmt::Debug for PredictorEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PredictorEngine")
            .field("classes", &self.classes())
            .field("dim", &self.dim)
            .field("n_sv", &self.predictor.model().n_sv())
            .field("backend", &self.predictor.backend().label())
            .field("compute_backend", &self.predictor.compute_backend().name())
            .finish()
    }
}

impl PredictorEngine {
    /// Prepare `model` for serving on `backend`. `host_threads` bounds the
    /// real threads each scoring call may use (`None` = auto).
    pub fn new(
        model: MpSvmModel,
        backend: Backend,
        host_threads: Option<usize>,
    ) -> Result<Self, EngineError> {
        Self::with_compute_backend(model, backend, host_threads, ComputeBackendKind::from_env())
    }

    /// [`PredictorEngine::new`] on an explicit compute backend (instead of
    /// the `GMP_BACKEND` selection).
    pub fn with_compute_backend(
        model: MpSvmModel,
        backend: Backend,
        host_threads: Option<usize>,
        compute: ComputeBackendKind,
    ) -> Result<Self, EngineError> {
        if model.classes < 2 {
            return Err(EngineError::TooFewClasses(model.classes));
        }
        if model.binaries.is_empty() {
            return Err(EngineError::NoBinaries);
        }
        let with_sigmoid = model
            .binaries
            .iter()
            .filter(|b| b.sigmoid.is_some())
            .count();
        if with_sigmoid != 0 && with_sigmoid != model.binaries.len() {
            return Err(EngineError::PartialSigmoids);
        }
        let pool = model.sv_pool.nrows() as u32;
        for (bi, b) in model.binaries.iter().enumerate() {
            if let Some(&bad) = b.sv_idx.iter().find(|&&i| i >= pool) {
                return Err(EngineError::SvIndexOutOfPool {
                    binary: bi,
                    index: bad,
                });
            }
        }
        let dim = model.sv_pool.ncols();
        let predictor = PreparedPredictor::with_compute_backend(
            Arc::new(model),
            backend,
            host_threads,
            compute,
        );
        Ok(PredictorEngine { predictor, dim })
    }

    /// The compute backend every scoring call uses.
    pub fn compute_backend(&self) -> ComputeBackendKind {
        self.predictor.compute_backend()
    }

    /// Feature dimensionality requests must respect.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes in every probability vector.
    pub fn classes(&self) -> usize {
        self.predictor.model().classes
    }

    /// Whether responses carry probabilities.
    pub fn has_probability(&self) -> bool {
        self.predictor.model().has_probability()
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<MpSvmModel> {
        self.predictor.model()
    }

    /// Score one batch — bit-identical to offline
    /// [`MpSvmModel::predict`] on the same rows.
    pub fn predict_batch(&self, batch: &CsrMatrix) -> Result<PredictOutcome, TrainError> {
        self.predictor.predict(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_datasets::BlobSpec;
    use gmp_svm::{MpSvmTrainer, SvmParams};

    fn model() -> MpSvmModel {
        let data = BlobSpec {
            n: 90,
            dim: 2,
            classes: 3,
            spread: 0.15,
            seed: 9,
        }
        .generate();
        MpSvmTrainer::new(
            SvmParams::default().with_c(2.0).with_rbf(1.0),
            Backend::gmp_default(),
        )
        .train(&data)
        .unwrap()
        .model
    }

    #[test]
    fn accepts_valid_model() {
        let e = PredictorEngine::new(model(), Backend::gmp_default(), Some(1)).unwrap();
        assert_eq!(e.dim(), 2);
        assert_eq!(e.classes(), 3);
        assert!(e.has_probability());
    }

    #[test]
    fn rejects_partial_sigmoids() {
        let mut m = model();
        m.binaries[0].sigmoid = None;
        let e = PredictorEngine::new(m, Backend::gmp_default(), Some(1)).unwrap_err();
        assert_eq!(e, EngineError::PartialSigmoids);
    }

    #[test]
    fn rejects_out_of_pool_reference() {
        let mut m = model();
        let bad = m.sv_pool.nrows() as u32 + 7;
        m.binaries[1].sv_idx[0] = bad;
        let e = PredictorEngine::new(m, Backend::gmp_default(), Some(1)).unwrap_err();
        assert_eq!(
            e,
            EngineError::SvIndexOutOfPool {
                binary: 1,
                index: bad
            }
        );
    }

    #[test]
    fn rejects_empty_model() {
        let mut m = model();
        m.binaries.clear();
        assert_eq!(
            PredictorEngine::new(m, Backend::gmp_default(), Some(1)).unwrap_err(),
            EngineError::NoBinaries
        );
        let mut m = model();
        m.classes = 1;
        assert!(matches!(
            PredictorEngine::new(m, Backend::gmp_default(), Some(1)).unwrap_err(),
            EngineError::TooFewClasses(1)
        ));
    }
}
