//! The newline-delimited serving protocol.
//!
//! One request per line, LibSVM row syntax with the label optional
//! (a leading bare number is accepted and ignored, so training files can
//! be replayed verbatim):
//!
//! ```text
//! 1:0.5 7:1.25            -> 2 0.031250 0.906250 0.062500
//! 3 1:0.5 7:1.25          -> same (label "3" ignored)
//! STATS                   -> one-line JSON of the serving counters
//! QUIT                    -> server closes this connection
//! SHUTDOWN                -> server drains and exits
//! ```
//!
//! Responses: `label p1 … pk` for a scored request (probabilities omitted
//! when the model has no sigmoids), `ERR <reason>` for a failed one.
//! Blank lines and `#` comments are ignored.

use crate::batcher::{Prediction, ServeError};
use gmp_svm::ServeReport;
use std::fmt::Write as _;

/// One parsed input line.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestLine {
    /// Score this instance (sparse features, 0-based strictly increasing
    /// columns).
    Predict(Vec<(u32, f64)>),
    /// Report serving metrics.
    Stats,
    /// Close this connection.
    Quit,
    /// Drain and stop the whole server.
    Shutdown,
    /// Nothing to do (blank/comment).
    Empty,
}

/// Parse one protocol line.
pub fn parse_line(line: &str) -> Result<RequestLine, ServeError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(RequestLine::Empty);
    }
    match line {
        "STATS" => return Ok(RequestLine::Stats),
        "QUIT" => return Ok(RequestLine::Quit),
        "SHUTDOWN" => return Ok(RequestLine::Shutdown),
        _ => {}
    }
    let mut features = Vec::new();
    for (ti, tok) in line.split_whitespace().enumerate() {
        let Some((idx_s, val_s)) = tok.split_once(':') else {
            if ti == 0 && tok.parse::<f64>().is_ok() {
                continue; // leading label — accepted and ignored
            }
            return Err(ServeError::BadInput(format!(
                "token '{tok}' is neither a label nor index:value"
            )));
        };
        let idx: u64 = idx_s
            .parse()
            .map_err(|_| ServeError::BadInput(format!("bad feature index '{idx_s}'")))?;
        if idx == 0 {
            return Err(ServeError::BadInput(
                "feature indices are 1-based".to_string(),
            ));
        }
        if idx > u32::MAX as u64 {
            return Err(ServeError::BadInput(format!(
                "feature index {idx} too large"
            )));
        }
        let val: f64 = val_s
            .parse()
            .map_err(|_| ServeError::BadInput(format!("bad feature value '{val_s}'")))?;
        features.push(((idx - 1) as u32, val));
    }
    Ok(RequestLine::Predict(features))
}

/// Format a scored request: `label p1 … pk` (no trailing newline).
pub fn format_prediction(p: &Prediction) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}", p.label);
    for v in &p.probabilities {
        let _ = write!(out, " {v:.6}");
    }
    out
}

/// Format a failed request: `ERR <reason>` (no trailing newline).
pub fn format_error(e: &ServeError) -> String {
    format!("ERR {e}")
}

/// Format the serving counters as one JSON line (hand-rolled — the
/// vendored serde has no serializer).
pub fn format_stats(r: &ServeReport) -> String {
    format!(
        "{{\"accepted\": {}, \"served\": {}, \"rejected_overload\": {}, \
         \"expired_deadline\": {}, \"failed\": {}, \"batches\": {}, \
         \"mean_batch_size\": {:.3}, \"peak_queue_depth\": {}, \
         \"latency_p50_us\": {}, \"latency_p95_us\": {}, \"latency_p99_us\": {}, \
         \"latency_mean_us\": {:.1}, \"throughput_rps\": {:.1}, \
         \"scoring_sim_s\": {:.6}, \"sim_throughput_rps\": {:.1}, \"uptime_s\": {:.3}}}",
        r.accepted,
        r.served,
        r.rejected_overload,
        r.expired_deadline,
        r.failed,
        r.batches,
        r.mean_batch_size(),
        r.peak_queue_depth,
        r.latency.quantile_us(0.50),
        r.latency.quantile_us(0.95),
        r.latency.quantile_us(0.99),
        r.latency.mean_us(),
        r.throughput_rps(),
        r.scoring_sim_s,
        r.sim_throughput_rps(),
        r.uptime_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_features_with_and_without_label() {
        let bare = parse_line("1:0.5 7:1.25").unwrap();
        let labeled = parse_line("3 1:0.5 7:1.25").unwrap();
        let want = RequestLine::Predict(vec![(0, 0.5), (6, 1.25)]);
        assert_eq!(bare, want);
        assert_eq!(labeled, want);
        // Negative and float labels too (LibSVM allows both).
        assert_eq!(
            parse_line("-1 2:1").unwrap(),
            RequestLine::Predict(vec![(1, 1.0)])
        );
        assert_eq!(
            parse_line("2.5 2:1").unwrap(),
            RequestLine::Predict(vec![(1, 1.0)])
        );
    }

    #[test]
    fn parses_commands_and_blanks() {
        assert_eq!(parse_line("STATS").unwrap(), RequestLine::Stats);
        assert_eq!(parse_line("QUIT").unwrap(), RequestLine::Quit);
        assert_eq!(parse_line("SHUTDOWN").unwrap(), RequestLine::Shutdown);
        assert_eq!(parse_line("").unwrap(), RequestLine::Empty);
        assert_eq!(parse_line("   ").unwrap(), RequestLine::Empty);
        assert_eq!(parse_line("# comment").unwrap(), RequestLine::Empty);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("1:0.5 garbage").is_err());
        assert!(parse_line("0:1.0").is_err()); // 0 is not a valid 1-based index
        assert!(parse_line("x:1.0").is_err());
        assert!(parse_line("1:abc").is_err());
        assert!(parse_line("5000000000:1.0").is_err());
        // A lone non-numeric token is not a label.
        assert!(parse_line("hello").is_err());
    }

    #[test]
    fn label_only_line_is_empty_features() {
        assert_eq!(parse_line("4").unwrap(), RequestLine::Predict(vec![]));
    }

    #[test]
    fn formats_prediction_and_error() {
        let p = Prediction {
            label: 2,
            probabilities: vec![0.25, 0.5, 0.25],
        };
        assert_eq!(format_prediction(&p), "2 0.250000 0.500000 0.250000");
        let bare = Prediction {
            label: 1,
            probabilities: vec![],
        };
        assert_eq!(format_prediction(&bare), "1");
        assert_eq!(
            format_error(&ServeError::Overloaded),
            "ERR server overloaded (queue full)"
        );
    }

    #[test]
    fn stats_json_is_wellformed_enough() {
        let s = format_stats(&ServeReport::default());
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"served\": 0"));
        assert!(s.contains("latency_p99_us"));
    }
}
