//! `gmp-serve` — long-lived TCP front-end for online MP-SVM inference.
//!
//! ```text
//! gmp-serve [options] MODEL_FILE
//!   --host H           bind address (default 127.0.0.1)
//!   --port P           TCP port; 0 picks an ephemeral port (default 7878)
//!   --backend B        scoring backend: libsvm | libsvm-omp | gpu-baseline
//!                      | cmp | gmp | gmp-v100 (default gmp)
//!   --compute-backend C  numeric compute backend: scalar | blocked
//!                      (default: GMP_BACKEND env var, else scalar)
//!   --threads N        host threads per scoring call (default auto)
//!   --max-batch N      micro-batch size cap (default 32)
//!   --max-delay-us D   flush window for partial batches (default 2000)
//!   --queue N          request-queue capacity (default 1024)
//!   --workers N        scoring worker threads (default 2)
//!   --deadline-ms D    per-request deadline; 0 = none (default 0)
//! ```
//!
//! Protocol (newline-delimited, one request per line — see
//! `gmp_serve::proto`): LibSVM rows in, `label p1 … pk` out, `ERR <reason>`
//! on failure; `STATS` returns one JSON line, `QUIT` closes the
//! connection, `SHUTDOWN` drains the server and exits.
//!
//! The actual bind address is announced on stdout as
//! `gmp-serve listening on HOST:PORT` so scripts (and the smoke test) can
//! use `--port 0`.

use gmp_serve::proto::{self, RequestLine};
use gmp_serve::{PredictorEngine, ServeConfig, ServeHandle, Server};
use gmp_svm::{Backend, ComputeBackendKind, MpSvmModel};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Opts {
    model_path: String,
    host: String,
    port: u16,
    backend: Backend,
    compute: ComputeBackendKind,
    threads: Option<usize>,
    cfg: ServeConfig,
}

fn parse_opts<I: Iterator<Item = String>>(mut args: I) -> Result<Opts, String> {
    let mut model_path = None;
    let mut host = "127.0.0.1".to_string();
    let mut port = 7878u16;
    let mut backend = Backend::gmp_default();
    let mut compute = ComputeBackendKind::from_env();
    let mut threads = None;
    let mut cfg = ServeConfig::default();

    fn value<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, String> {
        let v = v.ok_or_else(|| format!("{flag} requires a value"))?;
        v.parse().map_err(|_| format!("bad value '{v}' for {flag}"))
    }

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--host" => host = value("--host", args.next())?,
            "--port" => port = value("--port", args.next())?,
            "--backend" => {
                let name: String = value("--backend", args.next())?;
                backend = gmp_cli_parse_backend(&name)?;
            }
            "--compute-backend" => {
                let name: String = value("--compute-backend", args.next())?;
                compute = ComputeBackendKind::parse(&name).ok_or_else(|| {
                    format!("unknown compute backend '{name}' (scalar | blocked)")
                })?;
            }
            "--threads" => threads = Some(value("--threads", args.next())?),
            "--max-batch" => cfg.max_batch = value("--max-batch", args.next())?,
            "--max-delay-us" => {
                cfg.max_delay = Duration::from_micros(value("--max-delay-us", args.next())?)
            }
            "--queue" => cfg.queue_cap = value("--queue", args.next())?,
            "--workers" => cfg.workers = value("--workers", args.next())?,
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms", args.next())?;
                cfg.default_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            _ => {
                if model_path.replace(arg).is_some() {
                    return Err("exactly one MODEL_FILE expected".to_string());
                }
            }
        }
    }
    if cfg.max_batch == 0 || cfg.queue_cap == 0 || cfg.workers == 0 {
        return Err("--max-batch, --queue and --workers must be >= 1".to_string());
    }
    Ok(Opts {
        model_path: model_path.ok_or("need MODEL_FILE")?,
        host,
        port,
        backend,
        compute,
        threads,
        cfg,
    })
}

// A local copy of the CLI backend table (the cli crate also exposes one,
// but serve must not depend on the offline tools).
fn gmp_cli_parse_backend(name: &str) -> Result<Backend, String> {
    Ok(match name {
        "libsvm" => Backend::libsvm(),
        "libsvm-omp" => Backend::libsvm_openmp(),
        "gpu-baseline" => Backend::gpu_baseline_default(),
        "cmp" => Backend::cmp_svm(),
        "gmp" => Backend::gmp_default(),
        "gmp-v100" => Backend::Gmp {
            device: gmp_svm::DeviceConfig::tesla_v100(),
            max_concurrent: 0,
        },
        other => {
            return Err(format!(
            "unknown backend '{other}' (libsvm | libsvm-omp | gpu-baseline | cmp | gmp | gmp-v100)"
        ))
        }
    })
}

fn main() -> ExitCode {
    let opts = match parse_opts(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gmp-serve: {e}");
            eprintln!("usage: gmp-serve [options] MODEL_FILE (see --help in the crate docs)");
            return ExitCode::FAILURE;
        }
    };

    let model_text = match std::fs::read_to_string(&opts.model_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gmp-serve: cannot read {}: {e}", opts.model_path);
            return ExitCode::FAILURE;
        }
    };
    let model = match MpSvmModel::from_text(&model_text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("gmp-serve: {}: {e}", opts.model_path);
            return ExitCode::FAILURE;
        }
    };
    let engine = match PredictorEngine::with_compute_backend(
        model,
        opts.backend.clone(),
        opts.threads,
        opts.compute,
    ) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("gmp-serve: model rejected: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "gmp-serve: model loaded ({} classes, dim {}, {} SVs, probability={}) on {}",
        engine.classes(),
        engine.dim(),
        engine.model().n_sv(),
        engine.has_probability(),
        opts.backend.label(),
    );

    let listener = match TcpListener::bind((opts.host.as_str(), opts.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("gmp-serve: cannot bind {}:{}: {e}", opts.host, opts.port);
            return ExitCode::FAILURE;
        }
    };
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    // Announced on stdout (and flushed) so callers using --port 0 can read
    // the actual port.
    println!("gmp-serve listening on {local}");
    let _ = std::io::stdout().flush();

    let server = match Server::start(engine, opts.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gmp-serve: cannot start serving threads: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stop = Arc::new(AtomicBool::new(false));

    let mut conn_threads = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        match stream {
            Ok(s) => {
                let handle = server.handle();
                let stop = Arc::clone(&stop);
                let addr = local;
                conn_threads.push(std::thread::spawn(move || {
                    if serve_connection(s, &handle, &stop) {
                        // SHUTDOWN received: wake the accept loop, which
                        // blocks until one more connection arrives.
                        let _ = TcpStream::connect(addr);
                    }
                }));
            }
            Err(e) => {
                eprintln!("gmp-serve: accept failed: {e}");
            }
        }
    }
    for t in conn_threads {
        let _ = t.join();
    }
    let report = server.shutdown();
    eprintln!("gmp-serve: final stats {}", proto::format_stats(&report));
    ExitCode::SUCCESS
}

/// Handle one client connection; returns true when the client requested a
/// whole-server shutdown.
fn serve_connection(stream: TcpStream, handle: &ServeHandle, stop: &AtomicBool) -> bool {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("gmp-serve: [{peer}] cannot clone stream: {e}");
            return false;
        }
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client hung up mid-line
        };
        let reply = match proto::parse_line(&line) {
            Ok(RequestLine::Empty) => continue,
            Ok(RequestLine::Quit) => break,
            Ok(RequestLine::Shutdown) => {
                stop.store(true, Ordering::Release);
                let _ = writeln!(writer, "OK shutting down");
                return true;
            }
            Ok(RequestLine::Stats) => proto::format_stats(&handle.metrics()),
            Ok(RequestLine::Predict(features)) => match handle.submit(features) {
                Ok(p) => proto::format_prediction(&p),
                Err(e) => proto::format_error(&e),
            },
            Err(e) => proto::format_error(&e),
        };
        if writeln!(writer, "{reply}").is_err() {
            break; // client hung up
        }
    }
    false
}
