//! Dynamic micro-batching with bounded queues and explicit backpressure.
//!
//! Topology (all channels bounded):
//!
//! ```text
//! submit() --try_send--> [request queue] --batcher--> [job queue] --workers--> respond
//!    |                        cap = queue_cap             cap = workers
//!    +-- Overloaded when full (admission control)
//! ```
//!
//! The batcher thread pulls the backlog greedily (no waiting) up to
//! `max_batch`, then waits at most `max_delay` for stragglers before
//! flushing a partial batch — so a loaded server runs at full batches and
//! an idle one adds at most `max_delay` latency. The job queue's capacity
//! equals the worker count: when every worker is busy the batcher blocks,
//! the request queue fills behind it, and admission starts rejecting —
//! backpressure propagates to the edge instead of growing an unbounded
//! buffer.
//!
//! Every admitted request gets exactly one terminal outcome (served,
//! expired, failed) — there is no silent-drop path, and
//! [`gmp_svm::ServeReport::is_balanced`] checks the ledger.
//!
//! Shutdown is close-based: [`Server::shutdown`] stops admission and then
//! *closes* the request channel, so concurrent submits fail fast while the
//! batcher keeps draining — its final `recv` errors only once the queue is
//! empty. Admission (`try_send`) and drain (`recv`) agree under one channel
//! lock, making "accepted" and "will get a verdict" the same event.
//!
//! Every primitive here comes from [`gmp_sync`], so the whole lifecycle is
//! model-checked by loom (`tests/loom_batcher.rs`): the ledger balances and
//! no admitted request is stranded under any explored interleaving of
//! submitters, batcher, workers, and shutdown.

use crate::engine::PredictorEngine;
use crate::metrics::ServeMetrics;
use gmp_sparse::CsrBuilder;
use gmp_svm::ServeReport;
use gmp_sync::atomic::{AtomicBool, Ordering};
use gmp_sync::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use gmp_sync::thread::{spawn_named, JoinHandle};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs of the micro-batching loop.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest batch handed to a worker (≥ 1). 1 disables coalescing —
    /// every request is scored alone (the A/B baseline).
    pub max_batch: usize,
    /// How long a non-full batch waits for stragglers before flushing.
    /// Zero flushes as soon as the backlog is drained.
    pub max_delay: Duration,
    /// Request-queue capacity; a full queue rejects with
    /// [`ServeError::Overloaded`].
    pub queue_cap: usize,
    /// Scoring worker threads (≥ 1).
    pub workers: usize,
    /// Deadline applied to [`ServeHandle::submit`] requests
    /// (`None` = no deadline).
    pub default_deadline: Option<Duration>,
    /// Artificial per-batch scoring delay — fault injection for tests and
    /// load shaping for benchmarks (simulates a heavier model). Keep
    /// `Duration::ZERO` in production.
    pub score_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_cap: 1024,
            workers: 2,
            default_deadline: None,
            score_delay: Duration::ZERO,
        }
    }
}

/// Terminal failure of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request queue is full; retry later (admission control).
    Overloaded,
    /// The request sat in the queue past its deadline.
    DeadlineExceeded,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The request itself is malformed for this model.
    BadInput(String),
    /// Scoring failed (backend/model error).
    Predict(String),
    /// The request was dropped without a verdict — only reachable through
    /// a worker panic; the responder's drop guard converts the loss into
    /// an explicit error instead of hanging the caller.
    Canceled,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "server overloaded (queue full)"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded while queued"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::BadInput(m) => write!(f, "bad input: {m}"),
            ServeError::Predict(m) => write!(f, "prediction failed: {m}"),
            ServeError::Canceled => write!(f, "request canceled"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered request.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted class.
    pub label: u32,
    /// Class probabilities (empty when the model has no sigmoids).
    pub probabilities: Vec<f64>,
}

/// Reply slot of one request. The drop guard guarantees the submitting
/// thread is always unblocked: if a responder is destroyed without an
/// explicit verdict (worker panic), the caller gets `Canceled` rather
/// than waiting forever.
struct Responder(Option<Sender<Result<Prediction, ServeError>>>);

impl Responder {
    fn send(mut self, result: Result<Prediction, ServeError>) {
        if let Some(tx) = self.0.take() {
            let _ = tx.send(result);
        }
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if let Some(tx) = self.0.take() {
            let _ = tx.send(Err(ServeError::Canceled));
        }
    }
}

/// One queued request.
struct Request {
    /// Sparse features, strictly increasing 0-based columns (validated at
    /// admission).
    features: Vec<(u32, f64)>,
    enqueued: Instant,
    deadline: Option<Instant>,
    resp: Responder,
}

/// Cloneable client handle: submit requests, read metrics.
#[derive(Clone)]
pub struct ServeHandle {
    tx: Sender<Request>,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    dim: usize,
    default_deadline: Option<Duration>,
}

impl ServeHandle {
    /// Score one instance, blocking until a verdict. Applies the
    /// configured default deadline.
    pub fn submit(&self, features: Vec<(u32, f64)>) -> Result<Prediction, ServeError> {
        self.submit_with_deadline(features, self.default_deadline)
    }

    /// [`ServeHandle::submit`] with an explicit per-request deadline
    /// (measured from admission; `None` = wait as long as it takes).
    pub fn submit_with_deadline(
        &self,
        features: Vec<(u32, f64)>,
        deadline: Option<Duration>,
    ) -> Result<Prediction, ServeError> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        validate_features(&features, self.dim)?;
        let (rtx, rrx) = channel::bounded(1);
        let now = Instant::now();
        let req = Request {
            features,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            resp: Responder(Some(rtx)),
        };
        match self.tx.try_send(req) {
            Ok(()) => self.metrics.note_accepted(self.tx.len()),
            Err(TrySendError::Full(_)) => {
                self.metrics.note_rejected_overload();
                return Err(ServeError::Overloaded);
            }
            Err(TrySendError::Disconnected(_)) => return Err(ServeError::ShuttingDown),
        }
        match rrx.recv() {
            Ok(verdict) => verdict,
            Err(_) => Err(ServeError::Canceled),
        }
    }

    /// Snapshot of the serving counters.
    pub fn metrics(&self) -> ServeReport {
        self.metrics.snapshot()
    }

    /// Feature dimensionality requests must respect.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

fn validate_features(features: &[(u32, f64)], dim: usize) -> Result<(), ServeError> {
    let mut prev: Option<u32> = None;
    for &(c, v) in features {
        if (c as usize) >= dim {
            return Err(ServeError::BadInput(format!(
                "feature index {} exceeds model dimensionality {dim}",
                c as u64 + 1
            )));
        }
        if prev.is_some_and(|p| c <= p) {
            return Err(ServeError::BadInput(
                "feature indices must be strictly increasing".to_string(),
            ));
        }
        if !v.is_finite() {
            return Err(ServeError::BadInput(format!(
                "feature {} has non-finite value {v}",
                c as u64 + 1
            )));
        }
        prev = Some(c);
    }
    Ok(())
}

/// A running serving instance: batcher thread + worker pool around one
/// [`PredictorEngine`].
pub struct Server {
    handle: ServeHandle,
    req_rx: Receiver<Request>,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start serving `engine` with `cfg`. Threads run until
    /// [`Server::shutdown`] (or until the server and every handle are
    /// dropped). Fails only when the OS refuses to spawn a thread; the
    /// already-spawned threads then wind down as the channels drop.
    pub fn start(engine: PredictorEngine, cfg: ServeConfig) -> std::io::Result<Server> {
        let metrics = Arc::new(ServeMetrics::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let engine = Arc::new(engine);
        let dim = engine.dim();
        let max_batch = cfg.max_batch.max(1);
        let workers_n = cfg.workers.max(1);

        let (req_tx, req_rx) = channel::bounded::<Request>(cfg.queue_cap.max(1));
        let (job_tx, job_rx) = channel::bounded::<Vec<Request>>(workers_n);

        let batcher = {
            let rx = req_rx.clone();
            let flag = Arc::clone(&shutdown);
            let max_delay = cfg.max_delay;
            spawn_named("gmp-serve-batcher", move || {
                batcher_loop(&rx, &job_tx, &flag, max_batch, max_delay)
            })?
        };
        let workers = (0..workers_n)
            .map(|i| {
                let rx = job_rx.clone();
                let engine = Arc::clone(&engine);
                let metrics = Arc::clone(&metrics);
                let score_delay = cfg.score_delay;
                spawn_named(&format!("gmp-serve-worker-{i}"), move || {
                    worker_loop(&rx, &engine, &metrics, score_delay)
                })
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        drop(job_rx); // workers hold the only receiver clones

        Ok(Server {
            handle: ServeHandle {
                tx: req_tx,
                shutdown: Arc::clone(&shutdown),
                metrics: Arc::clone(&metrics),
                dim,
                default_deadline: cfg.default_deadline,
            },
            req_rx,
            shutdown,
            metrics,
            batcher: Some(batcher),
            workers,
        })
    }

    /// A new client handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Snapshot of the serving counters.
    pub fn metrics(&self) -> ServeReport {
        self.metrics.snapshot()
    }

    /// Graceful shutdown: stop admitting, **serve** everything already
    /// queued, join all threads, and return the final counters.
    ///
    /// Closing the request channel is what makes the drain promise hold:
    /// concurrent `try_send`s fail with `Disconnected` (reported as
    /// [`ServeError::ShuttingDown`], never counted as accepted), while
    /// every request admitted before the close stays queued and the
    /// batcher's final `recv` cannot error until it has drained them all.
    pub fn shutdown(mut self) -> ServeReport {
        self.shutdown.store(true, Ordering::Release);
        self.req_rx.close();
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        gmp_sync::audit!({
            assert!(
                self.req_rx.is_empty(),
                "batcher exited with admitted requests still queued"
            );
        });
        self.metrics.snapshot()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Stop admitting and close the queue so both thread pools wind
        // down promptly even when `shutdown` was never called.
        self.shutdown.store(true, Ordering::Release);
        self.req_rx.close();
    }
}

fn batcher_loop(
    rx: &Receiver<Request>,
    job_tx: &Sender<Vec<Request>>,
    shutdown: &AtomicBool,
    max_batch: usize,
    max_delay: Duration,
) {
    loop {
        // Block until work arrives. `recv` errors only once the channel is
        // closed (or every handle is gone) **and** the queue is drained, so
        // returning here cannot strand an admitted request.
        let Ok(first) = rx.recv() else { return };
        let mut batch = Vec::with_capacity(max_batch);
        batch.push(first);
        while batch.len() < max_batch {
            // Drain the backlog greedily — coalescing queued work never
            // waits.
            match rx.try_recv() {
                Ok(r) => {
                    batch.push(r);
                    continue;
                }
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => {}
            }
            // Idle queue: wait out the flush window for stragglers (but
            // not during shutdown — drain as fast as possible).
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            let flush_at = batch[0].enqueued + max_delay;
            let now = Instant::now();
            if now >= flush_at {
                break;
            }
            match rx.recv_timeout(flush_at - now) {
                Ok(r) => batch.push(r),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if job_tx.send(batch).is_err() {
            return; // all workers gone (can only happen on panic)
        }
    }
}

fn worker_loop(
    rx: &Receiver<Vec<Request>>,
    engine: &PredictorEngine,
    metrics: &ServeMetrics,
    score_delay: Duration,
) {
    while let Ok(batch) = rx.recv() {
        if !score_delay.is_zero() {
            std::thread::sleep(score_delay);
        }
        score_batch(batch, engine, metrics);
    }
}

fn score_batch(batch: Vec<Request>, engine: &PredictorEngine, metrics: &ServeMetrics) {
    // Deadlines are checked at dequeue: a request that waited out its
    // budget in the queue fails fast instead of wasting scoring work.
    let now = Instant::now();
    let mut live: Vec<Request> = Vec::with_capacity(batch.len());
    for req in batch {
        if req.deadline.is_some_and(|d| now > d) {
            metrics.note_expired();
            req.resp.send(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(req);
        }
    }
    if live.is_empty() {
        return;
    }
    let mut b = CsrBuilder::new(engine.dim().max(1));
    for req in &live {
        b.start_row();
        for &(c, v) in &req.features {
            b.push(c, v);
        }
    }
    let x = b.finish();
    match engine.predict_batch(&x) {
        Ok(out) => {
            metrics.note_batch(live.len(), out.report.sim_s);
            let done = Instant::now();
            for (i, req) in live.into_iter().enumerate() {
                metrics.note_served(done.duration_since(req.enqueued));
                let probabilities = out.probabilities.get(i).cloned().unwrap_or_default();
                req.resp.send(Ok(Prediction {
                    label: out.labels[i],
                    probabilities,
                }));
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for req in live {
                metrics.note_failed();
                req.resp.send(Err(ServeError::Predict(msg.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_features() {
        assert!(validate_features(&[(0, 1.0), (3, 2.0)], 4).is_ok());
        assert!(matches!(
            validate_features(&[(4, 1.0)], 4),
            Err(ServeError::BadInput(_))
        ));
        assert!(matches!(
            validate_features(&[(2, 1.0), (2, 2.0)], 4),
            Err(ServeError::BadInput(_))
        ));
        assert!(matches!(
            validate_features(&[(1, 1.0), (0, 2.0)], 4),
            Err(ServeError::BadInput(_))
        ));
        assert!(matches!(
            validate_features(&[(0, f64::NAN)], 4),
            Err(ServeError::BadInput(_))
        ));
        assert!(validate_features(&[], 4).is_ok());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            ServeError::Overloaded.to_string(),
            "server overloaded (queue full)"
        );
        assert!(ServeError::BadInput("x".into()).to_string().contains("x"));
    }
}
