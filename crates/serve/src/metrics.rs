//! Live serving counters, snapshotted into [`gmp_svm::ServeReport`].
//!
//! Counters are atomics so the submit path stays lock-free; only the
//! latency / batch-size histograms take a (short) lock, and only workers
//! and finished requests touch those.

use gmp_svm::{LatencyHistogram, ServeReport};
use gmp_sync::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Histogram state behind the single metrics lock.
#[derive(Default)]
struct Hists {
    latency: LatencyHistogram,
    /// `batch_sizes[i]` counts batches of size `i+1`.
    batch_sizes: Vec<u64>,
    /// Simulated device-seconds consumed by scoring calls.
    scoring_sim_s: f64,
}

/// Shared recorder for one [`crate::Server`].
pub struct ServeMetrics {
    started: Instant,
    accepted: AtomicU64,
    served: AtomicU64,
    rejected_overload: AtomicU64,
    expired_deadline: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_rows: AtomicU64,
    peak_queue_depth: AtomicUsize,
    hists: Mutex<Hists>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh recorder; uptime counts from now.
    pub fn new() -> Self {
        ServeMetrics {
            started: Instant::now(),
            accepted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            expired_deadline: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_rows: AtomicU64::new(0),
            peak_queue_depth: AtomicUsize::new(0),
            hists: Mutex::new(Hists::default()),
        }
    }

    /// A request made it into the queue; `depth` is the queue depth right
    /// after admission (tracked as a high-water mark).
    pub fn note_accepted(&self, depth: usize) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// A request bounced off the full queue.
    pub fn note_rejected_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request missed its deadline before scoring.
    pub fn note_expired(&self) {
        self.expired_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request failed in scoring (or was flushed at shutdown).
    pub fn note_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request was answered; `latency` is enqueue → response.
    pub fn note_served(&self, latency: Duration) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.hists.lock().latency.record(latency);
    }

    /// One batch of `size` live rows was scored, costing `sim_s` seconds
    /// on the simulated device.
    pub fn note_batch(&self, size: usize, sim_s: f64) {
        if size == 0 {
            return;
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_rows.fetch_add(size as u64, Ordering::Relaxed);
        let mut h = self.hists.lock();
        if h.batch_sizes.len() < size {
            h.batch_sizes.resize(size, 0);
        }
        h.batch_sizes[size - 1] += 1;
        if sim_s.is_finite() && sim_s > 0.0 {
            h.scoring_sim_s += sim_s;
        }
    }

    /// Consistent snapshot of everything recorded so far.
    pub fn snapshot(&self) -> ServeReport {
        let h = self.hists.lock();
        ServeReport {
            accepted: self.accepted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            expired_deadline: self.expired_deadline.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_rows: self.batched_rows.load(Ordering::Relaxed),
            batch_size_hist: h.batch_sizes.clone(),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            latency: h.latency.clone(),
            uptime_s: self.started.elapsed().as_secs_f64(),
            scoring_sim_s: h.scoring_sim_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_notes() {
        let m = ServeMetrics::new();
        m.note_accepted(3);
        m.note_accepted(9);
        m.note_accepted(5);
        m.note_accepted(1);
        m.note_rejected_overload();
        m.note_served(Duration::from_micros(150));
        m.note_served(Duration::from_micros(90));
        m.note_expired();
        m.note_batch(2, 0.001);
        m.note_batch(2, 0.001);
        m.note_batch(5, 0.002);
        m.note_failed();
        let s = m.snapshot();
        assert_eq!(s.accepted, 4);
        assert_eq!(s.served, 2);
        assert_eq!(s.rejected_overload, 1);
        assert_eq!(s.expired_deadline, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.peak_queue_depth, 9);
        assert_eq!(s.batches, 3);
        assert_eq!(s.batched_rows, 9);
        assert_eq!(s.batch_size_hist, vec![0, 2, 0, 0, 1]);
        assert!((s.mean_batch_size() - 3.0).abs() < 1e-12);
        assert!((s.scoring_sim_s - 0.004).abs() < 1e-12);
        assert!((s.sim_throughput_rps() - 9.0 / 0.004).abs() < 1e-6);
        assert_eq!(s.latency.count(), 2);
        assert!(s.is_balanced());
        assert!(s.uptime_s >= 0.0);
    }

    #[test]
    fn zero_size_batches_are_ignored() {
        let m = ServeMetrics::new();
        m.note_batch(0, 1.0);
        assert_eq!(m.snapshot().batches, 0);
    }
}
