//! Shared argument parsing for the `gmp-train` / `gmp-predict` binaries.
//!
//! The flags mirror LibSVM's `svm-train` where they overlap (`-c`, `-g`,
//! `-t`, `-b`, `-e`) and add backend selection (`--backend`) plus the
//! GMP-SVM buffer knobs (`--ws`, `--q`).

use gmp_gpusim::DeviceConfig;
use gmp_svm::{Backend, ComputeBackendKind, KernelKind, SvmParams};

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct CommonOpts {
    /// Solver/probability parameters.
    pub params: SvmParams,
    /// Execution backend.
    pub backend: Backend,
    /// Per-class penalty multipliers (`--weight CLASS VALUE`, repeatable;
    /// like LibSVM's `-wi`). Indexed by class id, default 1.
    pub class_weights: Vec<f64>,
    /// Positional arguments (input paths etc.).
    pub positional: Vec<String>,
}

/// Argument parse failure with a usage hint.
#[derive(Debug, Clone)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, ArgError> {
    let v = value.ok_or_else(|| ArgError(format!("{flag} requires a value")))?;
    v.parse()
        .map_err(|_| ArgError(format!("bad value '{v}' for {flag}")))
}

/// Parse a backend name: `libsvm`, `libsvm-omp`, `gpu-baseline`, `cmp`,
/// `gmp` (default), `gmp-v100`.
pub fn parse_backend(name: &str) -> Result<Backend, ArgError> {
    Ok(match name {
        "libsvm" => Backend::libsvm(),
        "libsvm-omp" => Backend::libsvm_openmp(),
        "gpu-baseline" => Backend::gpu_baseline_default(),
        "cmp" => Backend::cmp_svm(),
        "gmp" => Backend::gmp_default(),
        "gmp-v100" => Backend::Gmp {
            device: DeviceConfig::tesla_v100(),
            max_concurrent: 0,
        },
        other => {
            return Err(ArgError(format!(
            "unknown backend '{other}' (libsvm | libsvm-omp | gpu-baseline | cmp | gmp | gmp-v100)"
        )))
        }
    })
}

/// Parse an argv-style iterator into options.
pub fn parse_args<I: Iterator<Item = String>>(args: I) -> Result<CommonOpts, ArgError> {
    let mut params = SvmParams::default();
    let mut backend = Backend::gmp_default();
    let mut class_weights: Vec<f64> = Vec::new();
    let mut positional = Vec::new();
    let mut kernel_t = 2u32; // LibSVM numbering: 2 = RBF
    let mut gamma = None::<f64>;
    let mut coef0 = 0.0f64;
    let mut degree = 3u32;

    let mut it = args.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-c" => params.c = parse_value("-c", it.next())?,
            "-g" => gamma = Some(parse_value("-g", it.next())?),
            "-e" => params.eps = parse_value("-e", it.next())?,
            "-t" => kernel_t = parse_value("-t", it.next())?,
            "-r" => coef0 = parse_value("-r", it.next())?,
            "-d" => degree = parse_value("-d", it.next())?,
            "-b" => {
                let v: u32 = parse_value("-b", it.next())?;
                params.probability = v != 0;
            }
            "-h" => {
                let v: u32 = parse_value("-h", it.next())?;
                params.shrinking = v != 0;
            }
            "--weight" => {
                let class: usize = parse_value("--weight", it.next())?;
                let w: f64 = parse_value("--weight", it.next())?;
                if w <= 0.0 {
                    return Err(ArgError(format!(
                        "weight for class {class} must be positive"
                    )));
                }
                if class_weights.len() <= class {
                    class_weights.resize(class + 1, 1.0);
                }
                class_weights[class] = w;
            }
            "--ws" => params.ws_size = parse_value("--ws", it.next())?,
            "--q" => params.q = parse_value("--q", it.next())?,
            "--backend" => {
                let name: String = parse_value("--backend", it.next())?;
                backend = parse_backend(&name)?;
            }
            "--compute-backend" => {
                let name: String = parse_value("--compute-backend", it.next())?;
                params.compute_backend = ComputeBackendKind::parse(&name).ok_or_else(|| {
                    ArgError(format!(
                        "unknown compute backend '{name}' (scalar | blocked)"
                    ))
                })?;
            }
            flag if flag.starts_with('-')
                && flag.chars().nth(1).is_some_and(|c| !c.is_ascii_digit()) =>
            {
                return Err(ArgError(format!("unknown flag '{flag}'")));
            }
            _ => positional.push(arg),
        }
    }
    let g = gamma.unwrap_or(0.5);
    params.kernel = match kernel_t {
        0 => KernelKind::Linear,
        1 => KernelKind::Poly {
            gamma: g,
            coef0,
            degree,
        },
        2 => KernelKind::Rbf { gamma: g },
        3 => KernelKind::Sigmoid { gamma: g, coef0 },
        other => return Err(ArgError(format!("unknown kernel type {other} (-t 0..3)"))),
    };
    Ok(CommonOpts {
        params,
        backend,
        class_weights,
        positional,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<CommonOpts, ArgError> {
        parse_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let o = parse("train.txt model.txt").unwrap();
        assert_eq!(o.positional, vec!["train.txt", "model.txt"]);
        assert!(matches!(o.params.kernel, KernelKind::Rbf { gamma } if gamma == 0.5));
        assert_eq!(o.backend.label(), "GMP-SVM");
        assert!(o.params.probability);
    }

    #[test]
    fn libsvm_style_flags() {
        let o = parse("-c 10 -g 0.125 -e 0.01 -b 0 data.txt").unwrap();
        assert_eq!(o.params.c, 10.0);
        assert!(matches!(o.params.kernel, KernelKind::Rbf { gamma } if gamma == 0.125));
        assert_eq!(o.params.eps, 0.01);
        assert!(!o.params.probability);
    }

    #[test]
    fn kernel_selection() {
        assert!(matches!(
            parse("-t 0 x").unwrap().params.kernel,
            KernelKind::Linear
        ));
        assert!(matches!(
            parse("-t 1 -g 2 -r 1 -d 4 x").unwrap().params.kernel,
            KernelKind::Poly { gamma, coef0, degree } if gamma == 2.0 && coef0 == 1.0 && degree == 4
        ));
        assert!(matches!(
            parse("-t 3 -g 0.1 x").unwrap().params.kernel,
            KernelKind::Sigmoid { .. }
        ));
        assert!(parse("-t 9 x").is_err());
    }

    #[test]
    fn backend_selection() {
        assert_eq!(
            parse("--backend libsvm x").unwrap().backend.label(),
            "LibSVM w/o OpenMP"
        );
        assert_eq!(
            parse("--backend cmp x").unwrap().backend.label(),
            "CMP-SVM (40t)"
        );
        assert!(parse("--backend warp9 x").is_err());
    }

    #[test]
    fn compute_backend_selection() {
        assert_eq!(
            parse("--compute-backend blocked x")
                .unwrap()
                .params
                .compute_backend,
            ComputeBackendKind::Blocked
        );
        assert_eq!(
            parse("--compute-backend Scalar x")
                .unwrap()
                .params
                .compute_backend,
            ComputeBackendKind::Scalar
        );
        assert!(parse("--compute-backend simd x").is_err());
    }

    #[test]
    fn shrinking_flag() {
        assert!(parse("-h 1 x").unwrap().params.shrinking);
        assert!(!parse("-h 0 x").unwrap().params.shrinking);
        assert!(!parse("x").unwrap().params.shrinking);
    }

    #[test]
    fn class_weight_flag() {
        let o = parse("--weight 2 5.0 --weight 0 0.5 x").unwrap();
        assert_eq!(o.class_weights, vec![0.5, 1.0, 5.0]);
        assert!(parse("--weight 1 -3 x").is_err());
        assert!(parse("x").unwrap().class_weights.is_empty());
    }

    #[test]
    fn buffer_knobs() {
        let o = parse("--ws 256 --q 128 x").unwrap();
        assert_eq!(o.params.ws_size, 256);
        assert_eq!(o.params.q, 128);
    }

    #[test]
    fn negative_numbers_are_not_flags() {
        // Tokens like "-5" (leading digit) are positionals, not flags.
        let o = parse("-c 1 -5.txt").unwrap();
        assert_eq!(o.positional, vec!["-5.txt"]);
        let o = parse("-c 1 data-5.txt").unwrap();
        assert_eq!(o.positional, vec!["data-5.txt"]);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse("--frobnicate x").is_err());
        assert!(parse("-z x").is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse("-c").is_err());
    }
}
