//! `gmp-train` — train an MP-SVM model from a LibSVM-format file.
//!
//! ```text
//! gmp-train [options] TRAIN_FILE [MODEL_FILE]
//!   -c COST        penalty parameter C (default 1)
//!   -g GAMMA       kernel gamma (default 0.5)
//!   -t TYPE        kernel: 0=linear 1=poly 2=rbf 3=sigmoid (default 2)
//!   -r COEF0 -d DEGREE    poly/sigmoid extras
//!   -e EPS         SMO tolerance (default 1e-3)
//!   -b 0|1         probability output (default 1)
//!   --ws N --q N   GMP buffer size / new violators per round
//!   --weight CLASS VALUE   per-class penalty multiplier (like -wi)
//!   --backend B    libsvm | libsvm-omp | gpu-baseline | cmp | gmp | gmp-v100
//!   --compute-backend B    numeric backend: scalar | blocked
//!                  (default: GMP_BACKEND env var, else scalar)
//! ```

use gmp_cli::parse_args;
use gmp_svm::MpSvmTrainer;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gmp-train: {e}");
            eprintln!("usage: gmp-train [options] TRAIN_FILE [MODEL_FILE]");
            return ExitCode::FAILURE;
        }
    };
    let Some(train_path) = opts.positional.first() else {
        eprintln!("gmp-train: missing TRAIN_FILE");
        return ExitCode::FAILURE;
    };
    let model_path = opts
        .positional
        .get(1)
        .cloned()
        .unwrap_or_else(|| format!("{train_path}.model"));

    let text = match std::fs::read_to_string(train_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gmp-train: cannot read {train_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let data = match gmp_datasets::parse_libsvm(&text, 0) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gmp-train: {train_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "read {} instances, {} features, {} classes",
        data.n(),
        data.dim(),
        data.n_classes()
    );

    let trainer =
        MpSvmTrainer::new(opts.params, opts.backend).with_class_weights(opts.class_weights.clone());
    let outcome = match trainer.train(&data) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gmp-train: training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[{}] trained {} binary SVMs, {} shared SVs, {} SMO iterations",
        outcome.report.backend,
        outcome.model.binaries.len(),
        outcome.model.n_sv(),
        outcome.report.total_iterations(),
    );
    eprintln!(
        "wall {:.3} s | simulated {:.3} s | kernel evals {}",
        outcome.report.wall_s, outcome.report.sim_s, outcome.report.kernel_evals
    );
    if !outcome.report.all_converged() {
        eprintln!("warning: some binary problems hit the iteration cap");
    }
    if let Err(e) = std::fs::write(&model_path, outcome.model.to_text()) {
        eprintln!("gmp-train: cannot write {model_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("model written to {model_path}");
    ExitCode::SUCCESS
}
