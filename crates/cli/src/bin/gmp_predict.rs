//! `gmp-predict` — score a LibSVM-format file with a trained model.
//!
//! ```text
//! gmp-predict [options] TEST_FILE MODEL_FILE [OUTPUT_FILE]
//!   --backend B    execution backend (default gmp)
//! ```
//!
//! Output: one line per instance — the predicted class followed by the
//! class probabilities (when the model carries sigmoids), mirroring
//! `svm-predict -b 1`. Accuracy is printed to stderr when the test file
//! has labels.

use gmp_cli::parse_args;
use gmp_svm::predict::error_rate;
use gmp_svm::MpSvmModel;
use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gmp-predict: {e}");
            eprintln!("usage: gmp-predict [options] TEST_FILE MODEL_FILE [OUTPUT_FILE]");
            return ExitCode::FAILURE;
        }
    };
    let (Some(test_path), Some(model_path)) = (opts.positional.first(), opts.positional.get(1))
    else {
        eprintln!("gmp-predict: need TEST_FILE and MODEL_FILE");
        return ExitCode::FAILURE;
    };

    let model_text = match std::fs::read_to_string(model_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gmp-predict: cannot read {model_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = match MpSvmModel::from_text(&model_text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("gmp-predict: {model_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let test_text = match std::fs::read_to_string(test_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gmp-predict: cannot read {test_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let data = match gmp_datasets::parse_libsvm(&test_text, model.sv_pool.ncols()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gmp-predict: {test_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let pred = match model.predict(&data.x, &opts.backend) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("gmp-predict: prediction failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[{}] {} instances scored in {:.4} s wall / {:.4} s simulated ({} kernel evals, {:.0}% SV-sharing saving)",
        pred.report.backend,
        data.n(),
        pred.report.wall_s,
        pred.report.sim_s,
        pred.report.kernel_evals,
        100.0 * pred.report.sharing_saving(),
    );

    let mut out = String::new();
    for (i, &label) in pred.labels.iter().enumerate() {
        let _ = write!(out, "{label}");
        if let Some(p) = pred.probabilities.get(i) {
            for v in p {
                let _ = write!(out, " {v:.6}");
            }
        }
        out.push('\n');
    }
    match opts.positional.get(2) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, out) {
                eprintln!("gmp-predict: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("predictions written to {path}");
        }
        None => print!("{out}"),
    }

    // The parser densifies labels, so accuracy is only meaningful when the
    // file's labels already match the model's class ids.
    let acc = 1.0 - error_rate(&pred.labels, &data.y);
    eprintln!("accuracy against file labels: {:.2}%", 100.0 * acc);
    ExitCode::SUCCESS
}
