//! `gmp-predict` — score a LibSVM-format file with a trained model.
//!
//! ```text
//! gmp-predict [options] TEST_FILE MODEL_FILE [OUTPUT_FILE]
//!   --backend B    execution backend (default gmp)
//!   --compute-backend B    numeric backend: scalar | blocked
//!                  (default: GMP_BACKEND env var, else scalar)
//! ```
//!
//! Output: one line per instance — the predicted class followed by the
//! class probabilities (when the model carries sigmoids), mirroring
//! `svm-predict -b 1`. Accuracy is printed to stderr when the test file
//! has labels.

use gmp_cli::parse_args;
use gmp_datasets::{Dataset, LibsvmStreamParser};
use gmp_svm::predict::error_rate;
use gmp_svm::MpSvmModel;
use std::fmt::Write as _;
use std::io::BufRead;
use std::process::ExitCode;

/// Stream the test file through the incremental LibSVM parser instead of
/// slurping it into one string — large test sets never hold text + matrix
/// in memory at once, and parse errors point at the offending line.
fn load_test_file(path: &str, min_dim: usize) -> Result<Dataset, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut parser = LibsvmStreamParser::new();
    let mut line = String::new();
    let mut reader = std::io::BufReader::new(file);
    loop {
        line.clear();
        let read = reader.read_line(&mut line).map_err(|e| {
            format!(
                "{path}: read failed after line {}: {e}",
                parser.lines_seen()
            )
        })?;
        if read == 0 {
            break;
        }
        parser
            .push_line(line.trim_end_matches(['\n', '\r']))
            .map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(parser.finish(min_dim))
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gmp-predict: {e}");
            eprintln!("usage: gmp-predict [options] TEST_FILE MODEL_FILE [OUTPUT_FILE]");
            return ExitCode::FAILURE;
        }
    };
    let (Some(test_path), Some(model_path)) = (opts.positional.first(), opts.positional.get(1))
    else {
        eprintln!("gmp-predict: need TEST_FILE and MODEL_FILE");
        return ExitCode::FAILURE;
    };

    let model_text = match std::fs::read_to_string(model_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gmp-predict: cannot read {model_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = match MpSvmModel::from_text(&model_text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("gmp-predict: {model_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let data = match load_test_file(test_path, model.sv_pool.ncols()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gmp-predict: {e}");
            return ExitCode::FAILURE;
        }
    };

    let pred = match model.predict_with_compute_backend(
        &data.x,
        &opts.backend,
        opts.params.compute_backend,
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("gmp-predict: prediction failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[{}] {} instances scored in {:.4} s wall / {:.4} s simulated ({} kernel evals, {:.0}% SV-sharing saving)",
        pred.report.backend,
        data.n(),
        pred.report.wall_s,
        pred.report.sim_s,
        pred.report.kernel_evals,
        100.0 * pred.report.sharing_saving(),
    );

    let mut out = String::new();
    for (i, &label) in pred.labels.iter().enumerate() {
        let _ = write!(out, "{label}");
        if let Some(p) = pred.probabilities.get(i) {
            for v in p {
                let _ = write!(out, " {v:.6}");
            }
        }
        out.push('\n');
    }
    match opts.positional.get(2) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, out) {
                eprintln!("gmp-predict: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("predictions written to {path}");
        }
        None => print!("{out}"),
    }

    // The parser densifies labels, so accuracy is only meaningful when the
    // file's labels already match the model's class ids.
    let acc = 1.0 - error_rate(&pred.labels, &data.y);
    eprintln!("accuracy against file labels: {:.2}%", 100.0 * acc);
    ExitCode::SUCCESS
}
