//! Property-based tests for the probability machinery.

use gmp_prob::{couple_gaussian, couple_iterative, sigmoid_predict, sigmoid_train, PairwiseProbs};
use proptest::prelude::*;

/// Random pairwise probability matrix for k classes.
fn pairwise(k: usize) -> impl Strategy<Value = PairwiseProbs> {
    proptest::collection::vec(0.02..0.98f64, k * (k - 1) / 2).prop_map(move |vals| {
        let mut r = PairwiseProbs::new(k);
        let mut it = vals.into_iter();
        for s in 0..k {
            for t in s + 1..k {
                r.set(s, t, it.next().expect("enough values"));
            }
        }
        r
    })
}

fn coupling_objective(r: &PairwiseProbs, p: &[f64]) -> f64 {
    let k = r.k();
    let mut o = 0.0;
    for s in 0..k {
        for t in 0..k {
            if s != t {
                let d = r.get(t, s) * p[s] - r.get(s, t) * p[t];
                o += d * d;
            }
        }
    }
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coupling_returns_distribution(r in pairwise(4)) {
        let p = couple_gaussian(&r);
        prop_assert_eq!(p.len(), 4);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)), "{:?}", p);
    }

    #[test]
    fn gaussian_agrees_with_iterative(r in pairwise(3)) {
        let a = couple_gaussian(&r);
        let b = couple_iterative(&r);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 0.02, "{:?} vs {:?}", a, b);
        }
    }

    #[test]
    fn coupling_is_constrained_optimum(r in pairwise(3)) {
        // No feasible perturbation improves the objective.
        let p = couple_gaussian(&r);
        let base = coupling_objective(&r, &p);
        let eps = 1e-5;
        for i in 0..3 {
            for j in 0..3 {
                if i == j || p[j] < eps {
                    continue;
                }
                let mut q = p.clone();
                q[i] += eps;
                q[j] -= eps;
                prop_assert!(
                    coupling_objective(&r, &q) >= base - 1e-10,
                    "perturbation improved objective"
                );
            }
        }
    }

    #[test]
    fn coupling_permutation_equivariant(r in pairwise(3)) {
        // Swapping classes 0 and 1 permutes the output.
        let p = couple_gaussian(&r);
        let mut swapped = PairwiseProbs::new(3);
        // Mapping sigma: 0->1, 1->0, 2->2. r'(sigma(s), sigma(t)) = r(s, t).
        swapped.set(1, 0, r.get(0, 1));
        swapped.set(1, 2, r.get(0, 2));
        swapped.set(0, 2, r.get(1, 2));
        let q = couple_gaussian(&swapped);
        prop_assert!((p[0] - q[1]).abs() < 1e-9);
        prop_assert!((p[1] - q[0]).abs() < 1e-9);
        prop_assert!((p[2] - q[2]).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_outputs_probabilities(
        dec in proptest::collection::vec(-4.0..4.0f64, 10..60),
        labels in proptest::collection::vec(proptest::bool::ANY, 60),
    ) {
        let n = dec.len();
        let mut y: Vec<f64> = labels[..n].iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        y[0] = 1.0;
        y[n - 1] = -1.0;
        let params = sigmoid_train(&dec, &y);
        prop_assert!(params.a.is_finite() && params.b.is_finite());
        for &v in &dec {
            let p = sigmoid_predict(v, &params);
            prop_assert!((0.0..=1.0).contains(&p), "p({}) = {}", v, p);
        }
    }

    #[test]
    fn sigmoid_fit_is_deterministic(
        dec in proptest::collection::vec(-3.0..3.0f64, 12..30),
    ) {
        let y: Vec<f64> = dec.iter().enumerate()
            .map(|(i, _)| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let a = sigmoid_train(&dec, &y);
        let b = sigmoid_train(&dec, &y);
        prop_assert_eq!(a.a.to_bits(), b.a.to_bits());
        prop_assert_eq!(a.b.to_bits(), b.b.to_bits());
    }

    #[test]
    fn sigmoid_monotone_when_classes_ordered(shift in 0.5..3.0f64) {
        // Positives strictly above negatives: fitted A < 0 and predictions
        // monotone increasing in the decision value.
        let mut dec = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            dec.push(shift + i as f64 * 0.05);
            y.push(1.0);
            dec.push(-shift - i as f64 * 0.05);
            y.push(-1.0);
        }
        let p = sigmoid_train(&dec, &y);
        prop_assert!(p.a < 0.0, "A = {}", p.a);
        let lo = sigmoid_predict(-1.0, &p);
        let hi = sigmoid_predict(1.0, &p);
        prop_assert!(hi > lo);
    }
}
