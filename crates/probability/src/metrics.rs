//! Probability-quality metrics: how good are the calibrated outputs?
//!
//! The paper argues MP-SVMs matter because downstream applications consume
//! the *probabilities* (medical retrieval, open-set recognition). These
//! metrics quantify that: negative log-likelihood, Brier score, and
//! expected calibration error over confidence bins.

use serde::{Deserialize, Serialize};

/// Floor applied inside logs to keep the loss finite.
const P_FLOOR: f64 = 1e-15;

/// Mean negative log-likelihood of the true class:
/// `-(1/n) Σ log p_i[y_i]`. Lower is better; `ln(k)` is the uniform
/// baseline.
pub fn log_loss(probabilities: &[Vec<f64>], labels: &[u32]) -> f64 {
    assert_eq!(probabilities.len(), labels.len(), "length mismatch");
    if probabilities.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for (p, &y) in probabilities.iter().zip(labels) {
        let py = p
            .get(y as usize)
            .copied()
            // gmp:allow-panic — documented precondition: labels index into the probability vectors
            .expect("label out of range for probability vector");
        acc -= py.max(P_FLOOR).ln();
    }
    acc / probabilities.len() as f64
}

/// Multi-class Brier score: `(1/n) Σ_i Σ_c (p_i[c] - 1{y_i = c})²`.
/// Lower is better; `(k-1)/k · 2/k`-ish for uniform predictions.
pub fn brier_score(probabilities: &[Vec<f64>], labels: &[u32]) -> f64 {
    assert_eq!(probabilities.len(), labels.len(), "length mismatch");
    if probabilities.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for (p, &y) in probabilities.iter().zip(labels) {
        for (c, &pc) in p.iter().enumerate() {
            let target = if c == y as usize { 1.0 } else { 0.0 };
            acc += (pc - target) * (pc - target);
        }
    }
    acc / probabilities.len() as f64
}

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationBin {
    /// Bin lower edge (confidence).
    pub lo: f64,
    /// Bin upper edge.
    pub hi: f64,
    /// Instances whose top-class confidence fell in the bin.
    pub count: usize,
    /// Mean confidence in the bin.
    pub mean_confidence: f64,
    /// Fraction of those instances whose top class was correct.
    pub accuracy: f64,
}

/// Reliability diagram plus expected calibration error (ECE) over equal
/// width confidence bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The bins in ascending confidence order.
    pub bins: Vec<CalibrationBin>,
    /// `Σ (count/n) · |accuracy - mean_confidence|`.
    pub ece: f64,
}

/// Compute the reliability diagram of top-class confidence vs accuracy.
pub fn calibration(probabilities: &[Vec<f64>], labels: &[u32], n_bins: usize) -> Calibration {
    assert!(n_bins >= 1, "need at least one bin");
    assert_eq!(probabilities.len(), labels.len(), "length mismatch");
    let mut counts = vec![0usize; n_bins];
    let mut conf_sums = vec![0.0f64; n_bins];
    let mut correct = vec![0usize; n_bins];
    for (p, &y) in probabilities.iter().zip(labels) {
        let (top, conf) =
            p.iter().enumerate().fold(
                (0usize, 0.0f64),
                |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                },
            );
        let bin = ((conf * n_bins as f64) as usize).min(n_bins - 1);
        counts[bin] += 1;
        conf_sums[bin] += conf;
        if top == y as usize {
            correct[bin] += 1;
        }
    }
    let n = probabilities.len().max(1) as f64;
    let mut bins = Vec::with_capacity(n_bins);
    let mut ece = 0.0;
    for b in 0..n_bins {
        let count = counts[b];
        let mean_confidence = if count > 0 {
            conf_sums[b] / count as f64
        } else {
            0.0
        };
        let accuracy = if count > 0 {
            correct[b] as f64 / count as f64
        } else {
            0.0
        };
        if count > 0 {
            ece += (count as f64 / n) * (accuracy - mean_confidence).abs();
        }
        bins.push(CalibrationBin {
            lo: b as f64 / n_bins as f64,
            hi: (b + 1) as f64 / n_bins as f64,
            count,
            mean_confidence,
            accuracy,
        });
    }
    Calibration { bins, ece }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfect() -> (Vec<Vec<f64>>, Vec<u32>) {
        (
            vec![
                vec![1.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0],
            ],
            vec![0, 1, 2],
        )
    }

    #[test]
    fn perfect_predictions_score_zero() {
        let (p, y) = perfect();
        assert!(log_loss(&p, &y) < 1e-10);
        assert!(brier_score(&p, &y) < 1e-12);
        let cal = calibration(&p, &y, 10);
        assert!(cal.ece < 1e-12);
    }

    #[test]
    fn uniform_predictions_baseline() {
        let p = vec![vec![1.0 / 3.0; 3]; 9];
        let y = vec![0, 1, 2, 0, 1, 2, 0, 1, 2];
        let ll = log_loss(&p, &y);
        assert!((ll - 3.0f64.ln()).abs() < 1e-12);
        let bs = brier_score(&p, &y);
        // Σ_c (1/3 - 1{c=y})² = (2/3)² + 2·(1/3)² = 6/9 = 2/3.
        assert!((bs - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confident_wrong_is_punished() {
        let right = vec![vec![0.9, 0.1]];
        let wrong = vec![vec![0.1, 0.9]];
        let y = vec![0u32];
        assert!(log_loss(&wrong, &y) > log_loss(&right, &y));
        assert!(brier_score(&wrong, &y) > brier_score(&right, &y));
    }

    #[test]
    fn zero_probability_is_finite() {
        let p = vec![vec![0.0, 1.0]];
        let y = vec![0u32];
        assert!(log_loss(&p, &y).is_finite());
    }

    #[test]
    fn calibration_detects_overconfidence() {
        // Always 90% confident but only 50% correct.
        let mut p = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            p.push(vec![0.9, 0.1]);
            y.push(if i % 2 == 0 { 0u32 } else { 1u32 });
        }
        let cal = calibration(&p, &y, 10);
        assert!((cal.ece - 0.4).abs() < 1e-9, "ece {}", cal.ece);
        let hot = cal.bins.iter().find(|b| b.count > 0).expect("one bin used");
        assert_eq!(hot.count, 100);
        assert!((hot.mean_confidence - 0.9).abs() < 1e-12);
        assert!((hot.accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bins_partition_unit_interval() {
        let cal = calibration(&[], &[], 5);
        assert_eq!(cal.bins.len(), 5);
        assert_eq!(cal.bins[0].lo, 0.0);
        assert_eq!(cal.bins[4].hi, 1.0);
        for w in cal.bins.windows(2) {
            assert!((w[0].hi - w[1].lo).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(log_loss(&[], &[]), 0.0);
        assert_eq!(brier_score(&[], &[]), 0.0);
        assert_eq!(calibration(&[], &[], 3).ece, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        log_loss(&[vec![1.0]], &[0, 1]);
    }
}
