//! Probability machinery of MP-SVMs (§2.1.2, §2.2 of the paper).
//!
//! * [`platt`] — fit the sigmoid `P(y=1|x) = 1/(1+exp(A·v+B))` to decision
//!   values by maximizing the log-likelihood of Problem (13) with Newton's
//!   method and backtracking line search (the Lin–Lin–Weng algorithm
//!   implemented in LibSVM, which the paper parallelizes in Phase ii).
//! * [`coupling`] — combine the `k(k-1)/2` pairwise probabilities into one
//!   multi-class distribution (Problem 14), solved both in closed form
//!   `p = Q⁻¹e / (eᵀQ⁻¹e)` by Gaussian elimination (Equation 15) and by
//!   LibSVM's fixed-point iteration (Wu, Lin & Weng 2004) as a cross-check.

pub mod coupling;
pub mod metrics;
pub mod platt;

pub use coupling::{couple_gaussian, couple_iterative, PairwiseProbs};
pub use metrics::{brier_score, calibration, log_loss, Calibration, CalibrationBin};
pub use platt::{sigmoid_predict, sigmoid_train, SigmoidParams};
