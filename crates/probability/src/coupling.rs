//! Pairwise coupling: combine binary probabilities into a multi-class
//! distribution (Problem 14, solved per Equation 15 / Wu et al. 2004).

use serde::{Deserialize, Serialize};

/// The `k x k` matrix of pairwise probability estimates:
/// `r[s][t] = P(class s | class s or t, x)` with `r[t][s] = 1 - r[s][t]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairwiseProbs {
    k: usize,
    r: Vec<f64>, // row-major k x k, diagonal unused
}

impl PairwiseProbs {
    /// An empty estimate matrix for `k` classes.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "need at least two classes");
        PairwiseProbs {
            k,
            r: vec![0.0; k * k],
        }
    }

    /// Number of classes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Set `r[s][t] = p` (and `r[t][s] = 1 - p`), clamping into
    /// `[1e-7, 1-1e-7]` as LibSVM does to keep the coupling well posed.
    pub fn set(&mut self, s: usize, t: usize, p: f64) {
        assert!(s != t, "diagonal is undefined");
        let p = p.clamp(1e-7, 1.0 - 1e-7);
        self.r[s * self.k + t] = p;
        self.r[t * self.k + s] = 1.0 - p;
    }

    /// `r[s][t]`.
    #[inline]
    pub fn get(&self, s: usize, t: usize) -> f64 {
        self.r[s * self.k + t]
    }

    /// Build the coupling matrix `Q` of Equation (15):
    /// `Q_ss = Σ_{u≠s} r_us²`, `Q_st = -r_st·r_ts`.
    fn build_q(&self) -> Vec<f64> {
        let k = self.k;
        let mut q = vec![0.0; k * k];
        for s in 0..k {
            let mut diag = 0.0;
            for u in 0..k {
                if u == s {
                    continue;
                }
                let r_us = self.get(u, s);
                diag += r_us * r_us;
                q[s * k + u] = -self.get(s, u) * self.get(u, s);
            }
            q[s * k + s] = diag;
        }
        q
    }
}

/// `debug-invariants` audit: `p` must be a probability simplex point —
/// every coordinate finite and in `[0, 1]`, coordinates summing to 1
/// within `tol`. Compiled out unless the feature is on.
#[allow(unused_variables)]
fn audit_simplex(p: &[f64], tol: f64, who: &str) {
    gmp_sync::audit!({
        for (i, &v) in p.iter().enumerate() {
            assert!(
                v.is_finite() && (0.0..=1.0).contains(&v),
                "{who}: p[{i}] = {v} is outside [0, 1]"
            );
        }
        let sum: f64 = p.iter().sum();
        assert!(
            (sum - 1.0).abs() <= tol,
            "{who}: probabilities sum to {sum}, not 1 (tol {tol})"
        );
    });
}

/// Solve Problem (14) in closed form: `p = Q⁻¹e / (eᵀQ⁻¹e)` via Gaussian
/// elimination with partial pivoting (Equation 15). A small ridge is added
/// when `Q` is numerically singular, as the paper prescribes.
pub fn couple_gaussian(r: &PairwiseProbs) -> Vec<f64> {
    let k = r.k();
    let mut q = r.build_q();
    let mut x = vec![1.0f64; k]; // e
                                 // Try plain elimination; on a vanishing pivot, ridge and retry.
    for ridge in [0.0, 1e-10, 1e-8, 1e-6] {
        let mut a = q.clone();
        if ridge > 0.0 {
            for s in 0..k {
                a[s * k + s] += ridge;
            }
        }
        let mut b = vec![1.0f64; k];
        if gaussian_solve(&mut a, &mut b, k) {
            x = b;
            // Normalize; the optimum of the constrained problem.
            let sum: f64 = x.iter().sum();
            if sum.abs() > 1e-300 {
                let mut p: Vec<f64> = x.iter().map(|v| v / sum).collect();
                // Numerical guard: clamp and renormalize.
                for v in p.iter_mut() {
                    *v = v.max(0.0);
                }
                let s2: f64 = p.iter().sum();
                if s2 > 0.0 {
                    for v in p.iter_mut() {
                        *v /= s2;
                    }
                    audit_simplex(&p, 1e-9, "couple_gaussian");
                    return p;
                }
            }
        }
    }
    // Last resort: uniform (should be unreachable for valid inputs).
    q.clear();
    vec![1.0 / k as f64; k]
}

/// In-place Gaussian elimination with partial pivoting solving `A x = b`.
/// Returns false if a pivot underflows.
fn gaussian_solve(a: &mut [f64], b: &mut [f64], k: usize) -> bool {
    for col in 0..k {
        // Pivot.
        let mut piv = col;
        for row in col + 1..k {
            if a[row * k + col].abs() > a[piv * k + col].abs() {
                piv = row;
            }
        }
        if a[piv * k + col].abs() < 1e-12 {
            return false;
        }
        if piv != col {
            for j in 0..k {
                a.swap(col * k + j, piv * k + j);
            }
            b.swap(col, piv);
        }
        let d = a[col * k + col];
        for row in 0..k {
            if row == col {
                continue;
            }
            let factor = a[row * k + col] / d;
            if factor == 0.0 {
                continue;
            }
            for j in col..k {
                a[row * k + j] -= factor * a[col * k + j];
            }
            b[row] -= factor * b[col];
        }
    }
    for col in 0..k {
        b[col] /= a[col * k + col];
    }
    true
}

/// LibSVM's fixed-point iteration for Problem (14) (`multiclass_probability`
/// in svm.cpp), used as an independent cross-check of [`couple_gaussian`].
pub fn couple_iterative(r: &PairwiseProbs) -> Vec<f64> {
    let k = r.k();
    let q = r.build_q();
    let mut p = vec![1.0 / k as f64; k];
    let mut qp = vec![0.0f64; k];
    let eps = 0.005 / k as f64;
    let max_iter = 100.max(k);

    for _ in 0..=max_iter {
        let mut pqp = 0.0;
        for t in 0..k {
            qp[t] = (0..k).map(|j| q[t * k + j] * p[j]).sum();
            pqp += p[t] * qp[t];
        }
        let max_err = (0..k).map(|t| (qp[t] - pqp).abs()).fold(0.0f64, f64::max);
        if max_err < eps {
            break;
        }
        for t in 0..k {
            let diff = (-qp[t] + pqp) / q[t * k + t];
            p[t] += diff;
            pqp =
                (pqp + diff * (diff * q[t * k + t] + 2.0 * qp[t])) / ((1.0 + diff) * (1.0 + diff));
            for j in 0..k {
                qp[j] = (qp[j] + diff * q[t * k + j]) / (1.0 + diff);
                p[j] /= 1.0 + diff;
            }
        }
    }
    // The update preserves normalization only up to floating-point error,
    // so the iterative path gets a looser simplex tolerance.
    audit_simplex(&p, 1e-6, "couple_iterative");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example1() -> PairwiseProbs {
        // Example 1 of the paper: SVM₁₂ gives P(class1)=0.8, SVM₁₃ gives
        // P(class3)=0.4 (⇒ r₁₃ = 0.6), SVM₂₃ gives P(class2)=0.4.
        let mut r = PairwiseProbs::new(3);
        r.set(0, 1, 0.8);
        r.set(0, 2, 0.6);
        r.set(1, 2, 0.4);
        r
    }

    fn assert_distribution(p: &[f64]) {
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "sum {p:?}");
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)), "{p:?}");
    }

    #[test]
    fn pairwise_antisymmetry() {
        let r = example1();
        assert!((r.get(1, 0) - 0.2).abs() < 1e-12);
        assert!((r.get(2, 0) - 0.4).abs() < 1e-12);
        assert!((r.get(2, 1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn example1_ordering_matches_paper() {
        // The paper reports p ≈ (0.85, 0.05, 0.10); the exact optimum of
        // Problem (14) for these inputs preserves the ordering
        // p₁ > p₃ > p₂ (class 1 dominant, class 3 over class 2).
        let p = couple_gaussian(&example1());
        assert_distribution(&p);
        assert!(p[0] > p[2] && p[2] > p[1], "{p:?}");
        assert!(p[0] > 0.5, "class 1 must dominate: {p:?}");
    }

    #[test]
    fn gaussian_and_iterative_agree() {
        let p1 = couple_gaussian(&example1());
        let p2 = couple_iterative(&example1());
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 5e-3, "{p1:?} vs {p2:?}");
        }
    }

    #[test]
    fn solution_minimizes_objective() {
        // Check optimality of the closed form against perturbations.
        let r = example1();
        let obj = |p: &[f64]| -> f64 {
            let mut o = 0.0;
            for s in 0..3 {
                for t in 0..3 {
                    if s != t {
                        let d = r.get(t, s) * p[s] - r.get(s, t) * p[t];
                        o += d * d;
                    }
                }
            }
            o
        };
        let p = couple_gaussian(&r);
        let base = obj(&p);
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    continue;
                }
                let mut q = p.clone();
                let eps = 1e-4;
                if q[j] < eps {
                    continue;
                }
                q[i] += eps;
                q[j] -= eps;
                assert!(
                    obj(&q) >= base - 1e-12,
                    "perturbation ({i},{j}) improves objective"
                );
            }
        }
    }

    #[test]
    fn uniform_inputs_give_uniform_output() {
        let mut r = PairwiseProbs::new(4);
        for s in 0..4 {
            for t in s + 1..4 {
                r.set(s, t, 0.5);
            }
        }
        let p = couple_gaussian(&r);
        assert_distribution(&p);
        for &v in &p {
            assert!((v - 0.25).abs() < 1e-9, "{p:?}");
        }
    }

    #[test]
    fn dominant_class_wins() {
        let mut r = PairwiseProbs::new(3);
        r.set(0, 1, 0.99);
        r.set(0, 2, 0.99);
        r.set(1, 2, 0.5);
        let p = couple_gaussian(&r);
        assert_distribution(&p);
        assert!(p[0] > 0.9, "{p:?}");
        assert!((p[1] - p[2]).abs() < 1e-6);
    }

    #[test]
    fn relabeling_invariance() {
        // Swap classes 0 and 2: the output distribution must permute.
        let p = couple_gaussian(&example1());
        let mut r2 = PairwiseProbs::new(3);
        // original: r01=0.8, r02=0.6, r12=0.4 → after swap 0<->2:
        // r21'=0.8, r20'=0.6, r10'=0.4
        r2.set(2, 1, 0.8);
        r2.set(2, 0, 0.6);
        r2.set(1, 0, 0.4);
        let q = couple_gaussian(&r2);
        assert!((p[0] - q[2]).abs() < 1e-9);
        assert!((p[1] - q[1]).abs() < 1e-9);
        assert!((p[2] - q[0]).abs() < 1e-9);
    }

    #[test]
    fn two_class_coupling_reduces_to_binary() {
        let mut r = PairwiseProbs::new(2);
        r.set(0, 1, 0.7);
        let p = couple_gaussian(&r);
        assert_distribution(&p);
        assert!((p[0] - 0.7).abs() < 1e-6, "{p:?}");
    }

    #[test]
    fn extreme_probabilities_clamped() {
        let mut r = PairwiseProbs::new(2);
        r.set(0, 1, 1.0); // clamped internally to 1-1e-7
        let p = couple_gaussian(&r);
        assert_distribution(&p);
        assert!(p[0] > 0.999);
    }

    #[test]
    fn iterative_handles_larger_k() {
        let k = 8;
        let mut r = PairwiseProbs::new(k);
        let mut seed = 7u64;
        for s in 0..k {
            for t in s + 1..k {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = 0.1 + 0.8 * (((seed >> 11) as f64) / ((1u64 << 53) as f64));
                r.set(s, t, v);
            }
        }
        let p1 = couple_gaussian(&r);
        let p2 = couple_iterative(&r);
        assert_distribution(&p1);
        assert_distribution(&p2);
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 0.02, "{p1:?} vs {p2:?}");
        }
    }
}
