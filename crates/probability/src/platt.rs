//! Platt scaling: fit a sigmoid to SVM decision values (Problem 13).
//!
//! Newton's method with backtracking line search, numerically-stable
//! formulation per Lin, Lin & Weng, "A note on Platt's probabilistic
//! outputs for support vector machines" (2007) — the algorithm LibSVM
//! implements and the paper's Phase (ii) parallelizes.

use serde::{Deserialize, Serialize};

/// Fitted sigmoid parameters: `P(y=1|v) = 1/(1+exp(A·v+B))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmoidParams {
    /// Slope `A` (negative for a well-oriented classifier).
    pub a: f64,
    /// Offset `B`.
    pub b: f64,
    /// Newton iterations used by the fit.
    pub iterations: u32,
}

/// `P(y=1|v)` for a fitted sigmoid, computed in the overflow-safe form.
#[inline]
pub fn sigmoid_predict(decision_value: f64, params: &SigmoidParams) -> f64 {
    let f_apb = decision_value * params.a + params.b;
    // 1/(1+exp(f)) computed without overflow for either sign of f.
    let p = if f_apb >= 0.0 {
        (-f_apb).exp() / (1.0 + (-f_apb).exp())
    } else {
        1.0 / (1.0 + f_apb.exp())
    };
    gmp_sync::audit!({
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "sigmoid_predict left [0, 1]: p = {p} for v = {decision_value}, A = {}, B = {}",
            params.a,
            params.b
        );
    });
    p
}

/// Fit `(A, B)` on decision values and ±1 labels.
///
/// Uses the smoothed targets of Problem (13):
/// `t = (N₊+1)/(N₊+2)` for positives, `1/(N₋+2)` for negatives.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or labels are not ±1.
pub fn sigmoid_train(decision_values: &[f64], labels: &[f64]) -> SigmoidParams {
    assert_eq!(decision_values.len(), labels.len(), "length mismatch");
    assert!(
        !decision_values.is_empty(),
        "cannot fit a sigmoid to nothing"
    );
    assert!(
        labels.iter().all(|&y| y == 1.0 || y == -1.0),
        "labels must be ±1"
    );

    let n = decision_values.len();
    let prior1 = labels.iter().filter(|&&y| y > 0.0).count() as f64;
    let prior0 = n as f64 - prior1;

    const MAX_ITER: u32 = 100;
    const MIN_STEP: f64 = 1e-10;
    const SIGMA: f64 = 1e-12; // Hessian ridge
    const EPS: f64 = 1e-5;

    let hi_target = (prior1 + 1.0) / (prior1 + 2.0);
    let lo_target = 1.0 / (prior0 + 2.0);
    let t: Vec<f64> = labels
        .iter()
        .map(|&y| if y > 0.0 { hi_target } else { lo_target })
        .collect();

    let mut a = 0.0f64;
    let mut b = ((prior0 + 1.0) / (prior1 + 1.0)).ln();
    let fun = |a: f64, b: f64| -> f64 {
        let mut fval = 0.0;
        for i in 0..n {
            let f_apb = decision_values[i] * a + b;
            // -log-likelihood, stable in both branches.
            if f_apb >= 0.0 {
                fval += t[i] * f_apb + (1.0 + (-f_apb).exp()).ln();
            } else {
                fval += (t[i] - 1.0) * f_apb + (1.0 + f_apb.exp()).ln();
            }
        }
        fval
    };
    let mut fval = fun(a, b);
    let mut iterations = 0;

    for it in 0..MAX_ITER {
        iterations = it;
        // Gradient and Hessian of the negative log-likelihood.
        let (mut h11, mut h22) = (SIGMA, SIGMA);
        let mut h21 = 0.0;
        let (mut g1, mut g2) = (0.0, 0.0);
        for i in 0..n {
            let f_apb = decision_values[i] * a + b;
            let (p, q) = if f_apb >= 0.0 {
                let e = (-f_apb).exp();
                (e / (1.0 + e), 1.0 / (1.0 + e))
            } else {
                let e = f_apb.exp();
                (1.0 / (1.0 + e), e / (1.0 + e))
            };
            let d2 = p * q;
            h11 += decision_values[i] * decision_values[i] * d2;
            h22 += d2;
            h21 += decision_values[i] * d2;
            let d1 = t[i] - p;
            g1 += decision_values[i] * d1;
            g2 += d1;
        }
        if g1.abs() < EPS && g2.abs() < EPS {
            break;
        }
        // Newton direction.
        let det = h11 * h22 - h21 * h21;
        let d_a = -(h22 * g1 - h21 * g2) / det;
        let d_b = -(-h21 * g1 + h11 * g2) / det;
        let gd = g1 * d_a + g2 * d_b;

        // Backtracking line search (Armijo).
        let mut stepsize = 1.0;
        let mut accepted = false;
        while stepsize >= MIN_STEP {
            let new_a = a + stepsize * d_a;
            let new_b = b + stepsize * d_b;
            let new_f = fun(new_a, new_b);
            if new_f < fval + 1e-4 * stepsize * gd {
                a = new_a;
                b = new_b;
                fval = new_f;
                accepted = true;
                break;
            }
            stepsize /= 2.0;
        }
        if !accepted {
            // Line search failed: return the best point found.
            break;
        }
    }

    gmp_sync::audit!({
        assert!(
            a.is_finite() && b.is_finite(),
            "sigmoid_train produced non-finite parameters A = {a}, B = {b}"
        );
    });
    SigmoidParams {
        a,
        b,
        iterations: iterations + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f64 in [0,1).
    fn rng01(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn synthetic(n: usize, a_true: f64, b_true: f64) -> (Vec<f64>, Vec<f64>) {
        let mut seed = 42u64;
        let mut dec = Vec::with_capacity(n);
        let mut lab = Vec::with_capacity(n);
        for _ in 0..n {
            let v = rng01(&mut seed) * 8.0 - 4.0;
            let p = 1.0 / (1.0 + (a_true * v + b_true).exp());
            dec.push(v);
            lab.push(if rng01(&mut seed) < p { 1.0 } else { -1.0 });
        }
        (dec, lab)
    }

    #[test]
    fn recovers_true_sigmoid() {
        let (dec, lab) = synthetic(4000, -2.0, 0.3);
        let p = sigmoid_train(&dec, &lab);
        assert!((p.a - (-2.0)).abs() < 0.3, "A = {}", p.a);
        assert!((p.b - 0.3).abs() < 0.3, "B = {}", p.b);
    }

    #[test]
    fn predicted_probabilities_monotone_in_decision_value() {
        let (dec, lab) = synthetic(1000, -1.5, 0.0);
        let p = sigmoid_train(&dec, &lab);
        // A < 0 ⇒ increasing v ⇒ increasing P(y=1).
        let lo = sigmoid_predict(-2.0, &p);
        let mid = sigmoid_predict(0.0, &p);
        let hi = sigmoid_predict(2.0, &p);
        assert!(lo < mid && mid < hi, "{lo} {mid} {hi}");
    }

    #[test]
    fn probabilities_bounded() {
        let (dec, lab) = synthetic(500, -1.0, 0.5);
        let p = sigmoid_train(&dec, &lab);
        for v in [-1e6, -5.0, 0.0, 5.0, 1e6] {
            let prob = sigmoid_predict(v, &p);
            assert!((0.0..=1.0).contains(&prob), "v={v} p={prob}");
        }
    }

    #[test]
    fn perfectly_separated_data() {
        // All positives at v>0, negatives at v<0: optimizer must not blow up
        // (targets are smoothed, so the likelihood has a finite optimum).
        let dec: Vec<f64> = (0..100)
            .map(|i| {
                if i < 50 {
                    -1.0 - (i as f64) * 0.01
                } else {
                    1.0 + (i as f64) * 0.01
                }
            })
            .collect();
        let lab: Vec<f64> = (0..100).map(|i| if i < 50 { -1.0 } else { 1.0 }).collect();
        let p = sigmoid_train(&dec, &lab);
        assert!(p.a < 0.0);
        assert!(sigmoid_predict(2.0, &p) > 0.9);
        assert!(sigmoid_predict(-2.0, &p) < 0.1);
    }

    #[test]
    fn heavily_imbalanced_classes() {
        let mut dec = vec![1.0; 95];
        dec.extend(vec![-1.0; 5]);
        let mut lab = vec![1.0; 95];
        lab.extend(vec![-1.0; 5]);
        let p = sigmoid_train(&dec, &lab);
        // Targets keep probabilities off 0/1.
        let prob_pos = sigmoid_predict(1.0, &p);
        assert!(prob_pos > 0.5 && prob_pos < 1.0);
    }

    #[test]
    fn constant_decision_values_fit_prior() {
        let dec = vec![0.0; 40];
        let mut lab = vec![1.0; 30];
        lab.extend(vec![-1.0; 10]);
        let p = sigmoid_train(&dec, &lab);
        let prob = sigmoid_predict(0.0, &p);
        // ~ fraction of positives, smoothed.
        assert!((prob - 0.75).abs() < 0.05, "prob {prob}");
    }

    #[test]
    fn predict_extreme_values_no_nan() {
        let p = SigmoidParams {
            a: -3.0,
            b: 1.0,
            iterations: 1,
        };
        assert_eq!(sigmoid_predict(1e308, &p), 1.0);
        assert_eq!(sigmoid_predict(-1e308, &p), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_inputs() {
        sigmoid_train(&[1.0], &[1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "labels must be ±1")]
    fn rejects_bad_labels() {
        sigmoid_train(&[1.0, 2.0], &[1.0, 3.0]);
    }
}
