//! Regenerates Figure 9: GMP-SVM vs OHD-SVM training time on the four
//! binary datasets.

use gmp_baselines::OhdSvmLike;
use gmp_bench::{fmt_s, params_for, print_banner, print_table, split_for};
use gmp_datasets::PaperDataset;
use gmp_svm::{Backend, DeviceConfig, MpSvmTrainer};

fn main() {
    let datasets = PaperDataset::binary();
    print_banner("Figure 9 — training time: GMP-SVM vs OHD-SVM", &datasets);

    let mut rows = Vec::new();
    for ds in datasets {
        let split = split_for(ds);
        let spec = ds.spec();
        let params = params_for(ds).without_probability();
        let gmp = MpSvmTrainer::new(params, Backend::gmp_default())
            .train(&split.train)
            .expect("gmp training failed");
        let ohd = OhdSvmLike {
            c: spec.c,
            kernel: params.kernel,
            eps: params.eps,
            device: DeviceConfig::tesla_p100(),
            ws_size: 128,
        }
        .train(&split.train)
        .expect("ohd training failed");
        rows.push(vec![
            spec.name.to_string(),
            fmt_s(gmp.report.sim_s),
            fmt_s(ohd.sim_s),
            format!("{:.1}x", ohd.sim_s / gmp.report.sim_s.max(1e-12)),
            gmp.report.kernel_evals.to_string(),
            ohd.kernel_evals.to_string(),
        ]);
        eprintln!("  {} done", spec.name);
    }
    print_table(
        "Figure 9 (simulated train seconds)",
        &[
            "Dataset",
            "GMP-SVM",
            "OHD-SVM",
            "OHD / GMP",
            "kevals GMP",
            "kevals OHD",
        ],
        &rows,
    );
}
