//! Regenerates Table 3 (and its Table 1 subset): elapsed time of all five
//! implementations on all nine datasets, training and prediction.
//!
//! Results are also written to `target/gmp-results/table3.tsv` so that the
//! figure binaries (`fig4_5`) can reuse them.
//!
//! Usage: `table3 [--quick]` — `--quick` runs the three smallest datasets.

use gmp_bench::{
    fmt_s, measure_on, measure_on_with_threads, params_for, print_banner, print_table, results_dir,
    split_for, table3_backends, write_bench_json, write_tsv, Measurement,
};
use gmp_datasets::PaperDataset;
use gmp_svm::Backend;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let datasets: Vec<PaperDataset> = if quick {
        vec![
            PaperDataset::Adult,
            PaperDataset::Connect4,
            PaperDataset::Mnist,
        ]
    } else {
        PaperDataset::all().to_vec()
    };
    print_banner(
        "Table 3 — elapsed time (simulated seconds on modeled hardware)",
        &datasets,
    );

    let mut all: Vec<Measurement> = Vec::new();
    let mut rows = Vec::new();
    for ds in &datasets {
        let params = params_for(*ds);
        let split = split_for(*ds);
        let mut row = vec![ds.spec().name.to_string()];
        for backend in table3_backends() {
            let m = measure_on(&split, ds.spec().name, &backend, params);
            eprintln!(
                "  [{} / {}] train {} s (sim), predict {} s (sim), kevals {} ({} wall-train s)",
                m.dataset,
                m.backend,
                fmt_s(m.train_sim_s),
                fmt_s(m.predict_sim_s),
                m.train_kernel_evals,
                fmt_s(m.train_wall_s),
            );
            row.push(format!(
                "{} / {}",
                fmt_s(m.train_sim_s),
                fmt_s(m.predict_sim_s)
            ));
            all.push(m);
        }
        rows.push(row);
    }
    print_table(
        "Table 3 (train / predict, simulated seconds)",
        &[
            "Dataset",
            "LibSVM w/o OpenMP",
            "LibSVM w/ OpenMP",
            "GPU baseline",
            "CMP-SVM",
            "GMP-SVM",
        ],
        &rows,
    );

    // Table 1 is the 3-dataset subset of Table 3.
    let t1: Vec<Vec<String>> = all
        .chunks(5)
        .filter(|c| ["CIFAR-10", "MNIST", "MNIST8M"].contains(&c[0].dataset.as_str()))
        .map(|c| {
            let mut row = vec![c[0].dataset.clone()];
            for m in c {
                row.push(format!(
                    "{} / {}",
                    fmt_s(m.train_sim_s),
                    fmt_s(m.predict_sim_s)
                ));
            }
            row
        })
        .collect();
    if !t1.is_empty() {
        print_table(
            "Table 1 (subset)",
            &[
                "Dataset",
                "LibSVM w/o OpenMP",
                "LibSVM w/ OpenMP",
                "GPU baseline",
                "CMP-SVM",
                "GMP-SVM",
            ],
            &t1,
        );
    }

    // Host-parallelism A/B on the Table-1 generators present in this run:
    // the same GMP training with 1 vs. 4 real host threads. Simulated
    // seconds and kernel work are identical by construction (see
    // crates/core/tests/concurrency.rs); wall-clock is what threads move.
    let ab_sets = [
        PaperDataset::Adult,
        PaperDataset::Mnist,
        PaperDataset::News20,
    ];
    for ds in ab_sets.iter().filter(|ds| datasets.contains(ds)) {
        let params = params_for(*ds);
        let split = split_for(*ds);
        for threads in [1usize, 4] {
            let mut m = measure_on_with_threads(
                &split,
                ds.spec().name,
                &Backend::gmp_default(),
                params,
                Some(threads),
            );
            m.backend = format!("{} (host_threads={threads})", m.backend);
            eprintln!(
                "  [{} / {}] train {} wall s, {} sim s, kevals {}",
                m.dataset,
                m.backend,
                fmt_s(m.train_wall_s),
                fmt_s(m.train_sim_s),
                m.train_kernel_evals,
            );
            all.push(m);
        }
    }

    let path = results_dir().join("table3.tsv");
    write_tsv(&path, &all);
    let json_path = gmp_bench::bench_json_path();
    write_bench_json(&json_path, "table3", &all);
    println!("\nresults written to {}", path.display());
    println!("benchmark artifact written to {}", json_path.display());
}
