//! Ablation the paper leaves open (§3.3.1: "finding the best strategy for
//! replacement is out of the scope of this paper"): FIFO batch replacement
//! vs LRU row replacement in the binary-level kernel buffer.
//!
//! Runs the batched solver directly on the binary datasets with the two
//! buffer policies and a buffer deliberately smaller than the working set
//! churn, so replacement actually matters.

use gmp_bench::{fmt_s, print_banner, print_table, split_for};
use gmp_datasets::PaperDataset;
use gmp_gpusim::{Device, DeviceConfig, Executor, Stream};
use gmp_kernel::{BufferedRows, KernelOracle, KernelRows, ReplacementPolicy};
use gmp_smo::{BatchedParams, BatchedSmoSolver, SmoParams};
use std::sync::Arc;

fn main() {
    let datasets = PaperDataset::binary();
    print_banner(
        "Ablation — kernel buffer replacement policy (FIFO vs LRU)",
        &datasets,
    );

    let mut rows = Vec::new();
    for ds in datasets {
        let split = split_for(ds);
        let spec = ds.spec();
        let y: Vec<f64> = split
            .train
            .y
            .iter()
            .map(|&c| if c == 0 { 1.0 } else { -1.0 })
            .collect();
        let mut row = vec![spec.name.to_string()];
        for policy in [ReplacementPolicy::FifoBatch, ReplacementPolicy::Lru] {
            let device = Device::new(DeviceConfig::tesla_p100());
            let stream = Stream::new(device.clone(), 1.0);
            let oracle = Arc::new(KernelOracle::new(
                Arc::new(split.train.x.clone()),
                gmp_kernel::KernelKind::Rbf { gamma: spec.gamma },
            ));
            // Buffer = 1.5x working set: eviction pressure without thrash.
            let ws = 64usize;
            let mut provider = BufferedRows::new(oracle.clone(), ws * 3 / 2, policy, Some(&device))
                .expect("buffer fits");
            let params = BatchedParams {
                base: SmoParams {
                    c: spec.c,
                    eps: 1e-3,
                    max_iter: 10_000_000,
                    shrinking: false,
                },
                ws_size: ws,
                q: ws / 2,
                inner_relax: 0.1,
                max_inner: ws * 4,
            };
            let r = BatchedSmoSolver::new(params).solve(&y, &mut provider, &stream);
            let stats = provider.stats();
            row.push(format!(
                "{} ({} rows, {:.0}% hit)",
                fmt_s(stream.elapsed()),
                stats.rows_computed,
                100.0 * stats.buffer_hits as f64
                    / (stats.buffer_hits + stats.buffer_misses).max(1) as f64
            ));
            assert!(r.converged, "{} did not converge", spec.name);
        }
        eprintln!("  {} done", spec.name);
        rows.push(row);
    }
    print_table(
        "Buffer policy ablation (simulated train seconds)",
        &["Dataset", "FIFO batch (paper)", "LRU"],
        &rows,
    );
    println!(
        "\nPaper's claim: FIFO is 'simple and sufficiently effective' — the two should be close."
    );
}
