//! Regenerates Figures 4 and 5: training / prediction speedup of GMP-SVM
//! over the other four implementations.
//!
//! Reuses `target/gmp-results/table3.tsv` when present (run `table3`
//! first); otherwise recomputes the measurements.

use gmp_bench::{
    measure, params_for, print_table, read_tsv, results_dir, table3_backends, Measurement,
};
use gmp_datasets::PaperDataset;
use std::collections::HashMap;

fn main() {
    let path = results_dir().join("table3.tsv");
    let all: Vec<Measurement> = match read_tsv(&path) {
        Some(ms) if !ms.is_empty() => {
            println!("(reusing {})", path.display());
            ms
        }
        _ => {
            println!("(no table3.tsv found — computing fresh measurements)");
            let mut ms = Vec::new();
            for ds in PaperDataset::all() {
                let params = params_for(ds);
                for b in table3_backends() {
                    ms.push(measure(ds, &b, params));
                    eprintln!("  {} / {} done", ds.spec().name, b.label());
                }
            }
            ms
        }
    };

    // Index by (dataset, backend).
    let mut by_key: HashMap<(String, String), &Measurement> = HashMap::new();
    for m in &all {
        by_key.insert((m.dataset.clone(), m.backend.clone()), m);
    }
    let gmp_label = "GMP-SVM".to_string();
    let others = [
        "LibSVM w/o OpenMP",
        "LibSVM w/ OpenMP (40t)",
        "GPU baseline",
        "CMP-SVM (40t)",
    ];
    let datasets: Vec<String> = {
        let mut seen = Vec::new();
        for m in &all {
            if !seen.contains(&m.dataset) {
                seen.push(m.dataset.clone());
            }
        }
        seen
    };

    for (fig, train) in [
        ("Figure 4 — training speedup of GMP-SVM", true),
        ("Figure 5 — prediction speedup of GMP-SVM", false),
    ] {
        let mut rows = Vec::new();
        for ds in &datasets {
            let Some(gmp) = by_key.get(&(ds.clone(), gmp_label.clone())) else {
                continue;
            };
            let gmp_t = if train {
                gmp.train_sim_s
            } else {
                gmp.predict_sim_s
            };
            let mut row = vec![ds.clone()];
            for other in others {
                match by_key.get(&(ds.clone(), other.to_string())) {
                    Some(m) => {
                        let t = if train {
                            m.train_sim_s
                        } else {
                            m.predict_sim_s
                        };
                        row.push(format!("{:.1}x", t / gmp_t.max(1e-12)));
                    }
                    None => row.push("-".to_string()),
                }
            }
            rows.push(row);
        }
        print_table(
            fig,
            &[
                "Dataset",
                "vs LibSVM w/o OpenMP",
                "vs LibSVM w/ OpenMP",
                "vs GPU baseline",
                "vs CMP-SVM",
            ],
            &rows,
        );
    }
}
