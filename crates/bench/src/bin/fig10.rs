//! Regenerates Figure 10: GMP-SVM vs GPUSVM training time on the four
//! binary datasets. GPUSVM's dense data representation is the reason it
//! collapses on sparse/high-dimensional data (RCV1) — the same mechanism
//! reproduced here.

use gmp_baselines::GpuSvmLike;
use gmp_bench::{fmt_s, params_for, print_banner, print_table, split_for};
use gmp_datasets::PaperDataset;
use gmp_svm::{Backend, DeviceConfig, MpSvmTrainer};

fn main() {
    let datasets = PaperDataset::binary();
    print_banner("Figure 10 — training time: GMP-SVM vs GPUSVM", &datasets);

    let mut rows = Vec::new();
    for ds in datasets {
        let split = split_for(ds);
        let spec = ds.spec();
        let params = params_for(ds).without_probability();
        let gmp = MpSvmTrainer::new(params, Backend::gmp_default())
            .train(&split.train)
            .expect("gmp training failed");
        let gpusvm = GpuSvmLike {
            c: spec.c,
            kernel: params.kernel,
            eps: params.eps,
            device: DeviceConfig::tesla_p100(),
        }
        .train(&split.train)
        .expect("gpusvm training failed");
        rows.push(vec![
            spec.name.to_string(),
            fmt_s(gmp.report.sim_s),
            fmt_s(gpusvm.sim_s),
            format!("{:.1}x", gpusvm.sim_s / gmp.report.sim_s.max(1e-12)),
        ]);
        eprintln!("  {} done", spec.name);
    }
    print_table(
        "Figure 10 (simulated train seconds)",
        &["Dataset", "GMP-SVM", "GPUSVM", "GPUSVM / GMP"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): GPUSVM worst on RCV1 (dense representation on sparse data)."
    );
}
