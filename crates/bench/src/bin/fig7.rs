//! Regenerates Figure 7: GMP-SVM training time as the number of new
//! violating instances per round (q) varies, with the buffer fixed.

use gmp_bench::{fmt_s, measure_on, params_for, print_banner, print_table, split_for};
use gmp_datasets::PaperDataset;
use gmp_svm::Backend;

fn main() {
    // Connect-4 stands in for Adult here: Adult's published C=100 makes
    // the sweep's wall time explode at reduced scale without changing the
    // q-shape conclusion.
    let datasets = [
        PaperDataset::Connect4,
        PaperDataset::Webdata,
        PaperDataset::Mnist,
        PaperDataset::News20,
    ];
    print_banner(
        "Figure 7 — training time vs q (buffer fixed at 256)",
        &datasets,
    );
    let bs = 256usize;
    let qs = [16usize, 32, 64, 128, 256];

    let mut rows = Vec::new();
    for ds in datasets {
        let split = split_for(ds);
        let mut row = vec![ds.spec().name.to_string()];
        for &q in &qs {
            let params = params_for(ds).with_working_set(bs, q);
            let m = measure_on(&split, ds.spec().name, &Backend::gmp_default(), params);
            row.push(format!(
                "{} ({})",
                fmt_s(m.train_sim_s),
                m.train_kernel_evals
            ));
            eprintln!("  {} q={q} done", ds.spec().name);
        }
        rows.push(row);
    }
    print_table(
        "Figure 7 (simulated train seconds (kernel evals))",
        &["Dataset", "q=16", "q=32", "q=64", "q=128", "q=256"],
        &rows,
    );
    println!("\nExpected shape (paper): q ≈ bs/2 is best; very small q pays more per kernel row, very large q flushes the buffer.");
}
