//! Regenerates Figures 11 and 12: the percentage of GMP-SVM training time
//! spent on (i) kernel values, (ii) solving subproblems, (iii) the rest —
//! and of prediction time on (i) decision values, (ii) sigmoids,
//! (iii) multi-class coupling.

use gmp_bench::{params_for, print_banner, print_table, split_for};
use gmp_datasets::PaperDataset;
use gmp_svm::{Backend, MpSvmTrainer};

fn main() {
    let datasets = [
        PaperDataset::Adult,
        PaperDataset::Webdata,
        PaperDataset::Connect4,
        PaperDataset::Mnist,
        PaperDataset::News20,
    ];
    print_banner("Figures 11/12 — component breakdown of GMP-SVM", &datasets);

    let mut train_rows = Vec::new();
    let mut pred_rows = Vec::new();
    for ds in datasets {
        let split = split_for(ds);
        let params = params_for(ds);
        let out = MpSvmTrainer::new(params, Backend::gmp_default())
            .train(&split.train)
            .expect("training failed");
        let (k, s, o) = out.report.sim_phases.percentages();
        train_rows.push(vec![
            ds.spec().name.to_string(),
            format!("{k:.1}%"),
            format!("{s:.1}%"),
            format!("{o:.1}%"),
        ]);
        let pred = out
            .model
            .predict(&split.test.x, &Backend::gmp_default())
            .expect("prediction failed");
        let r = &pred.report;
        let tot = (r.sim_decision_s + r.sim_sigmoid_s + r.sim_coupling_s).max(1e-12);
        pred_rows.push(vec![
            ds.spec().name.to_string(),
            format!("{:.1}%", 100.0 * r.sim_decision_s / tot),
            format!("{:.1}%", 100.0 * r.sim_sigmoid_s / tot),
            format!("{:.1}%", 100.0 * r.sim_coupling_s / tot),
        ]);
        eprintln!("  {} done", ds.spec().name);
    }
    print_table(
        "Figure 11 — training time breakdown",
        &["Dataset", "kernel values", "solve subproblem", "other"],
        &train_rows,
    );
    print_table(
        "Figure 12 — prediction time breakdown",
        &["Dataset", "decision values", "sigmoid", "coupling"],
        &pred_rows,
    );
    println!("\nExpected shape (paper): kernel values dominate training; decision values dominate prediction; coupling is negligible.");
}
