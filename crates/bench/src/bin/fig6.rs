//! Regenerates Figure 6: GMP-SVM training time as the GPU buffer size
//! (= working-set size) varies. Two binary datasets and two multi-class
//! datasets, as in the paper.

use gmp_bench::{fmt_s, measure_on, params_for, print_banner, print_table, split_for};
use gmp_datasets::PaperDataset;
use gmp_svm::Backend;

fn main() {
    let datasets = [
        PaperDataset::Adult,
        PaperDataset::Webdata,
        PaperDataset::Mnist,
        PaperDataset::News20,
    ];
    print_banner(
        "Figure 6 — training time vs GPU buffer size (bs)",
        &datasets,
    );
    let buffer_sizes = [64usize, 128, 256, 512, 1024];

    let mut rows = Vec::new();
    for ds in datasets {
        let split = split_for(ds);
        let mut row = vec![ds.spec().name.to_string()];
        for &bs in &buffer_sizes {
            // q tracks the paper's bs/2 relationship (Fig. 7 finding).
            let params = params_for(ds).with_working_set(bs, bs / 2);
            let m = measure_on(&split, ds.spec().name, &Backend::gmp_default(), params);
            row.push(format!(
                "{} ({})",
                fmt_s(m.train_sim_s),
                m.train_kernel_evals
            ));
            eprintln!("  {} bs={bs} done", ds.spec().name);
        }
        rows.push(row);
    }
    print_table(
        "Figure 6 (simulated train seconds (kernel evals))",
        &["Dataset", "bs=64", "bs=128", "bs=256", "bs=512", "bs=1024"],
        &rows,
    );
}
