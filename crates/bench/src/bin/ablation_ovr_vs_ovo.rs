//! Strategy ablation grounded in the paper's §5 discussion: pairwise
//! coupling (the paper's choice, after Wu, Lin & Weng 2004) vs
//! one-vs-rest with normalized sigmoids (Rifkin & Klautau's advocacy).
//! Compares accuracy AND probability quality (log-loss) — the latter is
//! why the paper sides with pairwise coupling for *probabilistic* SVMs.

use gmp_bench::{params_for, print_banner, print_table, split_for};
use gmp_datasets::PaperDataset;
use gmp_prob::log_loss;
use gmp_svm::predict::error_rate;
use gmp_svm::{evaluate_ovr, Backend, MpSvmTrainer};

fn main() {
    let datasets = [
        PaperDataset::Connect4,
        PaperDataset::Mnist,
        PaperDataset::News20,
    ];
    print_banner(
        "Ablation — pairwise coupling (OVO) vs one-vs-rest (OVR)",
        &datasets,
    );
    let mut rows = Vec::new();
    for ds in datasets {
        let split = split_for(ds);
        let params = params_for(ds);
        // OVO through the full GMP pipeline.
        let out = MpSvmTrainer::new(params, Backend::cmp_svm())
            .train(&split.train)
            .expect("ovo train");
        let pred = out
            .model
            .predict(&split.test.x, &Backend::cmp_svm())
            .expect("ovo predict");
        let ovo_err = error_rate(&pred.labels, &split.test.y);
        let ovo_ll = log_loss(&pred.probabilities, &split.test.y);
        // OVR.
        let (ovr_err, ovr_ll) = evaluate_ovr(params, &split.train, &split.test);
        rows.push(vec![
            ds.spec().name.to_string(),
            format!("{:.2}% / {:.3}", 100.0 * ovo_err, ovo_ll),
            format!("{:.2}% / {:.3}", 100.0 * ovr_err, ovr_ll),
        ]);
        eprintln!("  {} done", ds.spec().name);
    }
    print_table(
        "OVO vs OVR (test error / log-loss)",
        &["Dataset", "pairwise coupling (paper)", "one-vs-rest"],
        &rows,
    );
    println!("\nExpected: comparable accuracy; pairwise coupling at least as good on log-loss (the paper's §5 rationale).");
}
