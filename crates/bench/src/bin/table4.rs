//! Regenerates Table 4: final classifier comparison between the LibSVM
//! reference and GMP-SVM — bias of the decision function, training error,
//! prediction error. Optional `--sweep` adds the C/γ sensitivity check of
//! §4.1 on a small grid.

use gmp_bench::{measure_on, params_for, print_banner, print_table, split_for};
use gmp_datasets::PaperDataset;
use gmp_svm::Backend;

fn main() {
    let sweep = std::env::args().any(|a| a == "--sweep");
    let datasets = PaperDataset::all();
    print_banner(
        "Table 4 — final classifier comparison (LibSVM vs GMP-SVM)",
        &datasets,
    );

    let mut rows = Vec::new();
    for ds in datasets {
        let split = split_for(ds);
        let params = params_for(ds);
        let lib = measure_on(&split, ds.spec().name, &Backend::libsvm(), params);
        let gmp = measure_on(&split, ds.spec().name, &Backend::gmp_default(), params);
        rows.push(vec![
            ds.spec().name.to_string(),
            format!("{:.4}", lib.bias),
            format!("{:.4}", gmp.bias),
            format!("{:.2}%", 100.0 * lib.train_error),
            format!("{:.2}%", 100.0 * gmp.train_error),
            format!("{:.2}%", 100.0 * lib.test_error),
            format!("{:.2}%", 100.0 * gmp.test_error),
            if (lib.bias - gmp.bias).abs() < 1e-2
                && (lib.train_error - gmp.train_error).abs() < 5e-3
            {
                "identical".to_string()
            } else {
                "DIFFERS".to_string()
            },
        ]);
        eprintln!("  {} done", ds.spec().name);
    }
    print_table(
        "Table 4",
        &[
            "Dataset",
            "bias LibSVM",
            "bias GMP-SVM",
            "train err LibSVM",
            "train err GMP-SVM",
            "pred err LibSVM",
            "pred err GMP-SVM",
            "verdict",
        ],
        &rows,
    );

    if sweep {
        println!("\n## Hyper-parameter sweep (§4.1: C in [0.01,100], gamma in [0.03,10])\n");
        let ds = PaperDataset::Adult;
        let split = split_for(ds);
        let mut rows = Vec::new();
        for c in [0.01, 1.0, 100.0] {
            for gamma in [0.03, 0.5, 10.0] {
                let params = params_for(ds).with_c(c).with_rbf(gamma);
                let lib = measure_on(&split, "Adult", &Backend::libsvm(), params);
                let gmp = measure_on(&split, "Adult", &Backend::gmp_default(), params);
                rows.push(vec![
                    format!("C={c}, gamma={gamma}"),
                    format!("{:.4} / {:.4}", lib.bias, gmp.bias),
                    format!(
                        "{:.2}% / {:.2}%",
                        100.0 * lib.train_error,
                        100.0 * gmp.train_error
                    ),
                    if (lib.bias - gmp.bias).abs() < 1e-2 {
                        "identical".into()
                    } else {
                        "DIFFERS".into()
                    },
                ]);
            }
        }
        print_table(
            "Sweep (Adult)",
            &[
                "Config",
                "bias (LibSVM / GMP)",
                "train err (LibSVM / GMP)",
                "verdict",
            ],
            &rows,
        );
    }
}
