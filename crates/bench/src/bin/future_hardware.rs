//! The paper's forward-looking claim (§4.1): "Better GPUs such as V100
//! should further improve the efficiency of GMP-SVM, due to higher memory
//! bandwidth and more cores." Trains GMP-SVM on the simulated P100 and
//! V100 and reports the improvement.

use gmp_bench::{fmt_s, params_for, print_banner, print_table, split_for};
use gmp_datasets::PaperDataset;
use gmp_gpusim::DeviceConfig;
use gmp_svm::{Backend, MpSvmTrainer};

fn main() {
    let datasets = [
        PaperDataset::Cifar10,
        PaperDataset::Mnist,
        PaperDataset::News20,
    ];
    print_banner("Future hardware — GMP-SVM on P100 vs V100", &datasets);
    let mut rows = Vec::new();
    for ds in datasets {
        let split = split_for(ds);
        let params = params_for(ds);
        let mut times = Vec::new();
        for device in [DeviceConfig::tesla_p100(), DeviceConfig::tesla_v100()] {
            let out = MpSvmTrainer::new(
                params,
                Backend::Gmp {
                    device,
                    max_concurrent: 0,
                },
            )
            .train(&split.train)
            .expect("training failed");
            times.push(out.report.sim_s);
        }
        rows.push(vec![
            ds.spec().name.to_string(),
            fmt_s(times[0]),
            fmt_s(times[1]),
            format!("{:.2}x", times[0] / times[1].max(1e-12)),
        ]);
        eprintln!("  {} done", ds.spec().name);
    }
    print_table(
        "P100 vs V100 (simulated train seconds)",
        &["Dataset", "P100", "V100", "V100 improvement"],
        &rows,
    );
    println!("\nExpected: V100 > 1x on every dataset (more SMs, higher bandwidth), bounded by launch overhead.");
}
