//! Regenerates Figure 8: GMP-SVM vs GTSVM training time on all nine
//! datasets (multi-class SVM training, no probability output for parity
//! with GTSVM's capabilities).

use gmp_baselines::GtSvmLike;
use gmp_bench::{fmt_s, params_for, print_banner, print_table, split_for};
use gmp_datasets::PaperDataset;
use gmp_svm::{Backend, DeviceConfig, MpSvmTrainer};

fn main() {
    let datasets = PaperDataset::all();
    print_banner("Figure 8 — training time: GMP-SVM vs GTSVM", &datasets);

    let mut rows = Vec::new();
    for ds in datasets {
        let split = split_for(ds);
        let spec = ds.spec();
        let params = params_for(ds).without_probability();
        let gmp = MpSvmTrainer::new(params, Backend::gmp_default())
            .train(&split.train)
            .expect("gmp training failed");
        let gt = GtSvmLike {
            c: spec.c,
            kernel: params.kernel,
            eps: params.eps,
            device: DeviceConfig::tesla_p100(),
            ws_size: 16,
        }
        .train(&split.train)
        .expect("gtsvm training failed");
        rows.push(vec![
            spec.name.to_string(),
            fmt_s(gmp.report.sim_s),
            fmt_s(gt.sim_s),
            format!("{:.1}x", gt.sim_s / gmp.report.sim_s.max(1e-12)),
            gmp.report.kernel_evals.to_string(),
            gt.kernel_evals.to_string(),
        ]);
        eprintln!("  {} done", spec.name);
    }
    print_table(
        "Figure 8 (simulated train seconds)",
        &[
            "Dataset",
            "GMP-SVM",
            "GTSVM",
            "GTSVM / GMP",
            "kevals GMP",
            "kevals GTSVM",
        ],
        &rows,
    );
}
