//! Regenerates Table 2: the dataset inventory, published vs. generated.

use gmp_bench::{default_scale, print_table};
use gmp_datasets::PaperDataset;

fn main() {
    println!("# Table 2 — datasets (synthetic stand-ins, see DESIGN.md §2)");
    let mut rows = Vec::new();
    for ds in PaperDataset::all() {
        let spec = ds.spec();
        let scale = default_scale(ds);
        let d = ds.generate(scale);
        rows.push(vec![
            spec.name.to_string(),
            spec.classes.to_string(),
            spec.cardinality.to_string(),
            d.n().to_string(),
            spec.dimension.to_string(),
            format!("{:.4}", d.x.density()),
            spec.c.to_string(),
            spec.gamma.to_string(),
            format!("{scale:.4}"),
        ]);
    }
    print_table(
        "Table 2",
        &[
            "Dataset",
            "# classes",
            "cardinality (paper)",
            "cardinality (generated)",
            "dimension",
            "density (generated)",
            "C",
            "gamma",
            "scale",
        ],
        &rows,
    );
}
