//! `bench_serve` — online-serving A/B: batch=1 vs dynamic micro-batching.
//!
//! Trains one multi-class model, then drives the `gmp-serve` engine
//! through closed-loop client threads twice with the only difference being
//! the batcher's `max_batch` (1 vs 16). Everything else — engine, backend,
//! worker count, client count, request mix — is held fixed.
//!
//! Two throughputs are reported, following the repo-wide convention
//! (see `gmp_bench` docs) that *simulated* seconds on the modeled device
//! are the paper-comparable quantity:
//!
//! * `sim_throughput_rps` — rows per simulated device-second. Batch=1
//!   pays the SV-pool PCIe transfer and per-launch overhead on **every
//!   request**; micro-batching amortizes both across the coalesced rows —
//!   exactly the per-launch-setup amortization the paper's batched
//!   prediction exploits.
//! * `throughput_rps` — wall-clock rows/s on this host, reported honestly
//!   alongside. On a single-core CI host the numeric work itself cannot
//!   parallelize, so the wall delta only reflects scheduling/coalescing
//!   overheads, not the device-side win.
//!
//! Emits `BENCH_serve.json` at the workspace root next to
//! `BENCH_train.json`.

use gmp_datasets::BlobSpec;
use gmp_serve::{PredictorEngine, ServeConfig, Server};
use gmp_svm::{Backend, MpSvmModel, MpSvmTrainer, ServeReport, SvmParams};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

// More clients than `max_batch`, so the batched arm coalesces full batches
// from the backlog instead of stalling on the flush timer.
const CLIENTS: usize = 32;
const REQUESTS_PER_CLIENT: usize = 40;

struct ArmResult {
    name: &'static str,
    max_batch: usize,
    wall_s: f64,
    throughput_rps: f64,
    report: ServeReport,
}

fn run_arm(
    name: &'static str,
    model: &MpSvmModel,
    rows: &[Vec<(u32, f64)>],
    max_batch: usize,
    max_delay: Duration,
) -> ArmResult {
    let engine = PredictorEngine::new(model.clone(), Backend::gmp_default(), None)
        .expect("model must serve");
    let server = Server::start(
        engine,
        ServeConfig {
            max_batch,
            max_delay,
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let handle = server.handle();
            s.spawn(move || {
                for r in 0..REQUESTS_PER_CLIENT {
                    let i = (c * REQUESTS_PER_CLIENT + r) % rows.len();
                    handle
                        .submit(rows[i].clone())
                        .expect("closed-loop client must be served");
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let report = server.shutdown();
    let served = report.served;
    assert_eq!(served as usize, CLIENTS * REQUESTS_PER_CLIENT);
    assert!(report.is_balanced(), "ledger imbalance: {report:?}");
    ArmResult {
        name,
        max_batch,
        wall_s,
        throughput_rps: served as f64 / wall_s,
        report,
    }
}

fn arm_json(a: &ArmResult) -> String {
    format!(
        "    {{\"name\": \"{}\", \"max_batch\": {}, \"wall_s\": {:.4}, \
         \"throughput_rps\": {:.1}, \"sim_throughput_rps\": {:.1}, \
         \"scoring_sim_s\": {:.6}, \"served\": {}, \"batches\": {}, \
         \"mean_batch_size\": {:.3}, \"peak_queue_depth\": {}, \
         \"latency_p50_us\": {}, \"latency_p95_us\": {}, \"latency_p99_us\": {}, \
         \"latency_mean_us\": {:.1}}}",
        a.name,
        a.max_batch,
        a.wall_s,
        a.throughput_rps,
        a.report.sim_throughput_rps(),
        a.report.scoring_sim_s,
        a.report.served,
        a.report.batches,
        a.report.mean_batch_size(),
        a.report.peak_queue_depth,
        a.report.latency.quantile_us(0.50),
        a.report.latency.quantile_us(0.95),
        a.report.latency.quantile_us(0.99),
        a.report.latency.mean_us(),
    )
}

fn main() {
    // Overlapping classes keep many training rows as support vectors, so
    // each scoring call moves a real SV pool to the device and does real
    // kernel work against it.
    let data = BlobSpec {
        n: 900,
        dim: 32,
        classes: 6,
        spread: 0.45,
        seed: 23,
    }
    .generate();
    println!(
        "# bench_serve\ntraining on n={} dim={} classes=6 ...",
        data.n(),
        data.x.ncols(),
    );
    let model = MpSvmTrainer::new(
        SvmParams::default().with_c(4.0).with_rbf(0.5),
        Backend::gmp_default(),
    )
    .train(&data)
    .expect("training failed")
    .model;
    println!(
        "model: {} binaries, {} shared SVs, probability={}",
        model.binaries.len(),
        model.n_sv(),
        model.has_probability()
    );

    let rows: Vec<Vec<(u32, f64)>> = (0..data.n())
        .map(|i| {
            let r = data.x.row(i);
            r.indices
                .iter()
                .copied()
                .zip(r.values.iter().copied())
                .collect()
        })
        .collect();

    // Warm-up arm (allocator/page-cache warmup); discarded.
    let _ = run_arm("warmup", &model, &rows, 8, Duration::from_micros(200));

    let single = run_arm("batch1", &model, &rows, 1, Duration::ZERO);
    let batched = run_arm(
        "microbatch16",
        &model,
        &rows,
        16,
        Duration::from_micros(200),
    );
    let sim_speedup = batched.report.sim_throughput_rps() / single.report.sim_throughput_rps();
    let wall_speedup = batched.throughput_rps / single.throughput_rps;

    for a in [&single, &batched] {
        println!(
            "{:>14}: sim {:9.1} rows/s  wall {:8.1} req/s  mean batch {:5.2}  p50 {}us  p95 {}us  p99 {}us",
            a.name,
            a.report.sim_throughput_rps(),
            a.throughput_rps,
            a.report.mean_batch_size(),
            a.report.latency.quantile_us(0.50),
            a.report.latency.quantile_us(0.95),
            a.report.latency.quantile_us(0.99),
        );
    }
    println!("micro-batching speedup: {sim_speedup:.2}x simulated-device, {wall_speedup:.2}x wall");

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"serve\",\n");
    let _ = writeln!(
        out,
        "  \"model\": {{\"classes\": {}, \"dim\": {}, \"n_sv\": {}, \"binaries\": {}}},",
        model.classes,
        model.sv_pool.ncols(),
        model.n_sv(),
        model.binaries.len()
    );
    let _ = writeln!(
        out,
        "  \"clients\": {CLIENTS},\n  \"requests_per_client\": {REQUESTS_PER_CLIENT},"
    );
    out.push_str("  \"arms\": [\n");
    let _ = writeln!(out, "{},", arm_json(&single));
    let _ = writeln!(out, "{}", arm_json(&batched));
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"microbatch_speedup\": {sim_speedup:.3},\n  \"microbatch_speedup_wall\": {wall_speedup:.3}"
    );
    out.push_str("}\n");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&path, out).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
