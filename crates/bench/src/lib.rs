//! Experiment harness: everything the `table*`/`fig*` binaries share.
//!
//! Each binary regenerates one table or figure of the paper (see
//! `DESIGN.md` §4). Scaled-down synthetic stand-ins replace the public
//! datasets (the scale is printed with every run); *simulated* seconds on
//! the modeled hardware are the paper-comparable quantity, and raw
//! counters (kernel evaluations, rows computed) are printed alongside as
//! the hardware-independent ground truth.

use gmp_datasets::{Dataset, PaperDataset, SplitDataset};
use gmp_svm::predict::error_rate;
use gmp_svm::{Backend, MpSvmTrainer, SvmParams};
use serde::{Deserialize, Serialize};

/// One (dataset, backend) measurement: the unit of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Dataset name.
    pub dataset: String,
    /// Backend label.
    pub backend: String,
    /// Numeric compute backend the kernels ran on (`scalar` | `blocked`).
    pub compute_backend: String,
    /// Simulated training seconds.
    pub train_sim_s: f64,
    /// Simulated prediction seconds.
    pub predict_sim_s: f64,
    /// Wall-clock training seconds on this host.
    pub train_wall_s: f64,
    /// Wall-clock prediction seconds on this host.
    pub predict_wall_s: f64,
    /// Kernel values computed during training.
    pub train_kernel_evals: u64,
    /// Kernel rows computed during training.
    pub train_rows_computed: u64,
    /// Kernel values computed during prediction.
    pub predict_kernel_evals: u64,
    /// Real host threads that drove concurrent training work.
    pub host_threads: usize,
    /// Training-set error rate.
    pub train_error: f64,
    /// Test-set error rate.
    pub test_error: f64,
    /// Bias (rho) of the last binary SVM — Table 4's comparison quantity.
    pub bias: f64,
    /// Did every binary problem converge?
    pub converged: bool,
}

/// Default reduced scale per dataset: targets a few hundred instances so
/// the full 5-backend sweep finishes on a laptop-class host. Override with
/// the `GMP_BENCH_SCALE` environment variable (a multiplier).
pub fn default_scale(ds: PaperDataset) -> f64 {
    let base = match ds {
        PaperDataset::Adult => 0.1,
        PaperDataset::Rcv1 => 0.12,
        PaperDataset::RealSim => 0.034,
        PaperDataset::Webdata => 0.055,
        PaperDataset::Cifar10 => 0.02,
        PaperDataset::Connect4 => 0.021,
        PaperDataset::Mnist => 0.024,
        PaperDataset::Mnist8m => 0.00028,
        PaperDataset::News20 => 0.09,
    };
    base * scale_multiplier()
}

/// The `GMP_BENCH_SCALE` multiplier (default 1).
pub fn scale_multiplier() -> f64 {
    std::env::var("GMP_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// The paper's solver parameters for a dataset (Table 2's C and γ; the
/// §4.1 buffer configuration clamped to the reduced problem size).
pub fn params_for(ds: PaperDataset) -> SvmParams {
    let spec = ds.spec();
    // Working set / buffer scaled to the reduced problem size the same way
    // the paper's 1024-row buffer relates to its datasets; the baseline's
    // LRU cache gets the same number of rows so the comparison is
    // equal-memory.
    let mut p = SvmParams::default()
        .with_c(spec.c)
        .with_rbf(spec.gamma)
        .with_working_set(128, 64);
    p.cache_rows = 128;
    p
}

/// Generate the (cached-per-call) split for a dataset at its default scale.
pub fn split_for(ds: PaperDataset) -> SplitDataset {
    ds.generate_split(default_scale(ds))
}

/// The five Table-3 backends in column order.
pub fn table3_backends() -> Vec<Backend> {
    vec![
        Backend::libsvm(),
        Backend::libsvm_openmp(),
        Backend::gpu_baseline_default(),
        Backend::cmp_svm(),
        Backend::gmp_default(),
    ]
}

/// Train + predict one (dataset, backend) pair and collect the numbers.
pub fn measure(ds: PaperDataset, backend: &Backend, params: SvmParams) -> Measurement {
    let split = split_for(ds);
    measure_on(&split, ds.spec().name, backend, params)
}

/// Like [`measure`] but over a pre-generated split (so sweeps reuse data).
pub fn measure_on(
    split: &SplitDataset,
    name: &str,
    backend: &Backend,
    params: SvmParams,
) -> Measurement {
    measure_on_with_threads(split, name, backend, params, None)
}

/// Like [`measure_on`] with an explicit host-thread count for the GMP
/// backend's concurrent waves (`None` = auto) — the knob behind the
/// host-parallelism A/B rows of `BENCH_train.json`.
pub fn measure_on_with_threads(
    split: &SplitDataset,
    name: &str,
    backend: &Backend,
    params: SvmParams,
    host_threads: Option<usize>,
) -> Measurement {
    let compute = params.compute_backend;
    let outcome = MpSvmTrainer::new(params, backend.clone())
        .with_host_threads(host_threads)
        .train(&split.train)
        // gmp:allow-panic — bench harness fails fast on setup errors
        .expect("training failed");
    let train_pred = outcome
        .model
        .predict_with_compute_backend(&split.train.x, backend, compute)
        // gmp:allow-panic — bench harness fails fast on setup errors
        .expect("train prediction failed");
    let test_pred = outcome
        .model
        .predict_with_compute_backend(&split.test.x, backend, compute)
        // gmp:allow-panic — bench harness fails fast on setup errors
        .expect("test prediction failed");
    Measurement {
        dataset: name.to_string(),
        backend: backend.label(),
        compute_backend: outcome.report.compute_backend.clone(),
        train_sim_s: outcome.report.sim_s,
        predict_sim_s: test_pred.report.sim_s,
        train_wall_s: outcome.report.wall_s,
        predict_wall_s: test_pred.report.wall_s,
        train_kernel_evals: outcome.report.kernel_evals,
        train_rows_computed: outcome.report.rows_computed,
        predict_kernel_evals: test_pred.report.kernel_evals,
        host_threads: outcome.report.host_threads,
        train_error: error_rate(&train_pred.labels, &split.train.y),
        test_error: error_rate(&test_pred.labels, &split.test.y),
        bias: outcome.model.last_bias(),
        converged: outcome.report.all_converged(),
    }
}

/// Format seconds compactly.
pub fn fmt_s(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Print a markdown table: `headers` then rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Where result TSVs are written so figure binaries can reuse table runs.
pub fn results_dir() -> std::path::PathBuf {
    let p = std::path::PathBuf::from("target/gmp-results");
    // gmp:allow-panic — bench harness fails fast on result-dir I/O errors
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Workspace-root path of the `BENCH_train.json` artifact — anchored via
/// the crate manifest so binaries (cwd = invocation dir) and benches
/// (cwd = package dir) agree on the location.
pub fn bench_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_train.json")
}

/// Write measurements as TSV.
pub fn write_tsv(path: &std::path::Path, ms: &[Measurement]) {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str(
        "dataset\tbackend\tcompute_backend\ttrain_sim_s\tpredict_sim_s\ttrain_wall_s\tpredict_wall_s\ttrain_kevals\ttrain_rows\tpredict_kevals\ttrain_err\ttest_err\tbias\tconverged\thost_threads\n",
    );
    for m in ms {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            m.dataset,
            m.backend,
            m.compute_backend,
            m.train_sim_s,
            m.predict_sim_s,
            m.train_wall_s,
            m.predict_wall_s,
            m.train_kernel_evals,
            m.train_rows_computed,
            m.predict_kernel_evals,
            m.train_error,
            m.test_error,
            m.bias,
            m.converged,
            m.host_threads
        );
    }
    // gmp:allow-panic — bench harness fails fast on result-file I/O errors
    std::fs::write(path, out).expect("write results tsv");
}

/// Read measurements back from TSV (None if absent/corrupt).
pub fn read_tsv(path: &std::path::Path) -> Option<Vec<Measurement>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in text.lines().skip(1) {
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 15 {
            return None;
        }
        out.push(Measurement {
            dataset: f[0].to_string(),
            backend: f[1].to_string(),
            compute_backend: f[2].to_string(),
            train_sim_s: f[3].parse().ok()?,
            predict_sim_s: f[4].parse().ok()?,
            train_wall_s: f[5].parse().ok()?,
            predict_wall_s: f[6].parse().ok()?,
            train_kernel_evals: f[7].parse().ok()?,
            train_rows_computed: f[8].parse().ok()?,
            predict_kernel_evals: f[9].parse().ok()?,
            train_error: f[10].parse().ok()?,
            test_error: f[11].parse().ok()?,
            bias: f[12].parse().ok()?,
            converged: f[13].parse().ok()?,
            host_threads: f[14].parse().ok()?,
        });
    }
    Some(out)
}

/// Escape a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize a float so the JSON stays valid (NaN/inf have no literal).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Write measurements as a machine-readable JSON benchmark artifact
/// (`BENCH_train.json`): wall/simulated seconds, kernel evals and rows
/// computed per backend×dataset, so the perf trajectory is trackable
/// across changes. Hand-rolled writer: the vendored serde has no
/// serializer.
pub fn write_bench_json(path: &std::path::Path, bench: &str, ms: &[Measurement]) {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"{}\",", json_escape(bench));
    let _ = writeln!(
        out,
        "  \"scale_multiplier\": {},",
        json_f64(scale_multiplier())
    );
    out.push_str("  \"results\": [\n");
    for (i, m) in ms.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"dataset\": \"{}\", \"backend\": \"{}\", \"compute_backend\": \"{}\", \
             \"host_threads\": {}, \
             \"train_wall_s\": {}, \"train_sim_s\": {}, \
             \"train_kernel_evals\": {}, \"train_rows_computed\": {}, \
             \"predict_wall_s\": {}, \"predict_sim_s\": {}, \
             \"predict_kernel_evals\": {}, \"test_error\": {}, \"converged\": {}",
            json_escape(&m.dataset),
            json_escape(&m.backend),
            json_escape(&m.compute_backend),
            m.host_threads,
            json_f64(m.train_wall_s),
            json_f64(m.train_sim_s),
            m.train_kernel_evals,
            m.train_rows_computed,
            json_f64(m.predict_wall_s),
            json_f64(m.predict_sim_s),
            m.predict_kernel_evals,
            json_f64(m.test_error),
            m.converged
        );
        out.push('}');
        if i + 1 < ms.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    // gmp:allow-panic — bench harness fails fast on result-file I/O errors
    std::fs::write(path, out).expect("write bench json");
}

/// Banner printed by every experiment binary: scale disclosure.
pub fn print_banner(exp: &str, datasets: &[PaperDataset]) {
    println!("# {exp}");
    println!("(synthetic stand-ins; scale vs. published cardinality shown per dataset — see DESIGN.md §2)");
    for ds in datasets {
        let spec = ds.spec();
        let scale = default_scale(*ds);
        let d = ds.generate(scale);
        println!(
            "  {}: n={} (paper {}), d={}, k={}, C={}, gamma={}, scale={:.4}",
            spec.name,
            d.n(),
            spec.cardinality,
            spec.dimension,
            spec.classes,
            spec.c,
            spec.gamma,
            scale
        );
    }
}

/// A deterministic subset of a dataset (first `n` rows), for quick benches.
pub fn head(data: &Dataset, n: usize) -> Dataset {
    let rows: Vec<usize> = (0..n.min(data.n())).collect();
    data.select(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_small() {
        for ds in PaperDataset::all() {
            let s = default_scale(ds);
            assert!(s > 0.0 && s <= 0.15, "{:?}", ds);
        }
    }

    #[test]
    fn params_match_table2() {
        let p = params_for(PaperDataset::Mnist);
        assert_eq!(p.c, 10.0);
        assert!(matches!(p.kernel, gmp_svm::KernelKind::Rbf { gamma } if gamma == 0.125));
    }

    #[test]
    fn tsv_roundtrip() {
        let m = Measurement {
            dataset: "X".into(),
            backend: "B".into(),
            compute_backend: "scalar".into(),
            train_sim_s: 1.5,
            predict_sim_s: 0.25,
            train_wall_s: 2.0,
            predict_wall_s: 0.5,
            train_kernel_evals: 10,
            train_rows_computed: 3,
            predict_kernel_evals: 5,
            host_threads: 4,
            train_error: 0.01,
            test_error: 0.02,
            bias: -0.5,
            converged: true,
        };
        let dir = std::env::temp_dir().join("gmp_tsv_test.tsv");
        write_tsv(&dir, std::slice::from_ref(&m));
        let back = read_tsv(&dir).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].dataset, "X");
        assert_eq!(back[0].compute_backend, "scalar");
        assert_eq!(back[0].train_kernel_evals, 10);
        assert_eq!(back[0].train_rows_computed, 3);
        assert_eq!(back[0].host_threads, 4);
        assert!(back[0].converged);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let m = Measurement {
            dataset: "adult \"q\"".into(),
            backend: "gmp\\x".into(),
            compute_backend: "blocked".into(),
            train_sim_s: 1.5,
            predict_sim_s: 0.25,
            train_wall_s: 2.0,
            predict_wall_s: 0.5,
            train_kernel_evals: 10,
            train_rows_computed: 3,
            predict_kernel_evals: 5,
            host_threads: 2,
            train_error: 0.01,
            test_error: f64::NAN,
            bias: -0.5,
            converged: true,
        };
        let path = std::env::temp_dir().join("gmp_bench_json_test.json");
        write_bench_json(&path, "table3", &[m]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\": \"table3\""));
        assert!(text.contains("\"dataset\": \"adult \\\"q\\\"\""));
        assert!(text.contains("\"backend\": \"gmp\\\\x\""));
        assert!(text.contains("\"compute_backend\": \"blocked\""));
        assert!(text.contains("\"host_threads\": 2"));
        assert!(text.contains("\"test_error\": null"));
        // Balanced braces/brackets => structurally sound for this flat shape.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn fmt_seconds() {
        assert_eq!(fmt_s(123.4), "123");
        assert_eq!(fmt_s(1.234), "1.23");
        assert_eq!(fmt_s(0.1234), "0.1234");
    }

    #[test]
    fn five_backends() {
        assert_eq!(table3_backends().len(), 5);
    }
}
