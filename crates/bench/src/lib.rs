//! Experiment harness: everything the `table*`/`fig*` binaries share.
//!
//! Each binary regenerates one table or figure of the paper (see
//! `DESIGN.md` §4). Scaled-down synthetic stand-ins replace the public
//! datasets (the scale is printed with every run); *simulated* seconds on
//! the modeled hardware are the paper-comparable quantity, and raw
//! counters (kernel evaluations, rows computed) are printed alongside as
//! the hardware-independent ground truth.

use gmp_datasets::{Dataset, PaperDataset, SplitDataset};
use gmp_svm::predict::error_rate;
use gmp_svm::{Backend, MpSvmTrainer, SvmParams};
use serde::{Deserialize, Serialize};

/// One (dataset, backend) measurement: the unit of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Dataset name.
    pub dataset: String,
    /// Backend label.
    pub backend: String,
    /// Simulated training seconds.
    pub train_sim_s: f64,
    /// Simulated prediction seconds.
    pub predict_sim_s: f64,
    /// Wall-clock training seconds on this host.
    pub train_wall_s: f64,
    /// Wall-clock prediction seconds on this host.
    pub predict_wall_s: f64,
    /// Kernel values computed during training.
    pub train_kernel_evals: u64,
    /// Kernel values computed during prediction.
    pub predict_kernel_evals: u64,
    /// Training-set error rate.
    pub train_error: f64,
    /// Test-set error rate.
    pub test_error: f64,
    /// Bias (rho) of the last binary SVM — Table 4's comparison quantity.
    pub bias: f64,
    /// Did every binary problem converge?
    pub converged: bool,
}

/// Default reduced scale per dataset: targets a few hundred instances so
/// the full 5-backend sweep finishes on a laptop-class host. Override with
/// the `GMP_BENCH_SCALE` environment variable (a multiplier).
pub fn default_scale(ds: PaperDataset) -> f64 {
    let base = match ds {
        PaperDataset::Adult => 0.1,
        PaperDataset::Rcv1 => 0.12,
        PaperDataset::RealSim => 0.034,
        PaperDataset::Webdata => 0.055,
        PaperDataset::Cifar10 => 0.02,
        PaperDataset::Connect4 => 0.021,
        PaperDataset::Mnist => 0.024,
        PaperDataset::Mnist8m => 0.00028,
        PaperDataset::News20 => 0.09,
    };
    base * scale_multiplier()
}

/// The `GMP_BENCH_SCALE` multiplier (default 1).
pub fn scale_multiplier() -> f64 {
    std::env::var("GMP_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// The paper's solver parameters for a dataset (Table 2's C and γ; the
/// §4.1 buffer configuration clamped to the reduced problem size).
pub fn params_for(ds: PaperDataset) -> SvmParams {
    let spec = ds.spec();
    // Working set / buffer scaled to the reduced problem size the same way
    // the paper's 1024-row buffer relates to its datasets; the baseline's
    // LRU cache gets the same number of rows so the comparison is
    // equal-memory.
    let mut p = SvmParams::default()
        .with_c(spec.c)
        .with_rbf(spec.gamma)
        .with_working_set(128, 64);
    p.cache_rows = 128;
    p
}

/// Generate the (cached-per-call) split for a dataset at its default scale.
pub fn split_for(ds: PaperDataset) -> SplitDataset {
    ds.generate_split(default_scale(ds))
}

/// The five Table-3 backends in column order.
pub fn table3_backends() -> Vec<Backend> {
    vec![
        Backend::libsvm(),
        Backend::libsvm_openmp(),
        Backend::gpu_baseline_default(),
        Backend::cmp_svm(),
        Backend::gmp_default(),
    ]
}

/// Train + predict one (dataset, backend) pair and collect the numbers.
pub fn measure(ds: PaperDataset, backend: &Backend, params: SvmParams) -> Measurement {
    let split = split_for(ds);
    measure_on(&split, ds.spec().name, backend, params)
}

/// Like [`measure`] but over a pre-generated split (so sweeps reuse data).
pub fn measure_on(
    split: &SplitDataset,
    name: &str,
    backend: &Backend,
    params: SvmParams,
) -> Measurement {
    let outcome = MpSvmTrainer::new(params, backend.clone())
        .train(&split.train)
        .expect("training failed");
    let train_pred = outcome
        .model
        .predict(&split.train.x, backend)
        .expect("train prediction failed");
    let test_pred = outcome
        .model
        .predict(&split.test.x, backend)
        .expect("test prediction failed");
    Measurement {
        dataset: name.to_string(),
        backend: backend.label(),
        train_sim_s: outcome.report.sim_s,
        predict_sim_s: test_pred.report.sim_s,
        train_wall_s: outcome.report.wall_s,
        predict_wall_s: test_pred.report.wall_s,
        train_kernel_evals: outcome.report.kernel_evals,
        predict_kernel_evals: test_pred.report.kernel_evals,
        train_error: error_rate(&train_pred.labels, &split.train.y),
        test_error: error_rate(&test_pred.labels, &split.test.y),
        bias: outcome.model.last_bias(),
        converged: outcome.report.all_converged(),
    }
}

/// Format seconds compactly.
pub fn fmt_s(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Print a markdown table: `headers` then rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Where result TSVs are written so figure binaries can reuse table runs.
pub fn results_dir() -> std::path::PathBuf {
    let p = std::path::PathBuf::from("target/gmp-results");
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Write measurements as TSV.
pub fn write_tsv(path: &std::path::Path, ms: &[Measurement]) {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str(
        "dataset\tbackend\ttrain_sim_s\tpredict_sim_s\ttrain_wall_s\tpredict_wall_s\ttrain_kevals\tpredict_kevals\ttrain_err\ttest_err\tbias\tconverged\n",
    );
    for m in ms {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            m.dataset,
            m.backend,
            m.train_sim_s,
            m.predict_sim_s,
            m.train_wall_s,
            m.predict_wall_s,
            m.train_kernel_evals,
            m.predict_kernel_evals,
            m.train_error,
            m.test_error,
            m.bias,
            m.converged
        );
    }
    std::fs::write(path, out).expect("write results tsv");
}

/// Read measurements back from TSV (None if absent/corrupt).
pub fn read_tsv(path: &std::path::Path) -> Option<Vec<Measurement>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in text.lines().skip(1) {
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 12 {
            return None;
        }
        out.push(Measurement {
            dataset: f[0].to_string(),
            backend: f[1].to_string(),
            train_sim_s: f[2].parse().ok()?,
            predict_sim_s: f[3].parse().ok()?,
            train_wall_s: f[4].parse().ok()?,
            predict_wall_s: f[5].parse().ok()?,
            train_kernel_evals: f[6].parse().ok()?,
            predict_kernel_evals: f[7].parse().ok()?,
            train_error: f[8].parse().ok()?,
            test_error: f[9].parse().ok()?,
            bias: f[10].parse().ok()?,
            converged: f[11].parse().ok()?,
        });
    }
    Some(out)
}

/// Banner printed by every experiment binary: scale disclosure.
pub fn print_banner(exp: &str, datasets: &[PaperDataset]) {
    println!("# {exp}");
    println!("(synthetic stand-ins; scale vs. published cardinality shown per dataset — see DESIGN.md §2)");
    for ds in datasets {
        let spec = ds.spec();
        let scale = default_scale(*ds);
        let d = ds.generate(scale);
        println!(
            "  {}: n={} (paper {}), d={}, k={}, C={}, gamma={}, scale={:.4}",
            spec.name,
            d.n(),
            spec.cardinality,
            spec.dimension,
            spec.classes,
            spec.c,
            spec.gamma,
            scale
        );
    }
}

/// A deterministic subset of a dataset (first `n` rows), for quick benches.
pub fn head(data: &Dataset, n: usize) -> Dataset {
    let rows: Vec<usize> = (0..n.min(data.n())).collect();
    data.select(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_small() {
        for ds in PaperDataset::all() {
            let s = default_scale(ds);
            assert!(s > 0.0 && s <= 0.15, "{:?}", ds);
        }
    }

    #[test]
    fn params_match_table2() {
        let p = params_for(PaperDataset::Mnist);
        assert_eq!(p.c, 10.0);
        assert!(matches!(p.kernel, gmp_svm::KernelKind::Rbf { gamma } if gamma == 0.125));
    }

    #[test]
    fn tsv_roundtrip() {
        let m = Measurement {
            dataset: "X".into(),
            backend: "B".into(),
            train_sim_s: 1.5,
            predict_sim_s: 0.25,
            train_wall_s: 2.0,
            predict_wall_s: 0.5,
            train_kernel_evals: 10,
            predict_kernel_evals: 5,
            train_error: 0.01,
            test_error: 0.02,
            bias: -0.5,
            converged: true,
        };
        let dir = std::env::temp_dir().join("gmp_tsv_test.tsv");
        write_tsv(&dir, &[m.clone()]);
        let back = read_tsv(&dir).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].dataset, "X");
        assert_eq!(back[0].train_kernel_evals, 10);
        assert!(back[0].converged);
    }

    #[test]
    fn fmt_seconds() {
        assert_eq!(fmt_s(123.4), "123");
        assert_eq!(fmt_s(1.234), "1.23");
        assert_eq!(fmt_s(0.1234), "0.1234");
    }

    #[test]
    fn five_backends() {
        assert_eq!(table3_backends().len(), 5);
    }
}
