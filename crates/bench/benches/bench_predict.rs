//! Criterion micro-benchmark behind Table 3's prediction columns: shared
//! (GMP-SVM) vs unshared (GPU baseline) prediction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmp_datasets::PaperDataset;
use gmp_svm::{Backend, MpSvmTrainer, SvmParams};

fn bench_predict(c: &mut Criterion) {
    let data = PaperDataset::Mnist.generate(0.002);
    let params = SvmParams::default()
        .with_c(10.0)
        .with_rbf(0.125)
        .with_working_set(64, 32);
    let model = MpSvmTrainer::new(params, Backend::gmp_default())
        .train(&data)
        .unwrap()
        .model;
    let mut group = c.benchmark_group("table3_predict");
    group.sample_size(10);
    for backend in [Backend::gmp_default(), Backend::gpu_baseline_default()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(backend.label()),
            &backend,
            |b, backend| b.iter(|| model.predict(&data.x, backend).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
