//! Criterion micro-benchmark behind Figure 7: batched solver wall time as
//! q (new violators per round) varies with a fixed buffer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmp_datasets::PaperDataset;
use gmp_gpusim::CpuExecutor;
use gmp_kernel::{BufferedRows, KernelKind, KernelOracle, ReplacementPolicy};
use gmp_smo::{BatchedParams, BatchedSmoSolver, SmoParams};
use std::sync::Arc;

fn bench_q(c: &mut Criterion) {
    let data = PaperDataset::Webdata.generate(0.002);
    let y: Vec<f64> = data
        .y
        .iter()
        .map(|&v| if v == 0 { 1.0 } else { -1.0 })
        .collect();
    let oracle = Arc::new(KernelOracle::new(
        Arc::new(data.x.clone()),
        KernelKind::Rbf { gamma: 0.5 },
    ));
    let bs = 128usize;
    let mut group = c.benchmark_group("fig7_q");
    group.sample_size(10);
    for q in [8usize, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                let exec = CpuExecutor::xeon(1);
                let mut rows =
                    BufferedRows::new(oracle.clone(), bs, ReplacementPolicy::FifoBatch, None)
                        .unwrap();
                let params = BatchedParams {
                    base: SmoParams {
                        c: 10.0,
                        ..Default::default()
                    },
                    ws_size: bs,
                    q,
                    inner_relax: 0.1,
                    max_inner: bs * 4,
                };
                BatchedSmoSolver::new(params).solve(&y, &mut rows, &exec)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_q);
criterion_main!(benches);
