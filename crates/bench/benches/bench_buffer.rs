//! Criterion micro-benchmark behind Figure 6: batched solver wall time as
//! the buffer (working set) size varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmp_datasets::PaperDataset;
use gmp_gpusim::CpuExecutor;
use gmp_kernel::{BufferedRows, KernelKind, KernelOracle, ReplacementPolicy};
use gmp_smo::{BatchedParams, BatchedSmoSolver, SmoParams};
use std::sync::Arc;

fn bench_buffer(c: &mut Criterion) {
    let data = PaperDataset::Adult.generate(0.003);
    let y: Vec<f64> = data
        .y
        .iter()
        .map(|&v| if v == 0 { 1.0 } else { -1.0 })
        .collect();
    let oracle = Arc::new(KernelOracle::new(
        Arc::new(data.x.clone()),
        KernelKind::Rbf { gamma: 0.5 },
    ));
    let mut group = c.benchmark_group("fig6_buffer_size");
    group.sample_size(10);
    for bs in [16usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, &bs| {
            b.iter(|| {
                let exec = CpuExecutor::xeon(1);
                let mut rows =
                    BufferedRows::new(oracle.clone(), bs, ReplacementPolicy::FifoBatch, None)
                        .unwrap();
                let params = BatchedParams {
                    base: SmoParams {
                        c: 100.0,
                        ..Default::default()
                    },
                    ws_size: bs,
                    q: bs / 2,
                    inner_relax: 0.1,
                    max_inner: bs * 4,
                };
                BatchedSmoSolver::new(params).solve(&y, &mut rows, &exec)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_buffer);
criterion_main!(benches);
