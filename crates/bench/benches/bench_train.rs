//! Criterion micro-benchmark behind Table 3's training columns: wall-clock
//! training time per backend on a small Connect-4 stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmp_datasets::PaperDataset;
use gmp_svm::{Backend, MpSvmTrainer, SvmParams};

fn bench_train(c: &mut Criterion) {
    let data = PaperDataset::Connect4.generate(0.002);
    let params = SvmParams::default()
        .with_c(1.0)
        .with_rbf(0.3)
        .with_working_set(64, 32);
    let mut group = c.benchmark_group("table3_train");
    group.sample_size(10);
    for backend in [
        Backend::libsvm(),
        Backend::gpu_baseline_default(),
        Backend::gmp_default(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(backend.label()),
            &backend,
            |b, backend| {
                b.iter(|| {
                    MpSvmTrainer::new(params, backend.clone())
                        .train(&data)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
