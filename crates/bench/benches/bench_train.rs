//! Criterion micro-benchmark behind Table 3's training columns: wall-clock
//! training time per backend on a small Connect-4 stand-in.
//!
//! Besides the criterion timing loop, a `--bench` run writes the same
//! machine-readable `BENCH_train.json` artifact as the `table3` binary
//! (wall/sim seconds, kernel evals, rows computed per backend), including
//! a GMP host-thread 1-vs-4 A/B and a scalar-vs-blocked compute-backend
//! A/B on Adult and MNIST, so perf is trackable across changes.

use criterion::{criterion_group, BenchmarkId, Criterion};
use gmp_bench::{measure_on_with_threads, params_for, write_bench_json, Measurement};
use gmp_datasets::PaperDataset;
use gmp_svm::{Backend, ComputeBackendKind, MpSvmTrainer, SvmParams};

const SCALE: f64 = 0.002;

fn bench_params() -> SvmParams {
    SvmParams::default()
        .with_c(1.0)
        .with_rbf(0.3)
        .with_working_set(64, 32)
}

fn bench_train(c: &mut Criterion) {
    let data = PaperDataset::Connect4.generate(SCALE);
    let params = bench_params();
    let mut group = c.benchmark_group("table3_train");
    group.sample_size(10);
    for backend in [
        Backend::libsvm(),
        Backend::gpu_baseline_default(),
        Backend::gmp_default(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(backend.label()),
            &backend,
            |b, backend| {
                b.iter(|| {
                    MpSvmTrainer::new(params, backend.clone())
                        .train(&data)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn emit_bench_json() {
    let split = PaperDataset::Connect4.generate_split(SCALE);
    let name = PaperDataset::Connect4.spec().name;
    let params = bench_params();
    let mut ms: Vec<Measurement> = Vec::new();
    for backend in [
        Backend::libsvm(),
        Backend::gpu_baseline_default(),
        Backend::gmp_default(),
    ] {
        ms.push(measure_on_with_threads(
            &split, name, &backend, params, None,
        ));
    }
    // Host-parallelism A/B: same GMP training, 1 vs. 4 real host threads.
    for threads in [1usize, 4] {
        let mut m =
            measure_on_with_threads(&split, name, &Backend::gmp_default(), params, Some(threads));
        m.backend = format!("{} (host_threads={threads})", m.backend);
        ms.push(m);
    }
    // Compute-backend A/B: identical GMP training on Adult and MNIST
    // stand-ins, scalar vs. blocked kernels. Bits (and therefore kernel
    // evals / sim seconds) are equal by contract; the wall-clock columns
    // are the comparison.
    for (ds, scale) in [(PaperDataset::Adult, 0.02), (PaperDataset::Mnist, 0.008)] {
        let split = ds.generate_split(scale);
        let name = ds.spec().name;
        for compute in ComputeBackendKind::ALL {
            let m = measure_on_with_threads(
                &split,
                name,
                &Backend::gmp_default(),
                params_for(ds).with_compute_backend(compute),
                Some(4),
            );
            ms.push(m);
        }
    }
    let path = gmp_bench::bench_json_path();
    write_bench_json(&path, "bench_train", &ms);
    eprintln!("benchmark artifact written to {}", path.display());
}

criterion_group!(benches, bench_train);

fn main() {
    benches();
    // Criterion-compatible harnesses only run bodies under `--bench`; emit
    // the artifact on real bench runs, not under `cargo test`.
    if std::env::args().any(|a| a == "--bench") {
        emit_bench_json();
    }
}
