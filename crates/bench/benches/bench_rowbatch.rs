//! Criterion micro-benchmark behind the §3.3.1 claim: computing q kernel
//! rows as one batch is cheaper per row than computing them one by one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmp_datasets::PaperDataset;
use gmp_gpusim::CpuExecutor;
use gmp_kernel::{KernelKind, KernelOracle};
use gmp_sparse::DenseMatrix;
use std::sync::Arc;

fn bench_rowbatch(c: &mut Criterion) {
    let data = PaperDataset::Rcv1.generate(0.01);
    let oracle = Arc::new(KernelOracle::new(
        Arc::new(data.x.clone()),
        KernelKind::Rbf { gamma: 0.125 },
    ));
    let exec = CpuExecutor::xeon(1);
    let n = data.n();
    let mut group = c.benchmark_group("rowbatch_per_row");
    group.sample_size(10);
    for batch in [1usize, 8, 32, 128] {
        let rows: Vec<usize> = (0..batch).map(|i| (i * 37) % n).collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &rows, |b, rows| {
            b.iter(|| {
                let mut out = DenseMatrix::zeros(rows.len(), n);
                oracle.compute_rows(&exec, rows, &mut out);
                out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rowbatch);
criterion_main!(benches);
