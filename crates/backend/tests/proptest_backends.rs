//! Property test: the blocked backend matches the scalar backend on random
//! sparse datasets, for every kernel kind, at every thread count — within
//! 1e-12 relative tolerance (in practice bit-identical; the tolerance is
//! the documented contract floor).

use gmp_backend::{ComputeBackendKind, KernelContext, KernelKind};
use gmp_gpusim::CpuExecutor;
use gmp_sparse::{CsrMatrix, DenseMatrix};
use proptest::prelude::*;

/// Random sparse dataset with deliberately nasty rows: empty rows and
/// single-nnz rows are drawn with real probability mass.
fn csr(nrows: std::ops::Range<usize>, ncols: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec(
        prop_oneof![
            // Empty row.
            1 => Just(Vec::new()),
            // Single-nnz row.
            2 => (0..ncols, -3.0..3.0f64).prop_map(|(c, v)| vec![(c, v)]),
            // General sparse row.
            5 => proptest::collection::vec((0..ncols, -3.0..3.0f64), 1..6),
        ],
        nrows,
    )
    .prop_map(move |rows| {
        let dense: Vec<Vec<f64>> = rows
            .iter()
            .map(|entries| {
                let mut row = vec![0.0; ncols];
                for &(c, v) in entries {
                    row[c] = v;
                }
                row
            })
            .collect();
        CsrMatrix::from_dense(&dense, ncols)
    })
}

fn kernel_kind() -> impl Strategy<Value = KernelKind> {
    prop_oneof![
        (0.05..2.0f64).prop_map(|gamma| KernelKind::Rbf { gamma }),
        Just(KernelKind::Linear),
        (0.1..1.5f64, -1.0..1.0f64, 2u32..4).prop_map(|(gamma, coef0, degree)| KernelKind::Poly {
            gamma,
            coef0,
            degree
        }),
        (0.1..1.5f64, -1.0..1.0f64).prop_map(|(gamma, coef0)| KernelKind::Sigmoid { gamma, coef0 }),
    ]
}

fn rel_close(a: f64, b: f64) -> bool {
    let denom = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() / denom <= 1e-12
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matches_scalar_on_batch_rows(
        data in csr(1..9, 7),
        kind in kernel_kind(),
        threads in 1usize..5,
    ) {
        let norms = data.row_norms_sq();
        let n = data.nrows();
        let ctx = KernelContext { data: &data, norms: &norms, kind, host_threads: threads };
        let row_ids: Vec<usize> = (0..n).rev().collect();
        let mut outs: Vec<DenseMatrix> = Vec::new();
        for sel in ComputeBackendKind::ALL {
            let mut out = DenseMatrix::zeros(n, n);
            sel.instance().batch_kernel_rows(&ctx, &CpuExecutor::xeon(1), &row_ids, 0..n, &mut out);
            outs.push(out);
        }
        let (scalar, blocked) = (&outs[0], &outs[1]);
        for (a, b) in scalar.as_slice().iter().zip(blocked.as_slice()) {
            prop_assert!(rel_close(*a, *b), "scalar={a} blocked={b} kind={kind:?}");
        }
    }

    #[test]
    fn blocked_matches_scalar_on_test_sv_matrix(
        (data, test) in (csr(1..7, 6), csr(1..7, 6)),
        kind in kernel_kind(),
        threads in 1usize..4,
    ) {
        let norms = data.row_norms_sq();
        let test_norms: Vec<f64> = (0..test.nrows()).map(|r| test.row(r).norm_sq()).collect();
        let ctx = KernelContext { data: &data, norms: &norms, kind, host_threads: threads };
        let rows: Vec<usize> = (0..test.nrows()).collect();
        let mut outs: Vec<DenseMatrix> = Vec::new();
        for sel in ComputeBackendKind::ALL {
            let mut out = DenseMatrix::zeros(rows.len(), data.nrows());
            sel.instance().test_sv_matrix(&ctx, &CpuExecutor::xeon(1), &test, &rows, &test_norms, &mut out);
            outs.push(out);
        }
        let (scalar, blocked) = (&outs[0], &outs[1]);
        for (a, b) in scalar.as_slice().iter().zip(blocked.as_slice()) {
            prop_assert!(rel_close(*a, *b), "scalar={a} blocked={b} kind={kind:?}");
        }
    }
}
