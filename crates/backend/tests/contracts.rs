//! The three backend contracts, checked pairwise across every selectable
//! backend: bit-identical values, identical simulated cost, exact
//! owner-attributed eval counts.

use gmp_backend::{
    ComputeBackend, ComputeBackendKind, KernelContext, KernelKind, RowScorer, ScalarBackend,
};
use gmp_gpusim::{CpuExecutor, Executor};
use gmp_sparse::{CsrMatrix, DenseMatrix};

fn mixed_data() -> CsrMatrix {
    // Deliberately awkward: an empty row, a single-nnz row, dense rows,
    // duplicated patterns.
    CsrMatrix::from_dense(
        &[
            vec![1.0, 0.0, -2.0, 0.5, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0, 0.0, 0.0],
            vec![-1.5, 2.0, 0.25, -0.75, 1.0],
            vec![1.0, 0.0, -2.0, 0.5, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 4.0],
            vec![2.0, -1.0, 0.0, 3.0, 0.0],
        ],
        5,
    )
}

fn kinds() -> [KernelKind; 4] {
    [
        KernelKind::Rbf { gamma: 0.7 },
        KernelKind::Linear,
        KernelKind::Poly {
            gamma: 0.5,
            coef0: 1.0,
            degree: 3,
        },
        KernelKind::Sigmoid {
            gamma: 0.3,
            coef0: -0.5,
        },
    ]
}

#[test]
fn backends_agree_bitwise_on_batch_rows() {
    let data = mixed_data();
    let norms = data.row_norms_sq();
    for kind in kinds() {
        for threads in [1usize, 3] {
            let ctx = KernelContext {
                data: &data,
                norms: &norms,
                kind,
                host_threads: threads,
            };
            let row_ids = [3usize, 0, 6, 1, 2];
            let cols = 1..6;
            let mut blocks: Vec<DenseMatrix> = Vec::new();
            let mut evals: Vec<u64> = Vec::new();
            let mut sims: Vec<u64> = Vec::new();
            for kindsel in ComputeBackendKind::ALL {
                let backend = kindsel.instance();
                let exec = CpuExecutor::xeon(1);
                let mut out = DenseMatrix::zeros(row_ids.len(), cols.len());
                evals.push(backend.batch_kernel_rows(
                    &ctx,
                    &exec,
                    &row_ids,
                    cols.clone(),
                    &mut out,
                ));
                sims.push(exec.elapsed().to_bits());
                blocks.push(out);
            }
            for b in &blocks[1..] {
                assert_eq!(
                    b.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    blocks[0]
                        .as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    "kind={kind:?} threads={threads}"
                );
            }
            assert!(evals.iter().all(|&e| e == (row_ids.len() * 5) as u64));
            assert!(
                sims.iter().all(|&s| s == sims[0]),
                "sim_s must not depend on backend"
            );
        }
    }
}

#[test]
fn backends_agree_bitwise_on_test_sv_matrix() {
    let data = mixed_data();
    let norms = data.row_norms_sq();
    let test = CsrMatrix::from_dense(
        &[
            vec![0.5, 0.0, 1.0, 0.0, -1.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 2.5, 0.0, 0.0, 0.0],
        ],
        5,
    );
    let test_norms: Vec<f64> = (0..test.nrows()).map(|r| test.row(r).norm_sq()).collect();
    for kind in kinds() {
        for threads in [1usize, 4] {
            let ctx = KernelContext {
                data: &data,
                norms: &norms,
                kind,
                host_threads: threads,
            };
            let rows = [2usize, 0, 1];
            let mut blocks: Vec<DenseMatrix> = Vec::new();
            for kindsel in ComputeBackendKind::ALL {
                let backend = kindsel.instance();
                let exec = CpuExecutor::xeon(1);
                let mut out = DenseMatrix::zeros(rows.len(), data.nrows());
                let evals =
                    backend.test_sv_matrix(&ctx, &exec, &test, &rows, &test_norms, &mut out);
                assert_eq!(evals, (rows.len() * data.nrows()) as u64);
                blocks.push(out);
            }
            for b in &blocks[1..] {
                assert_eq!(b, &blocks[0], "kind={kind:?} threads={threads}");
            }
        }
    }
}

#[test]
fn multithreaded_matches_single_threaded_bitwise() {
    let data = mixed_data();
    let norms = data.row_norms_sq();
    for kindsel in ComputeBackendKind::ALL {
        let backend = kindsel.instance();
        let row_ids: Vec<usize> = (0..data.nrows()).collect();
        let mut single = DenseMatrix::zeros(row_ids.len(), data.nrows());
        let mut multi = DenseMatrix::zeros(row_ids.len(), data.nrows());
        for (out, threads) in [(&mut single, 1usize), (&mut multi, 5)] {
            let ctx = KernelContext {
                data: &data,
                norms: &norms,
                kind: KernelKind::Rbf { gamma: 1.3 },
                host_threads: threads,
            };
            backend.batch_kernel_rows(&ctx, &CpuExecutor::xeon(1), &row_ids, 0..data.nrows(), out);
        }
        assert_eq!(single, multi, "backend={}", backend.name());
    }
}

#[test]
fn empty_launches_compute_nothing_and_charge_nothing() {
    let data = mixed_data();
    let norms = data.row_norms_sq();
    for kindsel in ComputeBackendKind::ALL {
        let backend = kindsel.instance();
        let ctx = KernelContext {
            data: &data,
            norms: &norms,
            kind: KernelKind::Linear,
            host_threads: 2,
        };
        let exec = CpuExecutor::xeon(1);
        let mut out = DenseMatrix::zeros(4, 0);
        assert_eq!(
            backend.batch_kernel_rows(&ctx, &exec, &[1, 2], 3..3, &mut out),
            0
        );
        let mut out = DenseMatrix::zeros(0, 7);
        assert_eq!(
            backend.batch_kernel_rows(&ctx, &exec, &[], 0..7, &mut out),
            0
        );
        assert_eq!(exec.elapsed(), 0.0);
    }
}

#[test]
fn score_rows_matches_manual_sums_and_preserves_columns() {
    let block = DenseMatrix::from_vec(
        3,
        4,
        vec![
            1.0, 2.0, 3.0, 4.0, 0.5, -1.0, 0.0, 2.0, -2.0, 0.25, 1.5, -0.5,
        ],
    );
    let idx = [0u32, 2, 3];
    let coef_gather = [0.5, -1.0, 2.0];
    let coef_dense = [1.0, 0.0, -0.5, 0.25];
    let scorers = [
        RowScorer {
            out_col: 0,
            sv_idx: Some(&idx),
            coef: &coef_gather,
            rho: 0.1,
        },
        RowScorer {
            out_col: 2,
            sv_idx: None,
            coef: &coef_dense,
            rho: -1.0,
        },
    ];
    for threads in [1usize, 3] {
        let mut out = vec![vec![9.0; 3]; 3];
        let exec = CpuExecutor::xeon(1);
        ScalarBackend.score_rows(&exec, &block, &scorers, threads, &mut out);
        assert!(exec.elapsed() > 0.0);
        for (ri, row) in out.iter().enumerate() {
            let krow = block.row(ri);
            let gathered: f64 = coef_gather
                .iter()
                .zip(idx.iter())
                .map(|(c, &i)| c * krow[i as usize])
                .sum();
            let dense: f64 = coef_dense.iter().zip(krow).map(|(c, k)| c * k).sum();
            assert_eq!(row[0].to_bits(), (gathered - 0.1).to_bits());
            assert_eq!(row[2].to_bits(), (dense - (-1.0)).to_bits());
            // Unowned column untouched.
            assert_eq!(row[1], 9.0, "threads={threads}");
        }
    }
}

#[test]
fn env_selection_falls_back_to_scalar() {
    // Not set in the test environment unless the CI matrix sets it; both
    // legs must parse to a known kind.
    let kind = ComputeBackendKind::from_env();
    assert!(ComputeBackendKind::ALL.contains(&kind));
}
