//! The simulated-cost accounting contract shared by every backend.
//!
//! The cost model describes the *modeled device* executing a batched
//! launch — not the host loop structure a backend happens to use — so all
//! backends charge these helpers verbatim. Swapping backends changes host
//! wall-clock time but never `sim_s`, eval counts, or any other report
//! field; the A/B rows in `BENCH_train.json` rely on this.

use crate::KernelContext;
use gmp_gpusim::cost::KernelCost;
use gmp_gpusim::Executor;
use gmp_sparse::CsrMatrix;

/// Charge one §3.3.1 batched working-set launch (`row_ids` × a `width`-wide
/// column range of `ctx.data`) and return the kernel values it computes.
pub fn charge_row_batch(
    ctx: &KernelContext<'_>,
    exec: &dyn Executor,
    row_ids: &[usize],
    width: u64,
) -> u64 {
    let q = row_ids.len() as u64;
    let values = q * width;
    let data = ctx.data;
    let n = data.nrows().max(1);
    // Dot-product flops: proportional to data nnz per batch row
    // (scatter-gather touches every stored entry of the target range;
    // we approximate with the full-matrix density).
    let avg_nnz = data.nnz() as f64 / n as f64;
    let dot_flops = (2.0 * avg_nnz * values as f64) as u64;
    let batch_bytes: u64 = row_ids.iter().map(|&r| 12 * data.row(r).nnz() as u64).sum();
    // The whole target range of the data matrix is streamed once per
    // *batch* — the §3.3.1 amortization.
    let data_bytes = (data.mem_bytes() as f64 * width as f64 / n as f64) as u64;
    exec.charge(KernelCost::row_batch(
        q,
        width,
        dot_flops + values * ctx.kind.map_flops(),
        batch_bytes,
        data_bytes,
    ));
    values
}

/// Charge one §3.5 cross launch (`src_rows` of `src` against every row of
/// `ctx.data`) and return the kernel values it computes.
pub fn charge_cross_batch(
    ctx: &KernelContext<'_>,
    exec: &dyn Executor,
    src: &CsrMatrix,
    src_rows: &[usize],
) -> u64 {
    let values = (src_rows.len() * ctx.data.nrows()) as u64;
    let dot_flops = 2 * ctx.data.nnz() as u64 * src_rows.len() as u64;
    let batch_bytes: u64 = src_rows.iter().map(|&r| 12 * src.row(r).nnz() as u64).sum();
    exec.charge(KernelCost::row_batch(
        src_rows.len() as u64,
        ctx.data.nrows() as u64,
        dot_flops + values * ctx.kind.map_flops(),
        batch_bytes,
        ctx.data.mem_bytes() as u64,
    ));
    values
}
