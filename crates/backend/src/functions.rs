//! The four kernel functions of §2.1 of the paper.

use serde::{Deserialize, Serialize};

/// A kernel function `K(x_i, x_j)` evaluated from the dot product
/// `x_i · x_j` and (for RBF) the squared norms of both operands.
///
/// Evaluating from precomputed dot products is what makes batched kernel
/// rows a matrix product (§3.3.1): the expensive part is the sparse dot,
/// the kernel itself is a cheap scalar map applied afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelKind {
    /// Gaussian `exp(-γ ||x_i - x_j||²)` — the kernel used throughout the
    /// paper's evaluation.
    Rbf {
        /// Width parameter γ.
        gamma: f64,
    },
    /// Linear `x_i · x_j`.
    Linear,
    /// Polynomial `(γ x_i · x_j + r)^d`.
    Poly {
        /// Scale γ (the paper's `a`).
        gamma: f64,
        /// Offset `r`.
        coef0: f64,
        /// Degree `d`.
        degree: u32,
    },
    /// Sigmoid `tanh(γ x_i · x_j + r)`.
    Sigmoid {
        /// Scale γ (the paper's `a`).
        gamma: f64,
        /// Offset `r`.
        coef0: f64,
    },
}

impl KernelKind {
    /// Evaluate `K(x_i, x_j)` given `dot = x_i·x_j`, `norm_i = ||x_i||²`,
    /// `norm_j = ||x_j||²`.
    #[inline]
    pub fn eval(&self, dot: f64, norm_i: f64, norm_j: f64) -> f64 {
        match *self {
            KernelKind::Rbf { gamma } => {
                // ||a-b||² = ||a||² + ||b||² - 2 a·b; clamp the tiny negative
                // values floating-point cancellation can produce.
                let d2 = (norm_i + norm_j - 2.0 * dot).max(0.0);
                (-gamma * d2).exp()
            }
            KernelKind::Linear => dot,
            KernelKind::Poly {
                gamma,
                coef0,
                degree,
            } => (gamma * dot + coef0).powi(degree as i32),
            KernelKind::Sigmoid { gamma, coef0 } => (gamma * dot + coef0).tanh(),
        }
    }

    /// `K(x, x)` from the squared norm alone.
    #[inline]
    pub fn self_eval(&self, norm: f64) -> f64 {
        self.eval(norm, norm, norm)
    }

    /// FLOPs of the scalar map per kernel value (beyond the dot product),
    /// for the cost model. `exp`/`tanh`/`pow` are charged as multi-FLOP ops.
    pub fn map_flops(&self) -> u64 {
        match self {
            KernelKind::Rbf { .. } => 8, // 3 adds/muls + exp(~5)
            KernelKind::Linear => 0,
            KernelKind::Poly { .. } => 7,    // fma + pow(~5)
            KernelKind::Sigmoid { .. } => 7, // fma + tanh(~5)
        }
    }

    /// Whether squared row norms are required (only RBF needs them).
    pub fn needs_norms(&self) -> bool {
        matches!(self, KernelKind::Rbf { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_self_is_one() {
        let k = KernelKind::Rbf { gamma: 0.5 };
        assert_eq!(k.self_eval(123.4), 1.0);
    }

    #[test]
    fn rbf_matches_definition() {
        let k = KernelKind::Rbf { gamma: 0.5 };
        // x = (1,0), y = (0,1): ||x-y||² = 2
        let v = k.eval(0.0, 1.0, 1.0);
        assert!((v - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn rbf_clamps_negative_distance() {
        let k = KernelKind::Rbf { gamma: 1.0 };
        // Slightly inconsistent inputs due to rounding: distance would be -1e-17.
        let v = k.eval(1.0 + 5e-18, 1.0, 1.0);
        assert!(v <= 1.0 && v > 0.999999);
    }

    #[test]
    fn linear_is_dot() {
        assert_eq!(KernelKind::Linear.eval(3.5, 9.9, 1.1), 3.5);
        assert_eq!(KernelKind::Linear.self_eval(4.0), 4.0);
    }

    #[test]
    fn poly_matches_definition() {
        let k = KernelKind::Poly {
            gamma: 2.0,
            coef0: 1.0,
            degree: 3,
        };
        assert_eq!(k.eval(1.0, 0.0, 0.0), 27.0);
    }

    #[test]
    fn sigmoid_matches_definition() {
        let k = KernelKind::Sigmoid {
            gamma: 1.0,
            coef0: 0.0,
        };
        assert!((k.eval(0.5, 0.0, 0.0) - 0.5f64.tanh()).abs() < 1e-15);
    }

    #[test]
    fn rbf_symmetric_and_bounded() {
        let k = KernelKind::Rbf { gamma: 0.1 };
        let v1 = k.eval(2.0, 5.0, 3.0);
        let v2 = k.eval(2.0, 3.0, 5.0);
        assert_eq!(v1, v2);
        assert!(v1 > 0.0 && v1 <= 1.0);
    }

    #[test]
    fn only_rbf_needs_norms() {
        assert!(KernelKind::Rbf { gamma: 1.0 }.needs_norms());
        assert!(!KernelKind::Linear.needs_norms());
        assert!(!KernelKind::Poly {
            gamma: 1.0,
            coef0: 0.0,
            degree: 2
        }
        .needs_norms());
        assert!(!KernelKind::Sigmoid {
            gamma: 1.0,
            coef0: 0.0
        }
        .needs_norms());
    }
}
