//! The cache-blocked backend: source rows are densified into a row-major
//! panel, and each target row is streamed **once per panel** instead of
//! once per source row.

use crate::split::{split_rows, with_scatter_scratch};
use crate::{cost, ComputeBackend, KernelContext};
use gmp_gpusim::pool::parallel_for_chunks;
use gmp_gpusim::Executor;
use gmp_sparse::{CsrMatrix, DenseMatrix};
use std::ops::Range;

/// Panel budget: keep the densified source rows within ~4 MiB so the panel
/// stays L2/L3-resident while a target row streams across it.
const PANEL_BYTES: usize = 4 * 1024 * 1024;
/// Diminishing returns past this many panel rows; also bounds the per-block
/// output-slice table.
const MAX_PANEL_ROWS: usize = 32;

/// Cache-blocked backend: CSR working-set rows are mirrored into a
/// row-major panel of densified rows; each target row's CSR entries are
/// then gathered against every panel row while they are hot, fusing the
/// dot product and the scalar kernel map.
///
/// Bit-identical to [`crate::ScalarBackend`]: a value is still "iterate the
/// target row's stored entries in index order against a densified source
/// row, then [`crate::KernelKind::eval`]" — blocking only reorders *which
/// (source, target) pair* is computed when, never the summation within one
/// pair.
#[derive(Debug, Default, Clone, Copy)]
pub struct BlockedBackend;

impl ComputeBackend for BlockedBackend {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn batch_kernel_rows(
        &self,
        ctx: &KernelContext<'_>,
        exec: &dyn Executor,
        row_ids: &[usize],
        cols: Range<usize>,
        out: &mut DenseMatrix,
    ) -> u64 {
        assert!(out.nrows() >= row_ids.len(), "output row mismatch");
        assert_eq!(out.ncols(), cols.len(), "output col mismatch");
        if row_ids.is_empty() || cols.is_empty() {
            return 0;
        }
        let evals = cost::charge_row_batch(ctx, exec, row_ids, cols.len() as u64);
        fill_rows_blocked(ctx, ctx.data, row_ids, ctx.norms, cols, out);
        evals
    }

    fn test_sv_matrix(
        &self,
        ctx: &KernelContext<'_>,
        exec: &dyn Executor,
        test: &CsrMatrix,
        test_rows: &[usize],
        test_norms: &[f64],
        out: &mut DenseMatrix,
    ) -> u64 {
        let n = ctx.data.nrows();
        assert!(out.nrows() >= test_rows.len(), "output row mismatch");
        assert_eq!(out.ncols(), n, "output col mismatch");
        assert_eq!(test.ncols(), ctx.data.ncols(), "dimension mismatch");
        assert_eq!(test_norms.len(), test.nrows(), "norms must cover all rows");
        if test_rows.is_empty() || n == 0 {
            return 0;
        }
        let evals = cost::charge_cross_batch(ctx, exec, test, test_rows);
        fill_rows_blocked(ctx, test, test_rows, test_norms, 0..n, out);
        evals
    }
}

/// Panel rows per block for a feature dimension of `ncols`.
fn panel_rows(ncols: usize) -> usize {
    (PANEL_BYTES / (ncols.max(1) * 8)).clamp(1, MAX_PANEL_ROWS)
}

/// Blocked fill of `out[bi][..] = K(src[src_rows[bi]], data[j])` for `j`
/// in `cols`. Source rows are processed in panels of [`panel_rows`]: the
/// panel is densified once, then the target loop runs *outside* the panel
/// loop so each target row's CSR entries stream across all panel rows
/// while hot.
fn fill_rows_blocked(
    ctx: &KernelContext<'_>,
    src: &CsrMatrix,
    src_rows: &[usize],
    src_norms: &[f64],
    cols: Range<usize>,
    out: &mut DenseMatrix,
) {
    let data = ctx.data;
    let kind = ctx.kind;
    let norms = ctx.norms;
    let ncols = data.ncols();
    let b = panel_rows(ncols);
    let rows_slices = split_rows(out, src_rows.len());
    // The per-chunk body; `panel` is a zeroed `b * ncols` scratch each
    // block scatters into and un-scatters out of.
    let run = |chunk: Range<usize>, panel: &mut [f64]| {
        // Fixed-size output-slice table (the panel is capped at
        // MAX_PANEL_ROWS) so the steady-state hot path stays allocation-free.
        let mut out_rows: [Option<&mut [f64]>; MAX_PANEL_ROWS] = [const { None }; MAX_PANEL_ROWS];
        let mut block_start = chunk.start;
        while block_start < chunk.end {
            let block = block_start..(block_start + b).min(chunk.end);
            block_start = block.end;
            for (pi, bi) in block.clone().enumerate() {
                let row = src.row(src_rows[bi]);
                row.scatter(&mut panel[pi * ncols..(pi + 1) * ncols]);
                // SAFETY: chunks partition the index range and blocks
                // partition a chunk, so each `bi` is dereferenced by
                // exactly one worker thread, exactly once per call.
                out_rows[pi] = Some(unsafe { rows_slices.row(bi) });
            }
            for (jo, j) in cols.clone().enumerate() {
                let target = data.row(j);
                let norm_j = norms[j];
                for (pi, bi) in block.clone().enumerate() {
                    let dot = target.dot_dense(&panel[pi * ncols..(pi + 1) * ncols]);
                    // Filled for every in-block `pi` just above.
                    if let Some(out_row) = out_rows[pi].as_deref_mut() {
                        out_row[jo] = kind.eval(dot, src_norms[src_rows[bi]], norm_j);
                    }
                }
            }
            for (pi, bi) in block.clone().enumerate() {
                src.row(src_rows[bi])
                    .clear_scatter(&mut panel[pi * ncols..(pi + 1) * ncols]);
            }
        }
    };
    if ctx.host_threads == 1 {
        // Allocation-light path: thread-local zeroed scratch doubles as the
        // panel (restored to zero by the per-block `clear_scatter`).
        with_scatter_scratch(b * ncols, |scratch| run(0..src_rows.len(), scratch));
        return;
    }
    parallel_for_chunks(ctx.host_threads, src_rows.len(), |chunk| {
        let mut panel = vec![0.0; b * ncols];
        run(chunk, &mut panel);
    });
}
