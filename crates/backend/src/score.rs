//! Row scoring: decision values gathered from a computed kernel block.

use gmp_gpusim::cost::KernelCost;
use gmp_gpusim::pool::parallel_update;
use gmp_gpusim::Executor;
use gmp_sparse::DenseMatrix;

/// One binary SVM's scoring job over a kernel block: writes
/// `out[ri][out_col] = Σ coef·block[ri][·] − rho` for every output row.
pub struct RowScorer<'a> {
    /// Which column of each output row this scorer owns.
    pub out_col: usize,
    /// Columns of the block to gather (`None`: the block's columns are
    /// already exactly this scorer's SVs, in order — dense sweep).
    pub sv_idx: Option<&'a [u32]>,
    /// Signed coefficients `y_i α_i`, parallel to the gathered columns.
    pub coef: &'a [f64],
    /// Decision threshold.
    pub rho: f64,
}

/// Shared implementation behind [`crate::ComputeBackend::score_rows`]:
/// one fused gather/multiply-add map charge for the whole block, then an
/// in-place parallel update of the owned columns.
pub(crate) fn score_rows_impl(
    exec: &dyn Executor,
    block: &DenseMatrix,
    scorers: &[RowScorer<'_>],
    host_threads: usize,
    out: &mut [Vec<f64>],
) {
    debug_assert!(block.nrows() >= out.len(), "block shorter than output");
    // Charge before the empty check: the modeled launch cost depends only
    // on the declared shape, and keeping the charge unconditional keeps
    // `sim_s` bit-identical across backends and refactors.
    let total_refs: usize = scorers.iter().map(|s| s.coef.len()).sum();
    exec.charge(KernelCost::map((out.len() * total_refs) as u64, 2, 16));
    if out.is_empty() || scorers.is_empty() {
        return;
    }
    parallel_update(host_threads, out, |ri, row| {
        let krow = block.row(ri);
        for s in scorers {
            let mut v = 0.0;
            match s.sv_idx {
                Some(idx) => {
                    for (&c, &svi) in s.coef.iter().zip(idx) {
                        v += c * krow[svi as usize];
                    }
                }
                None => {
                    for (&c, &k) in s.coef.iter().zip(krow) {
                        v += c * k;
                    }
                }
            }
            row[s.out_col] = v - s.rho;
        }
    });
}
