//! Backend selection: by name (config, CLI) or the `GMP_BACKEND`
//! environment variable.

use crate::{BlockedBackend, ComputeBackend, ScalarBackend};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which [`ComputeBackend`] implementation executes the numeric hot ops.
///
/// Orthogonal to the experiment `Backend` enum (which selects the *cost
/// model* — GPU streams vs. host CPU): every experiment backend can run on
/// every compute backend, and reports carry both labels.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComputeBackendKind {
    /// Per-row scatter/gather reference path ([`ScalarBackend`]).
    #[default]
    Scalar,
    /// Cache-blocked panel path ([`BlockedBackend`]).
    Blocked,
}

impl ComputeBackendKind {
    /// Every selectable kind, for CLI help and bench A/B sweeps.
    pub const ALL: [ComputeBackendKind; 2] =
        [ComputeBackendKind::Scalar, ComputeBackendKind::Blocked];

    /// The selection name (also what reports carry).
    pub fn name(self) -> &'static str {
        match self {
            ComputeBackendKind::Scalar => "scalar",
            ComputeBackendKind::Blocked => "blocked",
        }
    }

    /// Parse a selection name (as accepted by `GMP_BACKEND` and
    /// `--compute-backend`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(ComputeBackendKind::Scalar),
            "blocked" => Some(ComputeBackendKind::Blocked),
            _ => None,
        }
    }

    /// Selection from the `GMP_BACKEND` environment variable; unset or
    /// unrecognized values fall back to the default ([`Self::Scalar`]).
    pub fn from_env() -> Self {
        std::env::var("GMP_BACKEND")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Instantiate the backend this kind names.
    pub fn instance(self) -> Arc<dyn ComputeBackend> {
        match self {
            ComputeBackendKind::Scalar => Arc::new(ScalarBackend),
            ComputeBackendKind::Blocked => Arc::new(BlockedBackend),
        }
    }
}

impl std::fmt::Display for ComputeBackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_kind() {
        for kind in ComputeBackendKind::ALL {
            assert_eq!(ComputeBackendKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.instance().name(), kind.name());
        }
    }

    #[test]
    fn parse_is_case_and_space_insensitive() {
        assert_eq!(
            ComputeBackendKind::parse(" Blocked "),
            Some(ComputeBackendKind::Blocked)
        );
        assert_eq!(ComputeBackendKind::parse("cuda"), None);
    }

    #[test]
    fn default_is_scalar() {
        assert_eq!(ComputeBackendKind::default(), ComputeBackendKind::Scalar);
    }
}
