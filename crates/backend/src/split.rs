//! Disjoint parallel row access to a dense output matrix, plus the
//! thread-local scatter scratch both backends densify source rows into.

use gmp_sparse::DenseMatrix;

/// Concurrent disjoint access to the first `nrows` rows of a dense matrix,
/// so worker threads can fill rows in parallel. Row slices are derived on
/// demand from a single base pointer (one `&mut` borrow of the whole
/// buffer), and the `'a` lifetime pins the matrix's exclusive borrow for as
/// long as any `RowPtrs` value exists — handing the matrix out again while
/// workers hold row slices is a compile error, not UB.
pub(crate) struct RowPtrs<'a> {
    base: *mut f64,
    ncols: usize,
    nrows: usize,
    /// `debug-invariants` audit ledger: which rows have been handed out
    /// (empty and untouched when the feature is off).
    handed: gmp_sync::Mutex<Vec<bool>>,
    _borrow: std::marker::PhantomData<&'a mut [f64]>,
}

// SAFETY: `RowPtrs` is a partition handle over a buffer exclusively
// borrowed for `'a` (no other reference to it can exist while the value
// lives). The raw base pointer is only read through `row`, whose contract
// makes the handed-out `&mut` slices disjoint, so moving or sharing the
// handle across threads cannot create aliasing that the single-threaded
// use would not have.
unsafe impl Send for RowPtrs<'_> {}
// SAFETY: as above — `&RowPtrs` only exposes `row`, and the disjointness
// contract of `row` (each index dereferenced by at most one thread) is
// exactly the condition under which concurrent calls are sound.
unsafe impl Sync for RowPtrs<'_> {}

impl RowPtrs<'_> {
    /// Exclusive slice of row `i`.
    ///
    /// # Safety
    /// Each index must be dereferenced by at most one thread over the
    /// handle's lifetime (`parallel_for_chunks` guarantees this: chunks
    /// partition the index range). Under `debug-invariants` a handout
    /// ledger asserts the disjointness at runtime.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn row(&self, i: usize) -> &mut [f64] {
        assert!(i < self.nrows, "row {i} out of split range {}", self.nrows);
        gmp_sync::audit!({
            let mut handed = self.handed.lock();
            assert!(
                !std::mem::replace(&mut handed[i], true),
                "row {i} handed out twice — aliased concurrent write"
            );
        });
        // SAFETY: `base` points at the live row-major buffer (the `'a`
        // borrow keeps it alive and exclusive); row `i < nrows` spans
        // `[i*ncols, (i+1)*ncols)`, in bounds because the source matrix
        // has at least `nrows` rows (asserted in `split_rows`). Distinct
        // `i` give non-overlapping ranges, and the caller contract makes
        // every handed-out slice unique, so no `&mut` aliasing arises.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(i * self.ncols), self.ncols) }
    }
}

/// Partition the first `nrows` rows of `m` for concurrent filling. All row
/// pointers derive from one `as_mut_slice` borrow — collecting
/// `m.row_mut(i) as *mut _` per row instead would invalidate each earlier
/// pointer under Stacked Borrows (every `row_mut` reborrows the whole
/// buffer), which Miri rejects.
pub(crate) fn split_rows(m: &mut DenseMatrix, nrows: usize) -> RowPtrs<'_> {
    assert!(nrows <= m.nrows(), "cannot split more rows than exist");
    let ncols = m.ncols();
    let handed = gmp_sync::Mutex::new(if gmp_sync::AUDIT {
        vec![false; nrows]
    } else {
        Vec::new()
    });
    RowPtrs {
        base: m.as_mut_slice().as_mut_ptr(),
        ncols,
        nrows,
        handed,
        _borrow: std::marker::PhantomData,
    }
}

/// Run `f` with a zeroed scatter scratch of at least `ncols` values,
/// reusing a thread-local buffer so steady-state callers never allocate.
pub(crate) fn with_scatter_scratch<R>(ncols: usize, f: impl FnOnce(&mut Vec<f64>) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        if scratch.len() < ncols {
            scratch.resize(ncols, 0.0);
        }
        f(&mut scratch)
    })
}
