//! The reference backend: per-row scatter/gather dots, exactly the loop
//! structure the kernel oracle used before the backend seam existed.

use crate::split::{split_rows, with_scatter_scratch};
use crate::{cost, ComputeBackend, KernelContext};
use gmp_gpusim::pool::parallel_for_chunks;
use gmp_gpusim::Executor;
use gmp_sparse::{CsrMatrix, DenseMatrix};
use std::ops::Range;

/// Per-row scatter/gather backend — the pre-seam reference path, pinned
/// bit-identical by the integration goldens.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScalarBackend;

impl ComputeBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn batch_kernel_rows(
        &self,
        ctx: &KernelContext<'_>,
        exec: &dyn Executor,
        row_ids: &[usize],
        cols: Range<usize>,
        out: &mut DenseMatrix,
    ) -> u64 {
        // `>=` so callers can reuse an over-sized persistent scratch block
        // (the allocation-free ensure hot path); only the first
        // `row_ids.len()` rows are written.
        assert!(out.nrows() >= row_ids.len(), "output row mismatch");
        assert_eq!(out.ncols(), cols.len(), "output col mismatch");
        if row_ids.is_empty() || cols.is_empty() {
            return 0;
        }
        let evals = cost::charge_row_batch(ctx, exec, row_ids, cols.len() as u64);
        fill_rows(ctx, ctx.data, row_ids, ctx.norms, cols, out);
        evals
    }

    fn test_sv_matrix(
        &self,
        ctx: &KernelContext<'_>,
        exec: &dyn Executor,
        test: &CsrMatrix,
        test_rows: &[usize],
        test_norms: &[f64],
        out: &mut DenseMatrix,
    ) -> u64 {
        let n = ctx.data.nrows();
        assert!(out.nrows() >= test_rows.len(), "output row mismatch");
        assert_eq!(out.ncols(), n, "output col mismatch");
        assert_eq!(test.ncols(), ctx.data.ncols(), "dimension mismatch");
        assert_eq!(test_norms.len(), test.nrows(), "norms must cover all rows");
        if test_rows.is_empty() || n == 0 {
            return 0;
        }
        let evals = cost::charge_cross_batch(ctx, exec, test, test_rows);
        fill_rows(ctx, test, test_rows, test_norms, 0..n, out);
        evals
    }
}

/// Fill `out[bi][..] = K(src[src_rows[bi]], data[j])` for `j` in `cols`.
/// One routine covers both hot ops: the working-set batch is the
/// `src == ctx.data` case, the test × SV matrix is `src == test` with
/// `cols == 0..data.nrows()`.
fn fill_rows(
    ctx: &KernelContext<'_>,
    src: &CsrMatrix,
    src_rows: &[usize],
    src_norms: &[f64],
    cols: Range<usize>,
    out: &mut DenseMatrix,
) {
    let data = ctx.data;
    let kind = ctx.kind;
    let norms = ctx.norms;
    let ncols = data.ncols();
    // Each batch row is independent: scatter the source row once, then
    // gather-dot every target row in the range and apply the kernel map.
    if ctx.host_threads == 1 {
        // Allocation-free path: thread-local scatter scratch, direct
        // `row_mut` writes (no pointer table needed).
        with_scatter_scratch(ncols, |scratch| {
            for (bi, &r) in src_rows.iter().enumerate() {
                let row = src.row(r);
                row.scatter(scratch);
                let norm_r = src_norms[r];
                for (o, j) in out.row_mut(bi).iter_mut().zip(cols.clone()) {
                    let dot = data.row(j).dot_dense(scratch);
                    *o = kind.eval(dot, norm_r, norms[j]);
                }
                row.clear_scatter(scratch);
            }
        });
        return;
    }
    let rows_slices = split_rows(out, src_rows.len());
    parallel_for_chunks(ctx.host_threads, src_rows.len(), |chunk| {
        let mut scratch = vec![0.0; ncols];
        for bi in chunk {
            let r = src_rows[bi];
            let row = src.row(r);
            row.scatter(&mut scratch);
            let norm_r = src_norms[r];
            // SAFETY: chunks partition the index range, so each `bi`
            // is dereferenced by exactly one worker thread.
            let out_row = unsafe { rows_slices.row(bi) };
            for (o, j) in out_row.iter_mut().zip(cols.clone()) {
                let dot = data.row(j).dot_dense(&scratch);
                *o = kind.eval(dot, norm_r, norms[j]);
            }
            row.clear_scatter(&mut scratch);
        }
    });
}
