//! The compute-backend layer: one pluggable abstraction for the paper's
//! three hot ops, from SMO training to online serving.
//!
//! GMP-SVM's entire speedup story (§3.3.1, §3.5) reduces to three batched
//! device operations:
//!
//! 1. **Batched working-set kernel rows** — `K(x_r, x_j)` for a working
//!    set `r` against a column range `j`, one sparse×sparseᵀ product plus
//!    a fused scalar kernel map ([`ComputeBackend::batch_kernel_rows`]).
//! 2. **The test × SV matrix** — every test row against the support-vector
//!    pool ([`ComputeBackend::test_sv_matrix`]).
//! 3. **Row scoring** — decision values gathered from a kernel block with
//!    per-binary coefficients ([`ComputeBackend::score_rows`]).
//!
//! [`ComputeBackend`] owns the numeric loops *and* the simulated-cost
//! accounting for these ops, so call sites stop doing ad-hoc `KernelCost`
//! arithmetic. Two implementations prove the seam:
//!
//! * [`ScalarBackend`] — the reference path: per-row scatter/gather dots.
//! * [`BlockedBackend`] — mirrors CSR working-set rows into a
//!   cache-blocked row-major panel and fuses dot + kernel map.
//!
//! # Contracts every backend must honour
//!
//! * **Bit-identical values.** A kernel value is produced by iterating the
//!   stored entries of the *target* row in index order against a densified
//!   source row, then applying [`KernelKind::eval`]. Same summation order
//!   ⇒ same bits, so backends are interchangeable mid-experiment and the
//!   Table-4 "same classifier everywhere" claim survives the seam.
//! * **Identical cost accounting.** Backends charge the shared [`cost`]
//!   helpers' launches verbatim: the cost model describes the *modeled
//!   device*, not the host loop structure, so swapping backends changes
//!   host wall-clock but never `sim_s`.
//! * **Exact eval counts.** The returned count is exactly
//!   `rows × width` — the owner-attributed number the shared store's slot
//!   ledger expects (audited under `debug-invariants`).

use gmp_gpusim::Executor;
use gmp_sparse::{CsrMatrix, DenseMatrix};
use std::ops::Range;

mod blocked;
pub mod cost;
pub mod functions;
mod scalar;
mod score;
mod select;
mod split;

pub use blocked::BlockedBackend;
pub use functions::KernelKind;
pub use scalar::ScalarBackend;
pub use score::RowScorer;
pub use select::ComputeBackendKind;

/// Everything a backend needs to evaluate kernel values over a fixed
/// dataset: the (grouped) CSR matrix, its precomputed squared row norms,
/// the kernel function, and the real host threads it may use.
pub struct KernelContext<'a> {
    /// The dataset kernel values are evaluated over (targets).
    pub data: &'a CsrMatrix,
    /// Squared norms of every `data` row (RBF needs them; always supplied).
    pub norms: &'a [f64],
    /// The kernel function.
    pub kind: KernelKind,
    /// Real host threads the numeric work may use (accounting unaffected).
    pub host_threads: usize,
}

/// A device abstraction executing the three hot ops.
///
/// Methods return the number of kernel values computed; the caller (the
/// kernel oracle) owns the monotone eval counter so per-provider deltas
/// keep working. See the module docs for the contracts implementations
/// must honour.
pub trait ComputeBackend: Send + Sync {
    /// Short name for selection and reports (`"scalar"`, `"blocked"`).
    fn name(&self) -> &'static str;

    /// §3.3.1: kernel values `K(x_r, x_j)` for `r` in `row_ids`, `j` in
    /// `cols`, into the first `row_ids.len()` rows of `out` (width
    /// `cols.len()`), charged to `exec` as one batched launch. Returns
    /// `row_ids.len() * cols.len()` (0 when either side is empty).
    fn batch_kernel_rows(
        &self,
        ctx: &KernelContext<'_>,
        exec: &dyn Executor,
        row_ids: &[usize],
        cols: Range<usize>,
        out: &mut DenseMatrix,
    ) -> u64;

    /// §3.5: kernel values of `test` rows (`test_rows`, norms in
    /// `test_norms` indexed by global row id) against **every** row of
    /// `ctx.data` (the SV pool), into the first `test_rows.len()` rows of
    /// `out`. Charged as one batched launch; returns
    /// `test_rows.len() * ctx.data.nrows()`.
    fn test_sv_matrix(
        &self,
        ctx: &KernelContext<'_>,
        exec: &dyn Executor,
        test: &CsrMatrix,
        test_rows: &[usize],
        test_norms: &[f64],
        out: &mut DenseMatrix,
    ) -> u64;

    /// Decision values from a kernel block: for each output row `ri` and
    /// each scorer, `out[ri][scorer.out_col] = Σ coef·block[ri][·] − rho`.
    /// Charged as one fused gather/multiply-add map. Other columns of the
    /// output rows are preserved.
    fn score_rows(
        &self,
        exec: &dyn Executor,
        block: &DenseMatrix,
        scorers: &[RowScorer<'_>],
        host_threads: usize,
        out: &mut [Vec<f64>],
    ) {
        score::score_rows_impl(exec, block, scorers, host_threads, out);
    }
}
