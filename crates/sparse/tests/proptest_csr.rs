//! Property-based tests for the CSR substrate.
#![allow(clippy::needless_range_loop)] // parallel-array indexing

use gmp_sparse::{ops, CsrMatrix};
use proptest::prelude::*;

/// Strategy: a small dense matrix with controlled sparsity.
fn dense_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(
            proptest::collection::vec(prop_oneof![3 => Just(0.0), 2 => -10.0..10.0f64], c),
            r,
        )
    })
}

proptest! {
    #[test]
    fn dense_roundtrip(d in dense_matrix(8, 8)) {
        let ncols = d[0].len();
        let m = CsrMatrix::from_dense(&d, ncols);
        prop_assert_eq!(m.to_dense(), d);
    }

    #[test]
    fn dot_sparse_matches_dense(d in dense_matrix(6, 10)) {
        let ncols = d[0].len();
        let m = CsrMatrix::from_dense(&d, ncols);
        for i in 0..m.nrows() {
            for j in 0..m.nrows() {
                let brute: f64 = d[i].iter().zip(&d[j]).map(|(a, b)| a * b).sum();
                let got = m.row(i).dot_sparse(&m.row(j));
                prop_assert!((got - brute).abs() < 1e-9, "({},{}) {} vs {}", i, j, got, brute);
            }
        }
    }

    #[test]
    fn dot_is_symmetric(d in dense_matrix(6, 6)) {
        let m = CsrMatrix::from_dense(&d, d[0].len());
        for i in 0..m.nrows() {
            for j in 0..m.nrows() {
                prop_assert_eq!(
                    m.row(i).dot_sparse(&m.row(j)),
                    m.row(j).dot_sparse(&m.row(i))
                );
            }
        }
    }

    #[test]
    fn norms_nonnegative_and_match_self_dot(d in dense_matrix(6, 6)) {
        let m = CsrMatrix::from_dense(&d, d[0].len());
        let norms = m.row_norms_sq();
        for i in 0..m.nrows() {
            prop_assert!(norms[i] >= 0.0);
            prop_assert!((norms[i] - m.row(i).dot_sparse(&m.row(i))).abs() < 1e-9);
        }
    }

    #[test]
    fn block_product_agrees_with_pairwise(d in dense_matrix(6, 6)) {
        let m = CsrMatrix::from_dense(&d, d[0].len());
        let rows: Vec<usize> = (0..m.nrows()).collect();
        let block = ops::row_block_product(&m, &rows);
        for (bi, &r) in rows.iter().enumerate() {
            for j in 0..m.nrows() {
                let expect = m.row(r).dot_sparse(&m.row(j));
                prop_assert!((block.get(bi, j) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn structural_invariants_hold(d in dense_matrix(8, 8)) {
        // Column indices strictly increasing within each row, every index
        // in bounds, and per-row extents consistent with the total nnz
        // (i.e. the indptr array is monotone and ends at nnz).
        let m = CsrMatrix::from_dense(&d, d[0].len());
        let mut total = 0usize;
        for i in 0..m.nrows() {
            let r = m.row(i);
            for w in r.indices.windows(2) {
                prop_assert!(w[0] < w[1], "row {} not strictly sorted: {:?}", i, r.indices);
            }
            for &c in r.indices {
                prop_assert!((c as usize) < m.ncols());
            }
            prop_assert_eq!(r.nnz(), m.row_nnz(i));
            total += r.nnz();
        }
        prop_assert_eq!(total, m.nnz());
    }

    #[test]
    fn transpose_matches_dense_transpose(d in dense_matrix(7, 9)) {
        let ncols = d[0].len();
        let m = CsrMatrix::from_dense(&d, ncols);
        let t = m.transpose();
        prop_assert_eq!(t.nrows(), m.ncols());
        prop_assert_eq!(t.ncols(), m.nrows());
        prop_assert_eq!(t.nnz(), m.nnz());
        let td = t.to_dense();
        for i in 0..m.nrows() {
            for j in 0..ncols {
                prop_assert_eq!(td[j][i], d[i][j], "mismatch at ({}, {})", i, j);
            }
        }
    }

    #[test]
    fn transpose_is_involutive(d in dense_matrix(8, 8)) {
        let m = CsrMatrix::from_dense(&d, d[0].len());
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn select_rows_preserves_content(d in dense_matrix(8, 5), seed in 0u64..1000) {
        let m = CsrMatrix::from_dense(&d, d[0].len());
        // Deterministic pseudo-random subset from the seed.
        let rows: Vec<usize> = (0..m.nrows())
            .filter(|i| (seed >> (i % 16)) & 1 == 1)
            .collect();
        let s = m.select_rows(&rows);
        prop_assert_eq!(s.nrows(), rows.len());
        for (si, &r) in rows.iter().enumerate() {
            prop_assert_eq!(s.row(si).indices, m.row(r).indices);
            prop_assert_eq!(s.row(si).values, m.row(r).values);
        }
    }
}
