//! Sparse linear-algebra substrate for the GMP-SVM reproduction.
//!
//! The paper ("Efficient Multi-Class Probabilistic SVMs on GPUs", ICDE 2019)
//! stores training data in CSR format and computes batches of kernel-matrix
//! rows as sparse matrix products via cuSPARSE. This crate provides the
//! equivalent primitives in pure Rust:
//!
//! * [`CsrMatrix`] — compressed sparse row matrix with a validated builder,
//! * [`SparseRow`] — a borrowed view of one row,
//! * dot products between sparse rows and against dense scatter buffers,
//! * [`ops::row_block_product`] — the "compute `q` kernel rows in one
//!   execution" primitive of §3.3.1 of the paper,
//! * squared row norms (needed by the RBF kernel).
//!
//! All floating point values are `f64` so that the solver can be compared
//! bit-for-bit against a LibSVM-style double-precision reference (Table 4 of
//! the paper compares final classifiers).

pub mod csr;
pub mod dense;
pub mod ops;

pub use csr::{CsrBuilder, CsrError, CsrMatrix, SparseRow};
pub use dense::DenseMatrix;
