//! Compressed sparse row matrices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when constructing or validating a [`CsrMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `indptr` must start at 0, end at `nnz`, and be non-decreasing.
    BadIndptr(String),
    /// A column index is out of bounds for the declared number of columns.
    ColumnOutOfBounds { row: usize, col: u32, ncols: usize },
    /// Column indices within a row must be strictly increasing.
    UnsortedRow { row: usize },
    /// `indices` and `values` must have the same length.
    LengthMismatch { indices: usize, values: usize },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::BadIndptr(msg) => write!(f, "invalid indptr: {msg}"),
            CsrError::ColumnOutOfBounds { row, col, ncols } => {
                write!(f, "row {row}: column {col} out of bounds (ncols={ncols})")
            }
            CsrError::UnsortedRow { row } => {
                write!(f, "row {row}: column indices not strictly increasing")
            }
            CsrError::LengthMismatch { indices, values } => {
                write!(f, "indices length {indices} != values length {values}")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// An immutable CSR (compressed sparse row) matrix of `f64` values.
///
/// Invariants (enforced at construction):
/// * `indptr.len() == nrows + 1`, `indptr[0] == 0`, non-decreasing,
///   `indptr[nrows] == indices.len() == values.len()`;
/// * every column index is `< ncols`;
/// * column indices are strictly increasing within each row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

/// Borrowed view of a single CSR row: parallel slices of column indices and
/// values, sorted by column.
#[derive(Debug, Clone, Copy)]
pub struct SparseRow<'a> {
    /// Column indices, strictly increasing.
    pub indices: &'a [u32],
    /// Values matching `indices` position-wise.
    pub values: &'a [f64],
}

impl<'a> SparseRow<'a> {
    /// Number of stored (structurally non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Sum of squared values of the row.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Dot product with another sparse row (two-pointer merge).
    pub fn dot_sparse(&self, other: &SparseRow<'_>) -> f64 {
        let mut sum = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        let (a_idx, b_idx) = (self.indices, other.indices);
        while i < a_idx.len() && j < b_idx.len() {
            match a_idx[i].cmp(&b_idx[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += self.values[i] * other.values[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Dot product against a dense vector indexed by column.
    ///
    /// `dense` must have length at least `ncols` of the parent matrix.
    #[inline]
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        let mut sum = 0.0;
        for (&c, &v) in self.indices.iter().zip(self.values) {
            sum += v * dense[c as usize];
        }
        sum
    }

    /// Scatter this row into `dense` (which must be zeroed beforehand or
    /// cleared afterwards with [`SparseRow::clear_scatter`]).
    #[inline]
    pub fn scatter(&self, dense: &mut [f64]) {
        for (&c, &v) in self.indices.iter().zip(self.values) {
            dense[c as usize] = v;
        }
    }

    /// Undo a previous [`SparseRow::scatter`] into `dense`, restoring zeros.
    #[inline]
    pub fn clear_scatter(&self, dense: &mut [f64]) {
        for &c in self.indices {
            dense[c as usize] = 0.0;
        }
    }
}

impl CsrMatrix {
    /// Construct from raw parts, validating all invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, CsrError> {
        if indices.len() != values.len() {
            return Err(CsrError::LengthMismatch {
                indices: indices.len(),
                values: values.len(),
            });
        }
        if indptr.len() != nrows + 1 {
            return Err(CsrError::BadIndptr(format!(
                "expected length {} got {}",
                nrows + 1,
                indptr.len()
            )));
        }
        if indptr[0] != 0 {
            return Err(CsrError::BadIndptr("must start at 0".into()));
        }
        // indptr.len() == nrows + 1 >= 1 was just established.
        if indptr[nrows] != indices.len() {
            return Err(CsrError::BadIndptr(format!(
                "must end at nnz={} but ends at {}",
                indices.len(),
                indptr[nrows]
            )));
        }
        for w in indptr.windows(2) {
            if w[1] < w[0] {
                return Err(CsrError::BadIndptr("must be non-decreasing".into()));
            }
        }
        for row in 0..nrows {
            let s = indptr[row];
            let e = indptr[row + 1];
            let mut prev: Option<u32> = None;
            for &c in &indices[s..e] {
                if (c as usize) >= ncols {
                    return Err(CsrError::ColumnOutOfBounds { row, col: c, ncols });
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(CsrError::UnsortedRow { row });
                    }
                }
                prev = Some(c);
            }
        }
        Ok(CsrMatrix {
            ncols,
            indptr,
            indices,
            values,
        })
    }

    /// An empty matrix with `ncols` columns and no rows.
    pub fn empty(ncols: usize) -> Self {
        CsrMatrix {
            ncols,
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from dense row-major data, dropping exact zeros.
    pub fn from_dense(rows: &[Vec<f64>], ncols: usize) -> Self {
        let mut b = CsrBuilder::new(ncols);
        for r in rows {
            assert!(r.len() <= ncols, "dense row wider than ncols");
            b.start_row();
            for (c, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    b.push(c as u32, v);
                }
            }
        }
        b.finish()
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of stored entries, `nnz / (nrows * ncols)`; 0 for an empty shape.
    pub fn density(&self) -> f64 {
        let cells = self.nrows() * self.ncols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Borrowed view of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= nrows()`.
    #[inline]
    pub fn row(&self, i: usize) -> SparseRow<'_> {
        let s = self.indptr[i];
        let e = self.indptr[i + 1];
        SparseRow {
            indices: &self.indices[s..e],
            values: &self.values[s..e],
        }
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Iterate over all rows in order.
    pub fn rows(&self) -> impl Iterator<Item = SparseRow<'_>> + '_ {
        (0..self.nrows()).map(move |i| self.row(i))
    }

    /// Squared Euclidean norm of every row.
    pub fn row_norms_sq(&self) -> Vec<f64> {
        self.rows().map(|r| r.norm_sq()).collect()
    }

    /// A new matrix containing the given rows (in the given order).
    ///
    /// This is how binary one-vs-one subproblems materialize their training
    /// subsets when *not* using the shared-kernel layout.
    pub fn select_rows(&self, rows: &[usize]) -> CsrMatrix {
        let nnz: usize = rows.iter().map(|&r| self.row_nnz(r)).sum();
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0usize);
        for &r in rows {
            let row = self.row(r);
            indices.extend_from_slice(row.indices);
            values.extend_from_slice(row.values);
            indptr.push(indices.len());
        }
        CsrMatrix {
            ncols: self.ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Densify into row-major storage (tests / dense baselines only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        (0..self.nrows())
            .map(|i| {
                let mut d = vec![0.0; self.ncols];
                self.row(i).scatter(&mut d);
                d
            })
            .collect()
    }

    /// Transpose: the `ncols x nrows` matrix with rows and columns swapped.
    ///
    /// Counting sort over columns, `O(nnz + ncols)`. The result is built
    /// directly (no re-validation): scanning rows in increasing order writes
    /// strictly increasing row ids into each transposed row, and the
    /// counting pass makes the new `indptr` exact by construction.
    pub fn transpose(&self) -> CsrMatrix {
        let nrows = self.nrows();
        debug_assert!(nrows <= u32::MAX as usize, "row ids must fit in u32");
        let mut indptr = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1;
        }
        for c in 0..self.ncols {
            indptr[c + 1] += indptr[c];
        }
        let mut next = indptr.clone(); // next write slot per transposed row
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for row in 0..nrows {
            let r = self.row(row);
            for (&c, &v) in r.indices.iter().zip(r.values) {
                let slot = next[c as usize];
                indices[slot] = row as u32;
                values[slot] = v;
                next[c as usize] += 1;
            }
        }
        CsrMatrix {
            ncols: nrows,
            indptr,
            indices,
            values,
        }
    }

    /// Approximate heap footprint in bytes (used by the device-memory
    /// accounting when a dataset is "copied to the GPU").
    pub fn mem_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

/// Incremental row-by-row builder for [`CsrMatrix`].
///
/// Columns must be pushed in strictly increasing order within a row; this is
/// checked with `debug_assert!` in release-hot paths and validated fully by
/// [`CsrBuilder::finish`].
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// A builder for a matrix with `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        CsrBuilder {
            ncols,
            indptr: Vec::new(),
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Reserve room for `nnz` additional entries.
    pub fn reserve(&mut self, nnz: usize) {
        self.indices.reserve(nnz);
        self.values.reserve(nnz);
    }

    /// Begin a new (initially empty) row.
    pub fn start_row(&mut self) {
        // `indptr` holds the start offset of each row; finish() appends the
        // trailing nnz marker.
        self.indptr.push(self.indices.len());
    }

    /// Append an entry to the current row.
    ///
    /// # Panics
    /// Panics (debug) if no row has been started or ordering is violated.
    #[inline]
    pub fn push(&mut self, col: u32, value: f64) {
        debug_assert!(!self.indptr.is_empty(), "start_row before push");
        debug_assert!((col as usize) < self.ncols, "column out of bounds");
        if let (Some(&last), Some(&row_start)) = (self.indices.last(), self.indptr.last()) {
            if self.indices.len() > row_start {
                debug_assert!(col > last, "columns must be strictly increasing");
            }
        }
        self.indices.push(col);
        self.values.push(value);
    }

    /// Number of rows started so far.
    pub fn rows_started(&self) -> usize {
        self.indptr.len()
    }

    /// Validate and produce the matrix.
    pub fn finish(mut self) -> CsrMatrix {
        self.indptr.push(self.indices.len());
        // `indptr` currently holds starts of each row (first element 0) and
        // the final nnz; that is exactly the CSR indptr.
        CsrMatrix::from_parts(
            self.indptr.len() - 1,
            self.ncols,
            self.indptr,
            self.indices,
            self.values,
        )
        // gmp:allow-panic — the builder maintains every CSR invariant by
        // construction (ordering is debug-asserted in push); a failure here
        // is a CsrBuilder bug, not caller input, so re-validation panics.
        .expect("CsrBuilder produced invalid matrix")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 4);
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn row_views() {
        let m = sample();
        let r0 = m.row(0);
        assert_eq!(r0.indices, &[0, 2]);
        assert_eq!(r0.values, &[1.0, 2.0]);
        assert_eq!(m.row(1).nnz(), 0);
        assert_eq!(m.row_nnz(2), 2);
    }

    #[test]
    fn dot_products() {
        let m = sample();
        // row0 . row2 = 1*3 + 0 + 0 = 3
        assert_eq!(m.row(0).dot_sparse(&m.row(2)), 3.0);
        assert_eq!(m.row(0).dot_sparse(&m.row(1)), 0.0);
        assert_eq!(m.row(0).dot_dense(&[1.0, 1.0, 1.0]), 3.0);
        assert_eq!(m.row(0).norm_sq(), 5.0);
    }

    #[test]
    fn scatter_roundtrip() {
        let m = sample();
        let mut d = vec![0.0; 3];
        m.row(2).scatter(&mut d);
        assert_eq!(d, vec![3.0, 4.0, 0.0]);
        m.row(2).clear_scatter(&mut d);
        assert_eq!(d, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn builder_matches_from_parts() {
        let mut b = CsrBuilder::new(3);
        b.start_row();
        b.push(0, 1.0);
        b.push(2, 2.0);
        b.start_row();
        b.start_row();
        b.push(0, 3.0);
        b.push(1, 4.0);
        assert_eq!(b.rows_started(), 3);
        assert_eq!(b.finish(), sample());
    }

    #[test]
    fn from_dense_drops_zeros() {
        let m = CsrMatrix::from_dense(
            &[
                vec![1.0, 0.0, 2.0],
                vec![0.0, 0.0, 0.0],
                vec![3.0, 4.0, 0.0],
            ],
            3,
        );
        assert_eq!(m, sample());
    }

    #[test]
    fn to_dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(CsrMatrix::from_dense(&d, 3), m);
    }

    #[test]
    fn select_rows_reorders() {
        let m = sample();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.row(0).values, m.row(2).values);
        assert_eq!(s.row(1).values, m.row(0).values);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]),
            Err(CsrError::ColumnOutOfBounds { .. })
        ));
        assert!(matches!(
            CsrMatrix::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]),
            Err(CsrError::UnsortedRow { .. })
        ));
        assert!(matches!(
            CsrMatrix::from_parts(1, 3, vec![0], vec![], vec![]),
            Err(CsrError::BadIndptr(_))
        ));
        assert!(matches!(
            CsrMatrix::from_parts(1, 3, vec![0, 1], vec![0], vec![]),
            Err(CsrError::LengthMismatch { .. })
        ));
        assert!(matches!(
            CsrMatrix::from_parts(2, 3, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]),
            Err(CsrError::BadIndptr(_))
        ));
    }

    #[test]
    fn transpose_sample() {
        let m = sample();
        let t = m.transpose();
        // [ 1 0 3 ]
        // [ 0 0 4 ]
        // [ 2 0 0 ]
        assert_eq!(
            t.to_dense(),
            vec![
                vec![1.0, 0.0, 3.0],
                vec![0.0, 0.0, 4.0],
                vec![2.0, 0.0, 0.0],
            ]
        );
        assert_eq!(t.transpose(), m);
        // Rows (former columns) stay sorted even with an empty column.
        let e = CsrMatrix::empty(4).transpose();
        assert_eq!(e.nrows(), 4);
        assert_eq!(e.nnz(), 0);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::empty(10);
        assert_eq!(m.nrows(), 0);
        assert_eq!(m.density(), 0.0);
        assert_eq!(m.row_norms_sq(), Vec::<f64>::new());
    }

    #[test]
    fn mem_bytes_counts_storage() {
        let m = sample();
        let expected = 4 * std::mem::size_of::<usize>()
            + 4 * std::mem::size_of::<u32>()
            + 4 * std::mem::size_of::<f64>();
        assert_eq!(m.mem_bytes(), expected);
    }
}
