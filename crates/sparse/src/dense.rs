//! Small dense row-major matrix used for kernel-row blocks and the dense
//! baseline (GPUSVM-like) data representation.

use serde::{Deserialize, Serialize};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// A zero-filled `nrows x ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense data length mismatch");
        DenseMatrix { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.ncols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.ncols + j] = v;
    }

    /// The full backing slice (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The full backing slice (row-major), mutable. One borrow of the
    /// whole buffer — the provenance root for row-splitting (deriving raw
    /// row pointers from repeated `row_mut` calls instead would invalidate
    /// each previous pointer under Stacked Borrows).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reshape in place to `nrows x ncols`, zero-filled, reusing the
    /// backing allocation when it is large enough. This is the hot-path
    /// primitive behind allocation-free row scratch buffers: once grown to
    /// its steady-state shape, `reset` never touches the allocator.
    pub fn reset(&mut self, nrows: usize, ncols: usize) {
        self.nrows = nrows;
        self.ncols = ncols;
        self.data.clear();
        self.data.resize(nrows * ncols, 0.0);
    }

    /// Heap footprint in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Dot product of two equally-sized dense vectors.
    #[inline]
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = DenseMatrix::zeros(2, 3);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn from_vec_layout() {
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_slice().len(), 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_rejects_bad_len() {
        let _ = DenseMatrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn row_mut_updates() {
        let mut m = DenseMatrix::zeros(1, 2);
        m.row_mut(0).copy_from_slice(&[7.0, 8.0]);
        assert_eq!(m.get(0, 1), 8.0);
    }

    #[test]
    fn dense_dot() {
        assert_eq!(DenseMatrix::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn mem_bytes() {
        assert_eq!(DenseMatrix::zeros(2, 3).mem_bytes(), 48);
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut m = DenseMatrix::zeros(4, 4);
        m.set(3, 3, 9.0);
        let ptr = m.as_slice().as_ptr();
        m.reset(2, 3);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        // Shrinking reuses the same backing buffer.
        assert_eq!(m.as_slice().as_ptr(), ptr);
        m.reset(8, 8); // growing may reallocate, shape must still be right
        assert_eq!((m.nrows(), m.ncols()), (8, 8));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }
}
