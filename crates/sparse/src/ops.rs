//! Batched sparse products — the computational core of kernel-row batches.
//!
//! §3.3.1 of the paper: "Computing those kernel values is essentially matrix
//! multiplication between the q instances and the rest of the training
//! instances … efficiently carried out by the cuSPARSE library." The
//! functions here are that substitute: given CSR data `X` and a set of row
//! ids `S`, compute the `|S| x n` dense block `X[S] * X^T` of pairwise dot
//! products.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;

/// Compute dot products of one source row against a contiguous range of rows.
///
/// The source row is scattered into `scratch` (len >= `ncols`, all zeros on
/// entry and restored to zeros on exit), then each target row performs a
/// gather-dot. This is the memory-friendly pattern a GPU kernel would use
/// with the batch operand staged in shared memory.
pub fn row_vs_range_dots(
    x: &CsrMatrix,
    src_row: usize,
    range: std::ops::Range<usize>,
    scratch: &mut [f64],
    out: &mut [f64],
) {
    debug_assert!(scratch.len() >= x.ncols());
    debug_assert_eq!(out.len(), range.len());
    let src = x.row(src_row);
    src.scatter(scratch);
    for (o, j) in out.iter_mut().zip(range) {
        *o = x.row(j).dot_dense(scratch);
    }
    src.clear_scatter(scratch);
}

/// Compute the dense block `X[rows] * X^T` of pairwise dot products: the
/// batched "q kernel rows in one execution" primitive.
///
/// Returns a `rows.len() x x.nrows()` dense matrix where entry `(i, j)` is
/// `x.row(rows[i]) . x.row(j)`.
pub fn row_block_product(x: &CsrMatrix, rows: &[usize]) -> DenseMatrix {
    let n = x.nrows();
    let mut out = DenseMatrix::zeros(rows.len(), n);
    let mut scratch = vec![0.0; x.ncols()];
    for (bi, &r) in rows.iter().enumerate() {
        row_vs_range_dots(x, r, 0..n, &mut scratch, out.row_mut(bi));
    }
    out
}

/// Like [`row_block_product`] but restricted to a column (target-row) range:
/// the class-segment primitive used by the shared kernel layout (Fig. 3).
pub fn row_block_product_range(
    x: &CsrMatrix,
    rows: &[usize],
    cols: std::ops::Range<usize>,
) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(rows.len(), cols.len());
    let mut scratch = vec![0.0; x.ncols()];
    for (bi, &r) in rows.iter().enumerate() {
        row_vs_range_dots(x, r, cols.clone(), &mut scratch, out.row_mut(bi));
    }
    out
}

/// Cross-matrix block product: dot products of rows of `a` (selected by
/// `a_rows`) against *all* rows of `b`. Used at prediction time to compute
/// the test-instances x support-vectors kernel block once for all binary
/// SVMs (support-vector sharing, §3.3.3).
pub fn cross_block_product(a: &CsrMatrix, a_rows: &[usize], b: &CsrMatrix) -> DenseMatrix {
    assert_eq!(a.ncols(), b.ncols(), "dimension mismatch");
    let n = b.nrows();
    let mut out = DenseMatrix::zeros(a_rows.len(), n);
    let mut scratch = vec![0.0; a.ncols()];
    for (bi, &r) in a_rows.iter().enumerate() {
        let src = a.row(r);
        src.scatter(&mut scratch);
        let o = out.row_mut(bi);
        for (j, oj) in o.iter_mut().enumerate() {
            *oj = b.row(j).dot_dense(&scratch);
        }
        src.clear_scatter(&mut scratch);
    }
    out
}

/// Number of f64 multiply-adds performed by [`row_block_product`] for the
/// given rows: `sum_j nnz(row_j)` per batch row using the scatter-gather
/// scheme. Used by the GPU cost model.
pub fn row_block_flops(x: &CsrMatrix, batch_rows: usize) -> u64 {
    2 * (x.nnz() as u64) * batch_rows as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_dense(
            &[
                vec![1.0, 0.0, 2.0],
                vec![0.0, 3.0, 0.0],
                vec![4.0, 5.0, 6.0],
                vec![0.0, 0.0, 1.0],
            ],
            3,
        )
    }

    fn brute_dot(x: &CsrMatrix, i: usize, j: usize) -> f64 {
        x.row(i).dot_sparse(&x.row(j))
    }

    #[test]
    fn block_product_matches_bruteforce() {
        let x = sample();
        let rows = vec![0usize, 2, 3];
        let block = row_block_product(&x, &rows);
        for (bi, &r) in rows.iter().enumerate() {
            for j in 0..x.nrows() {
                assert!(
                    (block.get(bi, j) - brute_dot(&x, r, j)).abs() < 1e-12,
                    "mismatch at ({bi},{j})"
                );
            }
        }
    }

    #[test]
    fn block_product_range_is_slice_of_full() {
        let x = sample();
        let rows = vec![1usize, 2];
        let full = row_block_product(&x, &rows);
        let part = row_block_product_range(&x, &rows, 1..3);
        for bi in 0..rows.len() {
            for (jc, j) in (1..3).enumerate() {
                assert_eq!(part.get(bi, jc), full.get(bi, j));
            }
        }
    }

    #[test]
    fn cross_product_between_matrices() {
        let a = sample();
        let b = CsrMatrix::from_dense(&[vec![1.0, 1.0, 1.0], vec![0.0, 2.0, 0.0]], 3);
        let out = cross_block_product(&a, &[0, 1], &b);
        assert_eq!(out.get(0, 0), 3.0); // (1,0,2).(1,1,1)
        assert_eq!(out.get(0, 1), 0.0); // (1,0,2).(0,2,0)
        assert_eq!(out.get(1, 0), 3.0); // (0,3,0).(1,1,1)
        assert_eq!(out.get(1, 1), 6.0); // (0,3,0).(0,2,0)
    }

    #[test]
    fn scratch_restored_between_rows() {
        // If scatter cleanup were broken, later rows would see stale values.
        let x = sample();
        let b1 = row_block_product(&x, &[0, 1]);
        let b2 = row_block_product(&x, &[1]);
        for j in 0..x.nrows() {
            assert_eq!(b1.get(1, j), b2.get(0, j));
        }
    }

    #[test]
    fn flops_estimate_scales_with_batch() {
        let x = sample();
        assert_eq!(row_block_flops(&x, 2), 2 * row_block_flops(&x, 1));
    }

    #[test]
    fn empty_batch() {
        let x = sample();
        let out = row_block_product(&x, &[]);
        assert_eq!(out.nrows(), 0);
        assert_eq!(out.ncols(), x.nrows());
    }
}
