//! Kernel functions, batched kernel-row computation, and the two kernel
//! caching structures at the heart of GMP-SVM:
//!
//! * [`KernelBuffer`] — the binary-SVM-level GPU buffer of §3.3.1: a
//!   pre-allocated region holding whole rows of the kernel matrix with
//!   first-in-first-out *batch* replacement (an LRU policy is provided for
//!   the ablation study the paper leaves as out of scope).
//! * [`SharedKernelStore`] — the MP-SVM-level structure of §3.3.2 / Fig. 3:
//!   kernel rows are stored as *class segments* so that the segment
//!   `(instance i, class c)` computed for binary problem `(s, c)` is reused
//!   by every other problem involving class `c`.
//!
//! The [`KernelRows`] trait is the interface SMO solvers consume; both the
//! buffered (per-problem) and shared (cross-problem) providers implement
//! it, so the same solver code runs in every backend.

pub mod buffer;
pub mod oracle;
pub mod rows;
pub mod shared;

// Kernel functions (and the compute-backend seam that executes them) live
// in `gmp-backend`; re-exported here so downstream `gmp_kernel::KernelKind`
// and `gmp_kernel::functions::*` paths keep working.
pub use gmp_backend::functions;
pub use gmp_backend::{ComputeBackend, ComputeBackendKind, KernelContext, RowScorer};

pub use buffer::{BufferStats, KernelBuffer, ReplacementPolicy};
pub use functions::KernelKind;
pub use oracle::KernelOracle;
pub use rows::{BufferedRows, KernelRows, RowProviderStats};
pub use shared::{ClassLayout, SharedKernelStore, SharedRows};
