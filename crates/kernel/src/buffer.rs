//! The GPU kernel-row buffer of §3.3.1.
//!
//! A pre-allocated region of device memory holding up to `capacity` full
//! rows of the kernel matrix. Batches of `q` rows are inserted together and
//! evicted together (first-in-first-out batch replacement, the paper's
//! choice); an LRU row-granular policy is included for the ablation the
//! paper declares out of scope ("finding the best strategy for replacement
//! is out of the scope of this paper").

use gmp_gpusim::{Device, DeviceAlloc, DeviceError};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Row replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict whole insertion batches, oldest first (the paper's policy).
    FifoBatch,
    /// Evict individual least-recently-used rows (ablation alternative).
    Lru,
}

/// Hit/miss/eviction counters for a buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// `get` calls that found the row resident.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Rows evicted to make room.
    pub evictions: u64,
    /// Rows inserted.
    pub insertions: u64,
}

impl BufferStats {
    /// Hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A capacity-bounded store of kernel-matrix rows (each `width` wide).
///
/// Storage is a flat `capacity x width` block claimed from the simulated
/// device up front — mirroring the paper's pre-allocated GPU buffer.
pub struct KernelBuffer {
    width: usize,
    capacity: usize,
    storage: Vec<f64>,
    /// instance id -> slot
    slot_of: HashMap<u32, usize>,
    /// slot -> instance id (u32::MAX = free)
    id_of: Vec<u32>,
    free_slots: Vec<usize>,
    /// FIFO of insertion batches (ids may have been evicted individually
    /// by pinning; stale entries are skipped).
    batches: VecDeque<Vec<u32>>,
    /// Retired batch vectors, recycled by `insert_batch` so the steady
    /// state never allocates.
    batch_pool: Vec<Vec<u32>>,
    /// Scratch for fully-pinned batches held aside during eviction.
    held: Vec<Vec<u32>>,
    /// LRU clock: id -> last-touch tick.
    last_used: HashMap<u32, u64>,
    tick: u64,
    policy: ReplacementPolicy,
    stats: BufferStats,
    _device_mem: Option<DeviceAlloc>,
}

impl KernelBuffer {
    /// Create a buffer of `capacity` rows of `width` values, claiming the
    /// storage from `device` when given (fails if the device is out of
    /// memory — the constraint that bounds buffer size in practice).
    pub fn new(
        capacity: usize,
        width: usize,
        policy: ReplacementPolicy,
        device: Option<&Device>,
    ) -> Result<Self, DeviceError> {
        assert!(capacity > 0, "buffer capacity must be positive");
        let bytes = (capacity * width * std::mem::size_of::<f64>()) as u64;
        let device_mem = match device {
            Some(d) => Some(d.alloc(bytes)?),
            None => None,
        };
        Ok(KernelBuffer {
            width,
            capacity,
            storage: vec![0.0; capacity * width],
            slot_of: HashMap::with_capacity(capacity),
            id_of: vec![u32::MAX; capacity],
            free_slots: (0..capacity).rev().collect(),
            batches: VecDeque::new(),
            batch_pool: Vec::new(),
            held: Vec::new(),
            last_used: HashMap::with_capacity(capacity),
            tick: 0,
            policy,
            stats: BufferStats::default(),
            _device_mem: device_mem,
        })
    }

    /// Row width in values.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Capacity in rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows currently resident.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// True when no rows are resident.
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Counters snapshot.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Is the row for instance `id` resident (no stat/LRU side effects)?
    pub fn contains(&self, id: u32) -> bool {
        self.slot_of.contains_key(&id)
    }

    /// Look up the row for instance `id`, counting a hit or miss and
    /// touching the LRU clock.
    pub fn get(&mut self, id: u32) -> Option<&[f64]> {
        match self.slot_of.get(&id).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.tick += 1;
                self.last_used.insert(id, self.tick);
                Some(&self.storage[slot * self.width..(slot + 1) * self.width])
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Borrow a resident row without stat side effects.
    ///
    /// # Panics
    /// Panics if the row is not resident.
    pub fn row(&self, id: u32) -> &[f64] {
        let slot = *self
            .slot_of
            .get(&id)
            // gmp:allow-panic — documented `# Panics` contract of row
            .unwrap_or_else(|| panic!("row {id} not resident in kernel buffer"));
        &self.storage[slot * self.width..(slot + 1) * self.width]
    }

    /// Mutably borrow a resident row (to fill it after insertion).
    ///
    /// # Panics
    /// Panics if the row is not resident.
    pub fn row_mut(&mut self, id: u32) -> &mut [f64] {
        let slot = *self
            .slot_of
            .get(&id)
            // gmp:allow-panic — documented `# Panics` contract of row_mut
            .unwrap_or_else(|| panic!("row {id} not resident in kernel buffer"));
        &mut self.storage[slot * self.width..(slot + 1) * self.width]
    }

    /// Insert a batch of rows (contents filled afterwards via
    /// [`KernelBuffer::row_mut`]), evicting per the policy as needed.
    ///
    /// Rows whose id is in `pinned` are never evicted — the solver pins its
    /// current working set so that making room for new violators cannot
    /// invalidate rows it is about to use.
    ///
    /// # Panics
    /// Panics if `ids.len()` plus the number of pinned resident rows
    /// exceeds capacity, or if any id in `ids` is already resident.
    pub fn insert_batch(&mut self, ids: &[u32], pinned: &[u32]) {
        assert!(
            ids.len() <= self.capacity,
            "batch of {} exceeds buffer capacity {}",
            ids.len(),
            self.capacity
        );
        for &id in ids {
            assert!(!self.contains(id), "row {id} already resident");
        }
        let pinned_resident = pinned.iter().filter(|&&p| self.contains(p)).count();
        assert!(
            pinned_resident + ids.len() <= self.capacity,
            "pinned rows ({pinned_resident}) + batch ({}) exceed capacity {}",
            ids.len(),
            self.capacity
        );
        while self.free_slots.len() < ids.len() {
            self.evict_some(pinned);
        }
        for &id in ids {
            // gmp:allow-panic — the eviction loop above guarantees a free slot
            let slot = self.free_slots.pop().expect("free slot");
            self.slot_of.insert(id, slot);
            self.id_of[slot] = id;
            self.tick += 1;
            self.last_used.insert(id, self.tick);
            self.stats.insertions += 1;
        }
        let mut batch = self.batch_pool.pop().unwrap_or_default();
        batch.clear();
        batch.extend_from_slice(ids);
        self.batches.push_back(batch);
        self.audit_accounting();
    }

    /// `debug-invariants` audit: the slot ledger is exact — every slot is
    /// either owned by exactly one resident row or free, and the forward
    /// (`slot_of`) and reverse (`id_of`) maps agree. Compiled out unless
    /// the `debug-invariants` feature is on.
    fn audit_accounting(&self) {
        gmp_sync::audit!({
            assert_eq!(
                self.slot_of.len() + self.free_slots.len(),
                self.capacity,
                "kernel buffer slot ledger out of balance: {} resident + {} free != {} slots",
                self.slot_of.len(),
                self.free_slots.len(),
                self.capacity
            );
            for (&id, &slot) in &self.slot_of {
                assert_eq!(
                    self.id_of[slot], id,
                    "reverse map disagrees at slot {slot}: slot_of says row {id}"
                );
            }
            for &slot in &self.free_slots {
                assert_eq!(
                    self.id_of[slot],
                    u32::MAX,
                    "free slot {slot} still claims a row id"
                );
            }
        });
    }

    fn evict_some(&mut self, pinned: &[u32]) {
        match self.policy {
            ReplacementPolicy::FifoBatch => {
                // Pop oldest batches, evicting their still-resident unpinned
                // rows, until something was freed. Batches whose rows are
                // all pinned are held aside (NOT re-examined this call) and
                // put back at the front afterwards so they stay oldest.
                // Batch vectors are filtered in place and recycled through
                // `batch_pool` to keep this path allocation-free.
                debug_assert!(self.held.is_empty());
                let mut evicted_any = false;
                while !evicted_any {
                    let Some(mut batch) = self.batches.pop_front() else {
                        // gmp:allow-panic — documented failure mode: the caller pinned every resident row
                        panic!("buffer full of pinned rows: eviction impossible");
                    };
                    batch.retain(|&id| {
                        if !self.slot_of.contains_key(&id) {
                            return false; // already evicted (stale entry)
                        }
                        if pinned.contains(&id) {
                            return true;
                        }
                        self.evict_row(id);
                        evicted_any = true;
                        false
                    });
                    if batch.is_empty() {
                        self.batch_pool.push(batch);
                    } else {
                        self.held.push(batch);
                    }
                }
                while let Some(batch) = self.held.pop() {
                    self.batches.push_front(batch);
                }
                self.audit_accounting();
            }
            ReplacementPolicy::Lru => {
                let victim = self
                    .slot_of
                    .keys()
                    .filter(|id| !pinned.contains(id))
                    .min_by_key(|id| self.last_used.get(id).copied().unwrap_or(0))
                    .copied()
                    // gmp:allow-panic — documented failure mode: the caller pinned every resident row
                    .expect("buffer full of pinned rows: eviction impossible");
                self.evict_row(victim);
            }
        }
    }

    fn evict_row(&mut self, id: u32) {
        if let Some(slot) = self.slot_of.remove(&id) {
            self.id_of[slot] = u32::MAX;
            self.free_slots.push(slot);
            self.last_used.remove(&id);
            self.stats.evictions += 1;
        }
    }

    /// Drop all resident rows (statistics are preserved).
    pub fn clear(&mut self) {
        self.slot_of.clear();
        self.last_used.clear();
        while let Some(mut batch) = self.batches.pop_front() {
            batch.clear();
            self.batch_pool.push(batch);
        }
        self.id_of.fill(u32::MAX);
        self.free_slots.clear();
        self.free_slots.extend((0..self.capacity).rev());
        self.audit_accounting();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_gpusim::DeviceConfig;

    fn buf(cap: usize, policy: ReplacementPolicy) -> KernelBuffer {
        KernelBuffer::new(cap, 4, policy, None).unwrap()
    }

    fn fill(b: &mut KernelBuffer, id: u32, v: f64) {
        b.row_mut(id).fill(v);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut b = buf(4, ReplacementPolicy::FifoBatch);
        b.insert_batch(&[7, 9], &[]);
        fill(&mut b, 7, 1.5);
        fill(&mut b, 9, 2.5);
        assert_eq!(b.get(7).unwrap(), &[1.5; 4]);
        assert_eq!(b.get(9).unwrap(), &[2.5; 4]);
        assert_eq!(b.len(), 2);
        let s = b.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 0, 2));
    }

    #[test]
    fn miss_is_counted() {
        let mut b = buf(2, ReplacementPolicy::FifoBatch);
        assert!(b.get(1).is_none());
        assert_eq!(b.stats().misses, 1);
        assert_eq!(b.stats().hit_rate(), 0.0);
    }

    #[test]
    fn fifo_evicts_oldest_batch() {
        let mut b = buf(4, ReplacementPolicy::FifoBatch);
        b.insert_batch(&[1, 2], &[]);
        b.insert_batch(&[3, 4], &[]);
        b.insert_batch(&[5, 6], &[]); // evicts batch {1,2}
        assert!(!b.contains(1));
        assert!(!b.contains(2));
        assert!(b.contains(3) && b.contains(4) && b.contains(5) && b.contains(6));
        assert_eq!(b.stats().evictions, 2);
    }

    #[test]
    fn fifo_skips_pinned_rows() {
        let mut b = buf(4, ReplacementPolicy::FifoBatch);
        b.insert_batch(&[1, 2], &[]);
        b.insert_batch(&[3, 4], &[]);
        // Pin 1: evicting the oldest batch must spare it.
        b.insert_batch(&[5], &[1]);
        assert!(b.contains(1));
        assert!(!b.contains(2));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut b = buf(3, ReplacementPolicy::Lru);
        b.insert_batch(&[1], &[]);
        b.insert_batch(&[2], &[]);
        b.insert_batch(&[3], &[]);
        let _ = b.get(1); // touch 1; LRU victim becomes 2
        b.insert_batch(&[4], &[]);
        assert!(b.contains(1));
        assert!(!b.contains(2));
    }

    #[test]
    fn device_memory_is_claimed_and_released() {
        let dev = Device::new(DeviceConfig::tiny_test(1024));
        {
            let b = KernelBuffer::new(4, 8, ReplacementPolicy::FifoBatch, Some(&dev)).unwrap();
            assert_eq!(dev.mem_used(), 4 * 8 * 8);
            drop(b);
        }
        assert_eq!(dev.mem_used(), 0);
    }

    #[test]
    fn oversized_buffer_fails_on_device() {
        let dev = Device::new(DeviceConfig::tiny_test(100));
        let err = KernelBuffer::new(4, 8, ReplacementPolicy::FifoBatch, Some(&dev));
        assert!(matches!(err, Err(DeviceError::OutOfMemory { .. })));
    }

    #[test]
    #[should_panic(expected = "exceeds buffer capacity")]
    fn batch_larger_than_capacity_panics() {
        let mut b = buf(2, ReplacementPolicy::FifoBatch);
        b.insert_batch(&[1, 2, 3], &[]);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut b = buf(4, ReplacementPolicy::FifoBatch);
        b.insert_batch(&[1], &[]);
        b.insert_batch(&[1], &[]);
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let mut b = buf(2, ReplacementPolicy::FifoBatch);
        b.insert_batch(&[1, 2], &[]);
        let _ = b.get(1);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.stats().hits, 1);
        b.insert_batch(&[3, 4], &[]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn rows_are_isolated() {
        let mut b = buf(3, ReplacementPolicy::FifoBatch);
        b.insert_batch(&[10, 20, 30], &[]);
        fill(&mut b, 10, 1.0);
        fill(&mut b, 20, 2.0);
        fill(&mut b, 30, 3.0);
        assert_eq!(b.row(10), &[1.0; 4]);
        assert_eq!(b.row(20), &[2.0; 4]);
        assert_eq!(b.row(30), &[3.0; 4]);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut b = buf(2, ReplacementPolicy::FifoBatch);
        b.insert_batch(&[1, 2], &[]);
        fill(&mut b, 1, 1.0);
        b.insert_batch(&[3], &[]); // evicts batch {1,2}
        fill(&mut b, 3, 3.0);
        assert_eq!(b.row(3), &[3.0; 4]);
        assert!(!b.contains(1));
        assert_eq!(b.len(), 1);
    }
}
