//! MP-SVM-level kernel value sharing (§3.3.2, Fig. 3).
//!
//! The training data is arranged class-contiguously. A kernel row of
//! instance `i` restricted to the columns of class `c` is a *segment*
//! `(i, c)`; binary problem `(s, t)` needs segments `(i, s)` and `(i, t)`
//! for each of its working-set instances `i`. Because instance `i` (of
//! class `s`) participates in `k-1` binary problems, its segment `(i, s)`
//! computed once is reused by all of them — the paper's reduction of the
//! 12 kernel blocks of Fig. 3a to the 9 of Fig. 3b generalized to any `k`.
//!
//! [`SharedKernelStore`] owns the segments (device-memory accounted, FIFO
//! eviction); [`SharedRows`] is the per-problem [`KernelRows`] view that
//! assembles `(s, t)` rows from segments.

use crate::oracle::KernelOracle;
use crate::rows::{KernelRows, RowProviderStats};
use gmp_gpusim::{Device, DeviceAlloc, DeviceError, Executor};
use gmp_sparse::DenseMatrix;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Class-contiguous layout of a grouped dataset: class `c` occupies global
/// row indices `offsets[c]..offsets[c+1]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassLayout {
    offsets: Vec<usize>,
}

impl ClassLayout {
    /// Build from per-class offsets (length `k + 1`, non-decreasing,
    /// starting at 0).
    pub fn new(offsets: Vec<usize>) -> Self {
        assert!(offsets.len() >= 2, "need at least one class");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be sorted");
        ClassLayout { offsets }
    }

    /// Number of classes.
    pub fn k(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of instances.
    pub fn n(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Global row range of class `c`.
    pub fn class_range(&self, c: usize) -> std::ops::Range<usize> {
        self.offsets[c]..self.offsets[c + 1]
    }

    /// Number of instances of class `c`.
    pub fn class_size(&self, c: usize) -> usize {
        self.offsets[c + 1] - self.offsets[c]
    }

    /// Size of binary problem `(s, t)`.
    pub fn pair_size(&self, s: usize, t: usize) -> usize {
        self.class_size(s) + self.class_size(t)
    }
}

/// Statistics of the shared store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedStoreStats {
    /// Segments computed (each is one batched-launch participant).
    pub segments_computed: u64,
    /// Segment requests served from the store.
    pub segment_hits: u64,
    /// Kernel evaluations avoided thanks to hits (sum of hit widths).
    pub evals_saved: u64,
    /// Segments evicted.
    pub evictions: u64,
}

struct StoreInner {
    segs: HashMap<(u32, u16), Vec<f64>>,
    order: VecDeque<(u32, u16)>,
    used_bytes: u64,
    stats: SharedStoreStats,
}

/// Cross-problem segment store with a byte budget claimed from the device.
pub struct SharedKernelStore {
    oracle: Arc<KernelOracle>,
    layout: ClassLayout,
    capacity_bytes: u64,
    inner: Mutex<StoreInner>,
    _device_mem: Option<DeviceAlloc>,
}

impl SharedKernelStore {
    /// A store with a `capacity_bytes` budget over the grouped dataset
    /// served by `oracle`. The budget is claimed from `device` up front
    /// (the paper pre-allocates its buffers).
    pub fn new(
        oracle: Arc<KernelOracle>,
        layout: ClassLayout,
        capacity_bytes: u64,
        device: Option<&Device>,
    ) -> Result<Self, DeviceError> {
        assert_eq!(oracle.n(), layout.n(), "oracle/layout size mismatch");
        let device_mem = match device {
            Some(d) => Some(d.alloc(capacity_bytes)?),
            None => None,
        };
        Ok(SharedKernelStore {
            oracle,
            layout,
            capacity_bytes,
            inner: Mutex::new(StoreInner {
                segs: HashMap::new(),
                order: VecDeque::new(),
                used_bytes: 0,
                stats: SharedStoreStats::default(),
            }),
            _device_mem: device_mem,
        })
    }

    /// The grouped-dataset oracle.
    pub fn oracle(&self) -> &Arc<KernelOracle> {
        &self.oracle
    }

    /// The class layout.
    pub fn layout(&self) -> &ClassLayout {
        &self.layout
    }

    /// Store statistics.
    pub fn stats(&self) -> SharedStoreStats {
        self.inner.lock().stats
    }

    /// Fetch rows of binary problem `(s, t)` for global instances
    /// `global_ids` into `out` (shape `ids.len() x (n_s + n_t)`, columns
    /// ordered `[class s | class t]`). Missing segments are computed in at
    /// most two batched launches (one per class) charged to `exec`.
    ///
    /// Returns `(segments_computed, segments_hit)` for this call.
    pub fn fetch_pair_rows(
        &self,
        exec: &dyn Executor,
        global_ids: &[usize],
        s: usize,
        t: usize,
        out: &mut DenseMatrix,
    ) -> (u64, u64) {
        assert!(s < t, "class pair must be ordered");
        let ns = self.layout.class_size(s);
        let nt = self.layout.class_size(t);
        assert_eq!(out.nrows(), global_ids.len());
        assert_eq!(out.ncols(), ns + nt);
        let mut inner = self.inner.lock();
        let mut computed = 0u64;
        let mut hits = 0u64;
        for (cls, col_off, width) in [(s as u16, 0usize, ns), (t as u16, ns, nt)] {
            // Partition into hits (copy now) and misses (batch-compute).
            let mut missing: Vec<usize> = Vec::new();
            for (ri, &gid) in global_ids.iter().enumerate() {
                if let Some(seg) = inner.segs.get(&(gid as u32, cls)) {
                    out.row_mut(ri)[col_off..col_off + width].copy_from_slice(seg);
                    inner.stats.segment_hits += 1;
                    inner.stats.evals_saved += width as u64;
                    hits += 1;
                } else {
                    missing.push(ri);
                }
            }
            if missing.is_empty() {
                continue;
            }
            let miss_ids: Vec<usize> = missing.iter().map(|&ri| global_ids[ri]).collect();
            let mut block = DenseMatrix::zeros(miss_ids.len(), width);
            self.oracle
                .compute_rows_range(exec, &miss_ids, self.layout.class_range(cls as usize), &mut block);
            inner.stats.segments_computed += miss_ids.len() as u64;
            computed += miss_ids.len() as u64;
            // Store the new segments (evicting FIFO, skipping segments of
            // the instances involved in this very call).
            let seg_bytes = (width * std::mem::size_of::<f64>()) as u64;
            for (bi, &ri) in missing.iter().enumerate() {
                let gid = global_ids[ri] as u32;
                out.row_mut(ri)[col_off..col_off + width].copy_from_slice(block.row(bi));
                if seg_bytes > self.capacity_bytes {
                    continue; // segment alone exceeds budget: serve uncached
                }
                while inner.used_bytes + seg_bytes > self.capacity_bytes {
                    if !Self::evict_one(&mut inner, global_ids) {
                        break;
                    }
                }
                if inner.used_bytes + seg_bytes <= self.capacity_bytes {
                    inner.segs.insert((gid, cls), block.row(bi).to_vec());
                    inner.order.push_back((gid, cls));
                    inner.used_bytes += seg_bytes;
                }
            }
        }
        (computed, hits)
    }

    /// Evict the oldest segment not belonging to `protected_ids`.
    /// Returns false if nothing evictable remains.
    fn evict_one(inner: &mut StoreInner, protected_ids: &[usize]) -> bool {
        let mut scanned = 0;
        while scanned < inner.order.len() {
            let key = inner.order.pop_front().expect("non-empty order queue");
            scanned += 1;
            if !inner.segs.contains_key(&key) {
                continue; // stale
            }
            if protected_ids.iter().any(|&g| g as u32 == key.0) {
                inner.order.push_back(key);
                continue;
            }
            let seg = inner.segs.remove(&key).expect("checked above");
            inner.used_bytes -= (seg.len() * std::mem::size_of::<f64>()) as u64;
            inner.stats.evictions += 1;
            return true;
        }
        false
    }

    /// Bytes of segments currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used_bytes
    }
}

/// Per-problem [`KernelRows`] view over a [`SharedKernelStore`].
///
/// Local indices `0..n_s` map to class `s`, `n_s..n_s+n_t` to class `t`.
/// Assembled rows live in a host-side working-set cache (the device memory
/// for the underlying values is accounted by the store — assembled rows are
/// views in the real system, so they are not double-charged here).
pub struct SharedRows {
    store: Arc<SharedKernelStore>,
    s: usize,
    t: usize,
    ns: usize,
    nt: usize,
    ws_capacity: usize,
    resident: HashMap<usize, Vec<f64>>,
    order: VecDeque<usize>,
    stats: RowProviderStats,
}

impl SharedRows {
    /// A view of binary problem `(s, t)` whose working-set cache holds up
    /// to `ws_capacity` assembled rows.
    pub fn new(store: Arc<SharedKernelStore>, s: usize, t: usize, ws_capacity: usize) -> Self {
        assert!(s < t, "class pair must be ordered");
        assert!(t < store.layout().k(), "class out of range");
        let ns = store.layout().class_size(s);
        let nt = store.layout().class_size(t);
        SharedRows {
            store,
            s,
            t,
            ns,
            nt,
            ws_capacity: ws_capacity.max(2),
            resident: HashMap::new(),
            order: VecDeque::new(),
            stats: RowProviderStats::default(),
        }
    }

    /// Map a local problem index to the global grouped index.
    pub fn to_global(&self, local: usize) -> usize {
        if local < self.ns {
            self.store.layout().class_range(self.s).start + local
        } else {
            self.store.layout().class_range(self.t).start + (local - self.ns)
        }
    }
}

impl KernelRows for SharedRows {
    fn n(&self) -> usize {
        self.ns + self.nt
    }

    fn diag(&self, i: usize) -> f64 {
        self.store.oracle().diag(self.to_global(i))
    }

    fn ensure(&mut self, exec: &dyn Executor, ids: &[usize]) {
        assert!(
            ids.len() <= self.ws_capacity,
            "working set of {} exceeds capacity {}",
            ids.len(),
            self.ws_capacity
        );
        let missing: Vec<usize> = ids.iter().copied().filter(|i| !self.resident.contains_key(i)).collect();
        self.stats.buffer_hits += (ids.len() - missing.len()) as u64;
        self.stats.buffer_misses += missing.len() as u64;
        if missing.is_empty() {
            return;
        }
        // Make room, FIFO, never evicting requested rows.
        while self.resident.len() + missing.len() > self.ws_capacity {
            let Some(victim) = self.order.pop_front() else { break };
            if ids.contains(&victim) {
                self.order.push_back(victim);
                continue;
            }
            if self.resident.remove(&victim).is_some() {
                self.stats.evictions += 1;
            }
        }
        let globals: Vec<usize> = missing.iter().map(|&l| self.to_global(l)).collect();
        let evals_before = self.store.oracle().eval_count();
        let mut block = DenseMatrix::zeros(missing.len(), self.n());
        let (computed, _hits) = self
            .store
            .fetch_pair_rows(exec, &globals, self.s, self.t, &mut block);
        self.stats.kernel_evals += self.store.oracle().eval_count() - evals_before;
        self.stats.rows_computed += computed.div_ceil(2).min(missing.len() as u64);
        for (bi, &l) in missing.iter().enumerate() {
            self.resident.insert(l, block.row(bi).to_vec());
            self.order.push_back(l);
        }
    }

    fn row(&self, id: usize) -> &[f64] {
        self.resident
            .get(&id)
            .unwrap_or_else(|| panic!("row {id} not resident in shared working set"))
    }

    fn is_resident(&self, id: usize) -> bool {
        self.resident.contains_key(&id)
    }

    fn stats(&self) -> RowProviderStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::KernelKind;
    use gmp_gpusim::{CpuExecutor, HostConfig};
    use gmp_sparse::CsrMatrix;

    /// 6 instances, 3 classes of 2 (grouped): layout [0,2,4,6].
    fn store(capacity: u64) -> Arc<SharedKernelStore> {
        let data = Arc::new(CsrMatrix::from_dense(
            &[
                vec![1.0, 0.0],
                vec![0.9, 0.1],
                vec![0.0, 1.0],
                vec![0.1, 0.9],
                vec![1.0, 1.0],
                vec![0.9, 1.1],
            ],
            2,
        ));
        let oracle = Arc::new(KernelOracle::new(data, KernelKind::Rbf { gamma: 1.0 }));
        Arc::new(
            SharedKernelStore::new(oracle, ClassLayout::new(vec![0, 2, 4, 6]), capacity, None)
                .unwrap(),
        )
    }

    fn exec() -> CpuExecutor {
        CpuExecutor::new(HostConfig::xeon_e5_2640_v4(1))
    }

    #[test]
    fn layout_accessors() {
        let l = ClassLayout::new(vec![0, 2, 4, 6]);
        assert_eq!(l.k(), 3);
        assert_eq!(l.n(), 6);
        assert_eq!(l.class_range(1), 2..4);
        assert_eq!(l.class_size(2), 2);
        assert_eq!(l.pair_size(0, 2), 4);
    }

    #[test]
    fn fetch_matches_oracle() {
        let st = store(1 << 20);
        let e = exec();
        let mut out = DenseMatrix::zeros(1, 4);
        st.fetch_pair_rows(&e, &[0], 0, 1, &mut out);
        // Columns: class 0 (globals 0,1), class 1 (globals 2,3).
        for (col, j) in [(0usize, 0usize), (1, 1), (2, 2), (3, 3)] {
            let expect = st.oracle().eval_pair(0, j);
            assert!((out.get(0, col) - expect).abs() < 1e-12, "col {col}");
        }
    }

    #[test]
    fn segments_are_shared_across_problems() {
        let st = store(1 << 20);
        let e = exec();
        // Problem (0,1) touches segment (instance 0, class 0).
        let mut o1 = DenseMatrix::zeros(1, 4);
        st.fetch_pair_rows(&e, &[0], 0, 1, &mut o1);
        // Problem (0,2) reuses segment (0, class 0): 1 hit expected.
        let mut o2 = DenseMatrix::zeros(1, 4);
        let (_computed, hits) = st.fetch_pair_rows(&e, &[0], 0, 2, &mut o2);
        assert_eq!(hits, 1);
        assert!(st.stats().evals_saved >= 2);
        // Shared column values agree.
        assert_eq!(o1.get(0, 0), o2.get(0, 0));
        assert_eq!(o1.get(0, 1), o2.get(0, 1));
    }

    #[test]
    fn store_respects_byte_budget() {
        // Each class segment is 2 values = 16 bytes; budget of 32 = 2 segs.
        let st = store(32);
        let e = exec();
        let mut out = DenseMatrix::zeros(2, 4);
        st.fetch_pair_rows(&e, &[0, 1], 0, 1, &mut out);
        assert!(st.used_bytes() <= 32);
        assert!(st.stats().evictions > 0 || st.used_bytes() == 32);
    }

    #[test]
    fn shared_rows_local_global_mapping() {
        let st = store(1 << 20);
        let v = SharedRows::new(st, 1, 2, 8);
        assert_eq!(v.n(), 4);
        assert_eq!(v.to_global(0), 2);
        assert_eq!(v.to_global(1), 3);
        assert_eq!(v.to_global(2), 4);
        assert_eq!(v.to_global(3), 5);
    }

    #[test]
    fn shared_rows_ensure_and_row() {
        let st = store(1 << 20);
        let mut v = SharedRows::new(st.clone(), 0, 1, 8);
        let e = exec();
        v.ensure(&e, &[0, 2]);
        assert!(v.is_resident(0) && v.is_resident(2));
        let r = v.row(0); // instance global 0 vs [0,1,2,3]
        assert_eq!(r.len(), 4);
        assert!((r[0] - 1.0).abs() < 1e-12); // RBF self
        let direct = st.oracle().eval_pair(0, 2);
        assert!((r[2] - direct).abs() < 1e-12);
    }

    #[test]
    fn shared_rows_diag() {
        let st = store(1 << 20);
        let v = SharedRows::new(st, 0, 2, 8);
        for i in 0..4 {
            assert_eq!(v.diag(i), 1.0);
        }
    }

    #[test]
    fn repeated_ensure_uses_local_cache() {
        let st = store(1 << 20);
        let mut v = SharedRows::new(st, 0, 1, 8);
        let e = exec();
        v.ensure(&e, &[1]);
        let evals = v.stats().kernel_evals;
        v.ensure(&e, &[1]);
        assert_eq!(v.stats().kernel_evals, evals);
        assert!(v.stats().buffer_hits >= 1);
    }

    #[test]
    fn two_views_share_store_segments() {
        let st = store(1 << 20);
        let e = exec();
        let mut v01 = SharedRows::new(st.clone(), 0, 1, 8);
        let mut v02 = SharedRows::new(st.clone(), 0, 2, 8);
        v01.ensure(&e, &[0, 1]); // computes segments (0,c0),(0,c1),(1,c0),(1,c1)
        let before = st.stats().segment_hits;
        v02.ensure(&e, &[0, 1]); // reuses (0,c0),(1,c0)
        assert_eq!(st.stats().segment_hits - before, 2);
    }

    #[test]
    fn ws_eviction_fifo() {
        let st = store(1 << 20);
        let mut v = SharedRows::new(st, 0, 1, 2);
        let e = exec();
        v.ensure(&e, &[0, 1]);
        v.ensure(&e, &[2]); // evicts 0 (oldest)
        assert!(!v.is_resident(0));
        assert!(v.is_resident(1) && v.is_resident(2));
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn row_panics_when_absent() {
        let st = store(1 << 20);
        let v = SharedRows::new(st, 0, 1, 4);
        let _ = v.row(3);
    }
}
