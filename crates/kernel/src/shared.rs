//! MP-SVM-level kernel value sharing (§3.3.2, Fig. 3).
//!
//! The training data is arranged class-contiguously. A kernel row of
//! instance `i` restricted to the columns of class `c` is a *segment*
//! `(i, c)`; binary problem `(s, t)` needs segments `(i, s)` and `(i, t)`
//! for each of its working-set instances `i`. Because instance `i` (of
//! class `s`) participates in `k-1` binary problems, its segment `(i, s)`
//! computed once is reused by all of them — the paper's reduction of the
//! 12 kernel blocks of Fig. 3a to the 9 of Fig. 3b generalized to any `k`.
//!
//! [`SharedKernelStore`] owns the segments (device-memory accounted, FIFO
//! eviction); [`SharedRows`] is the per-problem [`KernelRows`] view that
//! assembles `(s, t)` rows from segments.
//!
//! # Concurrency
//!
//! The store is safe to share (`Arc`) between binary problems solved on
//! concurrent host threads. The segment map is split into [`N_SHARDS`]
//! independently locked shards so problems touching different instances
//! never contend, and segment computation is **single-flight**: the first
//! requester of a missing segment installs a `Pending` marker and computes
//! it; concurrent requesters of the same segment block on the shard's
//! condition variable until the value is published, instead of computing
//! it a second time. Kernel-evaluation counts under `N` threads therefore
//! equal the sequential counts exactly (absent eviction pressure).
//!
//! Lock ordering: the eviction bookkeeping lock is always acquired
//! *before* any shard lock, and no thread ever takes the eviction lock
//! while holding a shard lock — so the pair cannot deadlock. A thread that
//! panics while owning a `Pending` marker would strand its waiters, but
//! every compute path runs under a scope that propagates worker panics.
//!
//! Locks and condvars go through the `gmp-sync` shim, so under
//! `--features loom` the single-flight protocol is exhaustively
//! model-checked (see `tests/loom_shared.rs`). The statistics cell stays on
//! plain `std` atomics on purpose: the counters are monotone telemetry read
//! at quiescence, and keeping them outside the model keeps the explored
//! state space focused on the lock/condvar protocol.

use crate::oracle::KernelOracle;
use crate::rows::{KernelRows, RowProviderStats};
use gmp_gpusim::{Device, DeviceAlloc, DeviceError, Executor};
use gmp_sparse::DenseMatrix;
use gmp_sync::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked segment-map shards.
const N_SHARDS: usize = 16;

/// Class-contiguous layout of a grouped dataset: class `c` occupies global
/// row indices `offsets[c]..offsets[c+1]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassLayout {
    offsets: Vec<usize>,
}

impl ClassLayout {
    /// Build from per-class offsets (length `k + 1`, non-decreasing,
    /// starting at 0).
    pub fn new(offsets: Vec<usize>) -> Self {
        assert!(offsets.len() >= 2, "need at least one class");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be sorted"
        );
        ClassLayout { offsets }
    }

    /// Number of classes.
    pub fn k(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of instances.
    pub fn n(&self) -> usize {
        // `offsets` has at least two entries (checked in `new`).
        self.offsets.last().copied().unwrap_or(0)
    }

    /// Global row range of class `c`.
    pub fn class_range(&self, c: usize) -> std::ops::Range<usize> {
        self.offsets[c]..self.offsets[c + 1]
    }

    /// Number of instances of class `c`.
    pub fn class_size(&self, c: usize) -> usize {
        self.offsets[c + 1] - self.offsets[c]
    }

    /// Size of binary problem `(s, t)`.
    pub fn pair_size(&self, s: usize, t: usize) -> usize {
        self.class_size(s) + self.class_size(t)
    }
}

/// Statistics of the shared store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedStoreStats {
    /// Segments computed (each is one batched-launch participant).
    pub segments_computed: u64,
    /// Segment requests served from the store (including waits on a
    /// concurrent computation of the same segment).
    pub segment_hits: u64,
    /// Kernel evaluations avoided thanks to hits (sum of hit widths).
    pub evals_saved: u64,
    /// Segments evicted.
    pub evictions: u64,
}

/// Per-call outcome of [`SharedKernelStore::fetch_pair_rows`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchOutcome {
    /// Segments computed by this call.
    pub computed: u64,
    /// Segments served from the store (ready hits + single-flight waits).
    pub hits: u64,
    /// Kernel values computed by this call (owner-attributed: a value
    /// another problem later reuses is counted here, once, and never by
    /// the reuser).
    pub evals: u64,
}

/// A segment slot: being computed by some thread, or ready for copying.
#[derive(Clone)]
enum SegState {
    /// A thread is computing this segment; wait on the shard's condvar.
    Pending,
    /// Value available. `Arc` so eviction never invalidates readers.
    Ready(Arc<Vec<f64>>),
}

#[derive(Default)]
struct Shard {
    segs: HashMap<(u32, u16), SegState>,
}

/// Global FIFO eviction bookkeeping (only successfully cached segments).
#[derive(Default)]
struct EvictState {
    order: VecDeque<(u32, u16)>,
    used_bytes: u64,
}

#[derive(Default)]
struct StoreStatsCell {
    segments_computed: AtomicU64,
    segment_hits: AtomicU64,
    evals_saved: AtomicU64,
    evictions: AtomicU64,
}

/// Cross-problem segment store with a byte budget claimed from the device.
pub struct SharedKernelStore {
    oracle: Arc<KernelOracle>,
    layout: ClassLayout,
    capacity_bytes: u64,
    shards: Vec<(Mutex<Shard>, Condvar)>,
    evict: Mutex<EvictState>,
    stats: StoreStatsCell,
    _device_mem: Option<DeviceAlloc>,
}

fn shard_of(key: (u32, u16)) -> usize {
    // Fibonacci hashing over (gid, cls); shards only need rough balance.
    let h = (key.0 as u64) << 16 | key.1 as u64;
    (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize % N_SHARDS
}

impl SharedKernelStore {
    /// A store with a `capacity_bytes` budget over the grouped dataset
    /// served by `oracle`. The budget is claimed from `device` up front
    /// (the paper pre-allocates its buffers).
    pub fn new(
        oracle: Arc<KernelOracle>,
        layout: ClassLayout,
        capacity_bytes: u64,
        device: Option<&Device>,
    ) -> Result<Self, DeviceError> {
        assert_eq!(oracle.n(), layout.n(), "oracle/layout size mismatch");
        let device_mem = match device {
            Some(d) => Some(d.alloc(capacity_bytes)?),
            None => None,
        };
        Ok(SharedKernelStore {
            oracle,
            layout,
            capacity_bytes,
            shards: (0..N_SHARDS)
                .map(|_| (Mutex::new(Shard::default()), Condvar::new()))
                .collect(),
            evict: Mutex::new(EvictState::default()),
            stats: StoreStatsCell::default(),
            _device_mem: device_mem,
        })
    }

    /// The grouped-dataset oracle.
    pub fn oracle(&self) -> &Arc<KernelOracle> {
        &self.oracle
    }

    /// The class layout.
    pub fn layout(&self) -> &ClassLayout {
        &self.layout
    }

    /// Store statistics.
    pub fn stats(&self) -> SharedStoreStats {
        SharedStoreStats {
            segments_computed: self.stats.segments_computed.load(Ordering::Relaxed),
            segment_hits: self.stats.segment_hits.load(Ordering::Relaxed),
            evals_saved: self.stats.evals_saved.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
        }
    }

    /// Bytes of segments currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.evict.lock().used_bytes
    }

    /// Fetch rows of binary problem `(s, t)` for global instances
    /// `global_ids` into the first `global_ids.len()` rows of `out`
    /// (width `n_s + n_t`, columns ordered `[class s | class t]`).
    /// Missing segments are computed in at most two batched launches (one
    /// per class) charged to `exec`; segments being computed concurrently
    /// by another thread are waited for, not recomputed.
    pub fn fetch_pair_rows(
        &self,
        exec: &dyn Executor,
        global_ids: &[usize],
        s: usize,
        t: usize,
        out: &mut DenseMatrix,
    ) -> FetchOutcome {
        assert!(s < t, "class pair must be ordered");
        let ns = self.layout.class_size(s);
        let nt = self.layout.class_size(t);
        assert!(out.nrows() >= global_ids.len(), "output too small");
        assert_eq!(out.ncols(), ns + nt);
        let mut outcome = FetchOutcome::default();
        for (cls, col_off, width) in [(s as u16, 0usize, ns), (t as u16, ns, nt)] {
            self.fetch_class_segments(exec, global_ids, cls, col_off, width, out, &mut outcome);
        }
        outcome
    }

    /// One class of [`SharedKernelStore::fetch_pair_rows`]: classify each
    /// requested segment as ready / pending-elsewhere / ours-to-compute,
    /// batch-compute the owned misses, publish them, then wait out the
    /// pending ones.
    #[allow(clippy::too_many_arguments)]
    fn fetch_class_segments(
        &self,
        exec: &dyn Executor,
        global_ids: &[usize],
        cls: u16,
        col_off: usize,
        width: usize,
        out: &mut DenseMatrix,
        outcome: &mut FetchOutcome,
    ) {
        let seg_bytes = (width * std::mem::size_of::<f64>()) as u64;
        // A segment wider than the whole budget is served uncached (and,
        // degenerately, without single-flight — there is nothing to share).
        let cacheable = width > 0 && seg_bytes <= self.capacity_bytes;
        let range = self.layout.class_range(cls as usize);

        let mut to_compute: Vec<usize> = Vec::new(); // ri: we own the Pending marker
        let mut to_wait: Vec<usize> = Vec::new(); // ri: another thread is computing
        for (ri, &gid) in global_ids.iter().enumerate() {
            let key = (gid as u32, cls);
            if !cacheable {
                to_compute.push(ri);
                continue;
            }
            let (lock, _cv) = &self.shards[shard_of(key)];
            let mut shard = lock.lock();
            match shard.segs.get(&key) {
                Some(SegState::Ready(seg)) => {
                    let seg = seg.clone();
                    drop(shard);
                    out.row_mut(ri)[col_off..col_off + width].copy_from_slice(&seg);
                    self.stats.segment_hits.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .evals_saved
                        .fetch_add(width as u64, Ordering::Relaxed);
                    outcome.hits += 1;
                }
                Some(SegState::Pending) => to_wait.push(ri),
                None => {
                    shard.segs.insert(key, SegState::Pending);
                    to_compute.push(ri);
                }
            }
        }

        if !to_compute.is_empty() {
            let miss_ids: Vec<usize> = to_compute.iter().map(|&ri| global_ids[ri]).collect();
            let mut block = DenseMatrix::zeros(miss_ids.len(), width);
            // The backend's owner-attributed eval count is the slot
            // ledger's ground truth (exactly `rows × width`, audited at
            // the oracle boundary).
            let evals = self
                .oracle
                .compute_rows_range(exec, &miss_ids, range.clone(), &mut block);
            gmp_sync::audit!(assert_eq!(
                evals,
                (miss_ids.len() * width) as u64,
                "shared-store block launch eval count out of step with ledger"
            ));
            self.stats
                .segments_computed
                .fetch_add(miss_ids.len() as u64, Ordering::Relaxed);
            outcome.computed += miss_ids.len() as u64;
            outcome.evals += evals;
            for (bi, &ri) in to_compute.iter().enumerate() {
                out.row_mut(ri)[col_off..col_off + width].copy_from_slice(block.row(bi));
                if !cacheable {
                    continue;
                }
                let key = (global_ids[ri] as u32, cls);
                let seg = Arc::new(block.row(bi).to_vec());
                // Publish first so waiters can proceed, then account the
                // bytes; if the budget cannot fit it (everything evictable
                // is protected), un-publish — waiters that already cloned
                // the Arc are unaffected.
                {
                    let (lock, cv) = &self.shards[shard_of(key)];
                    lock.lock().segs.insert(key, SegState::Ready(seg));
                    cv.notify_all();
                }
                if !self.account_insert(key, seg_bytes, global_ids) {
                    let (lock, _cv) = &self.shards[shard_of(key)];
                    lock.lock().segs.remove(&key);
                }
            }
        }

        for &ri in &to_wait {
            let gid = global_ids[ri];
            let key = (gid as u32, cls);
            let (lock, cv) = &self.shards[shard_of(key)];
            let mut shard = lock.lock();
            loop {
                match shard.segs.get(&key) {
                    Some(SegState::Ready(seg)) => {
                        let seg = seg.clone();
                        drop(shard);
                        out.row_mut(ri)[col_off..col_off + width].copy_from_slice(&seg);
                        self.stats.segment_hits.fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .evals_saved
                            .fetch_add(width as u64, Ordering::Relaxed);
                        outcome.hits += 1;
                        break;
                    }
                    Some(SegState::Pending) => cv.wait(&mut shard),
                    None => {
                        // Published and already gone (un-published or
                        // evicted before we woke): compute it ourselves,
                        // uncached — rare, eviction-pressure-only path.
                        drop(shard);
                        let mut one = DenseMatrix::zeros(1, width);
                        let evals =
                            self.oracle
                                .compute_rows_range(exec, &[gid], range.clone(), &mut one);
                        gmp_sync::audit!(assert_eq!(
                            evals, width as u64,
                            "shared-store fallback launch eval count out of step with ledger"
                        ));
                        out.row_mut(ri)[col_off..col_off + width].copy_from_slice(one.row(0));
                        self.stats.segments_computed.fetch_add(1, Ordering::Relaxed);
                        outcome.computed += 1;
                        outcome.evals += evals;
                        break;
                    }
                }
            }
        }
    }

    /// Reserve `seg_bytes` for `key`, evicting FIFO (skipping segments of
    /// `protected_ids`) as needed. Returns false when the budget cannot
    /// accommodate the segment.
    fn account_insert(&self, key: (u32, u16), seg_bytes: u64, protected_ids: &[usize]) -> bool {
        let mut ev = self.evict.lock();
        while ev.used_bytes + seg_bytes > self.capacity_bytes {
            if !self.evict_one(&mut ev, protected_ids) {
                break;
            }
        }
        if ev.used_bytes + seg_bytes <= self.capacity_bytes {
            ev.order.push_back(key);
            ev.used_bytes += seg_bytes;
            true
        } else {
            false
        }
    }

    /// Evict the oldest segment not belonging to `protected_ids`.
    /// Returns false if nothing evictable remains. Caller holds the
    /// eviction lock; shard locks are taken underneath it (see the module
    /// doc's lock ordering).
    fn evict_one(&self, ev: &mut EvictState, protected_ids: &[usize]) -> bool {
        let mut scanned = 0;
        while scanned < ev.order.len() {
            let Some(key) = ev.order.pop_front() else {
                break;
            };
            scanned += 1;
            if protected_ids.iter().any(|&g| g as u32 == key.0) {
                ev.order.push_back(key);
                continue;
            }
            let (lock, _cv) = &self.shards[shard_of(key)];
            let removed = lock.lock().segs.remove(&key);
            match removed {
                Some(SegState::Ready(seg)) => {
                    ev.used_bytes -= (seg.len() * std::mem::size_of::<f64>()) as u64;
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Some(SegState::Pending) => {
                    // Never accounted; cannot be in the order queue — but
                    // restore defensively and keep scanning.
                    lock.lock().segs.insert(key, SegState::Pending);
                }
                None => {} // stale entry
            }
        }
        false
    }
}

/// Per-problem [`KernelRows`] view over a [`SharedKernelStore`].
///
/// Local indices `0..n_s` map to class `s`, `n_s..n_s+n_t` to class `t`.
/// Assembled rows live in a host-side working-set cache (the device memory
/// for the underlying values is accounted by the store — assembled rows are
/// views in the real system, so they are not double-charged here). All
/// per-`ensure` scratch (the global-id list and the assembly block) is
/// retained between calls, so steady-state `ensure` stays off the
/// allocator except for first-touch row storage (which is pooled from
/// evicted rows).
pub struct SharedRows {
    store: Arc<SharedKernelStore>,
    s: usize,
    t: usize,
    ns: usize,
    nt: usize,
    ws_capacity: usize,
    resident: HashMap<usize, Vec<f64>>,
    order: VecDeque<usize>,
    stats: RowProviderStats,
    // Reused scratch: missing local ids, their global ids, assembly block,
    // and storage vectors recycled from evicted rows.
    missing: Vec<usize>,
    globals: Vec<usize>,
    block: DenseMatrix,
    row_pool: Vec<Vec<f64>>,
}

impl SharedRows {
    /// A view of binary problem `(s, t)` whose working-set cache holds up
    /// to `ws_capacity` assembled rows.
    pub fn new(store: Arc<SharedKernelStore>, s: usize, t: usize, ws_capacity: usize) -> Self {
        assert!(s < t, "class pair must be ordered");
        assert!(t < store.layout().k(), "class out of range");
        let ns = store.layout().class_size(s);
        let nt = store.layout().class_size(t);
        SharedRows {
            store,
            s,
            t,
            ns,
            nt,
            ws_capacity: ws_capacity.max(2),
            resident: HashMap::new(),
            order: VecDeque::new(),
            stats: RowProviderStats::default(),
            missing: Vec::new(),
            globals: Vec::new(),
            block: DenseMatrix::zeros(0, 0),
            row_pool: Vec::new(),
        }
    }

    /// Map a local problem index to the global grouped index.
    pub fn to_global(&self, local: usize) -> usize {
        if local < self.ns {
            self.store.layout().class_range(self.s).start + local
        } else {
            self.store.layout().class_range(self.t).start + (local - self.ns)
        }
    }
}

impl KernelRows for SharedRows {
    fn n(&self) -> usize {
        self.ns + self.nt
    }

    fn diag(&self, i: usize) -> f64 {
        self.store.oracle().diag(self.to_global(i))
    }

    fn ensure(&mut self, exec: &dyn Executor, ids: &[usize]) {
        assert!(
            ids.len() <= self.ws_capacity,
            "working set of {} exceeds capacity {}",
            ids.len(),
            self.ws_capacity
        );
        self.missing.clear();
        self.missing.extend(
            ids.iter()
                .copied()
                .filter(|i| !self.resident.contains_key(i)),
        );
        self.stats.buffer_hits += (ids.len() - self.missing.len()) as u64;
        self.stats.buffer_misses += self.missing.len() as u64;
        if self.missing.is_empty() {
            return;
        }
        // Make room, FIFO, never evicting requested rows.
        while self.resident.len() + self.missing.len() > self.ws_capacity {
            let Some(victim) = self.order.pop_front() else {
                break;
            };
            if ids.contains(&victim) {
                self.order.push_back(victim);
                continue;
            }
            if let Some(freed) = self.resident.remove(&victim) {
                self.stats.evictions += 1;
                self.row_pool.push(freed);
            }
        }
        self.globals.clear();
        let (s, t) = (self.s, self.t);
        for &l in &self.missing {
            // Inline to_global: `self` is partially borrowed here.
            let g = if l < self.ns {
                self.store.layout().class_range(s).start + l
            } else {
                self.store.layout().class_range(t).start + (l - self.ns)
            };
            self.globals.push(g);
        }
        let width = self.ns + self.nt;
        self.block.reset(self.missing.len(), width);
        let outcome = self
            .store
            .fetch_pair_rows(exec, &self.globals, s, t, &mut self.block);
        self.stats.kernel_evals += outcome.evals;
        // One computed class-segment = one batched-launch row. Counting
        // segments (not assembled problem rows) keeps the statistic exact
        // and additive across providers, so totals are identical no matter
        // which thread's fetch ends up computing a racing segment.
        self.stats.rows_computed += outcome.computed;
        for (bi, &l) in self.missing.iter().enumerate() {
            let mut storage = self.row_pool.pop().unwrap_or_default();
            storage.clear();
            storage.extend_from_slice(self.block.row(bi));
            self.resident.insert(l, storage);
            self.order.push_back(l);
        }
    }

    fn row(&self, id: usize) -> &[f64] {
        // gmp:allow-panic — documented `KernelRows::row` contract: callers
        // must `ensure` the id first; a miss is a solver bug, not an input
        // error (covered by the `row_panics_when_absent` test).
        self.resident
            .get(&id)
            .unwrap_or_else(|| panic!("row {id} not resident in shared working set"))
    }

    fn is_resident(&self, id: usize) -> bool {
        self.resident.contains_key(&id)
    }

    fn stats(&self) -> RowProviderStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::KernelKind;
    use gmp_gpusim::CpuExecutor;
    use gmp_sparse::CsrMatrix;

    /// 6 instances, 3 classes of 2 (grouped): layout [0,2,4,6].
    fn store(capacity: u64) -> Arc<SharedKernelStore> {
        let data = Arc::new(CsrMatrix::from_dense(
            &[
                vec![1.0, 0.0],
                vec![0.9, 0.1],
                vec![0.0, 1.0],
                vec![0.1, 0.9],
                vec![1.0, 1.0],
                vec![0.9, 1.1],
            ],
            2,
        ));
        let oracle = Arc::new(KernelOracle::new(data, KernelKind::Rbf { gamma: 1.0 }));
        Arc::new(
            SharedKernelStore::new(oracle, ClassLayout::new(vec![0, 2, 4, 6]), capacity, None)
                .unwrap(),
        )
    }

    fn exec() -> CpuExecutor {
        CpuExecutor::xeon(1)
    }

    #[test]
    fn layout_accessors() {
        let l = ClassLayout::new(vec![0, 2, 4, 6]);
        assert_eq!(l.k(), 3);
        assert_eq!(l.n(), 6);
        assert_eq!(l.class_range(1), 2..4);
        assert_eq!(l.class_size(2), 2);
        assert_eq!(l.pair_size(0, 2), 4);
    }

    #[test]
    fn fetch_matches_oracle() {
        let st = store(1 << 20);
        let e = exec();
        let mut out = DenseMatrix::zeros(1, 4);
        st.fetch_pair_rows(&e, &[0], 0, 1, &mut out);
        // Columns: class 0 (globals 0,1), class 1 (globals 2,3).
        for (col, j) in [(0usize, 0usize), (1, 1), (2, 2), (3, 3)] {
            let expect = st.oracle().eval_pair(0, j);
            assert!((out.get(0, col) - expect).abs() < 1e-12, "col {col}");
        }
    }

    #[test]
    fn segments_are_shared_across_problems() {
        let st = store(1 << 20);
        let e = exec();
        // Problem (0,1) touches segment (instance 0, class 0).
        let mut o1 = DenseMatrix::zeros(1, 4);
        st.fetch_pair_rows(&e, &[0], 0, 1, &mut o1);
        // Problem (0,2) reuses segment (0, class 0): 1 hit expected.
        let mut o2 = DenseMatrix::zeros(1, 4);
        let outcome = st.fetch_pair_rows(&e, &[0], 0, 2, &mut o2);
        assert_eq!(outcome.hits, 1);
        assert!(st.stats().evals_saved >= 2);
        // Shared column values agree.
        assert_eq!(o1.get(0, 0), o2.get(0, 0));
        assert_eq!(o1.get(0, 1), o2.get(0, 1));
    }

    #[test]
    fn store_respects_byte_budget() {
        // Each class segment is 2 values = 16 bytes; budget of 32 = 2 segs.
        let st = store(32);
        let e = exec();
        let mut out = DenseMatrix::zeros(2, 4);
        st.fetch_pair_rows(&e, &[0, 1], 0, 1, &mut out);
        assert!(st.used_bytes() <= 32);
        assert!(st.stats().evictions > 0 || st.used_bytes() == 32);
    }

    #[test]
    fn eval_attribution_is_owner_only() {
        let st = store(1 << 20);
        let e = exec();
        let mut o1 = DenseMatrix::zeros(1, 4);
        let first = st.fetch_pair_rows(&e, &[0], 0, 1, &mut o1);
        assert_eq!(first.evals, 4); // two 2-wide segments
        let mut o2 = DenseMatrix::zeros(1, 4);
        let second = st.fetch_pair_rows(&e, &[0], 0, 2, &mut o2);
        // Reused (0, class-0) segment contributes no evals to the reuser.
        assert_eq!(second.evals, 2);
        assert_eq!(
            st.oracle().eval_count(),
            first.evals + second.evals,
            "per-call attribution must sum to the oracle total"
        );
    }

    #[test]
    fn concurrent_fetches_compute_each_segment_once() {
        // N threads all requesting the same rows: single-flight must keep
        // the oracle's eval count identical to one sequential pass.
        let st = store(1 << 20);
        crossbeam::thread::scope(|sc| {
            for _ in 0..4 {
                let st = st.clone();
                sc.spawn(move |_| {
                    let e = exec();
                    let mut out = DenseMatrix::zeros(2, 4);
                    st.fetch_pair_rows(&e, &[0, 1], 0, 1, &mut out);
                });
            }
        })
        .expect("fetch thread panicked");
        // 2 rows x 2 segments each computed exactly once: 2*2 + 2*2 evals.
        assert_eq!(st.oracle().eval_count(), 8);
        assert_eq!(st.stats().segments_computed, 4);
        assert_eq!(st.stats().segment_hits, 3 * 4);
    }

    #[test]
    fn shared_rows_local_global_mapping() {
        let st = store(1 << 20);
        let v = SharedRows::new(st, 1, 2, 8);
        assert_eq!(v.n(), 4);
        assert_eq!(v.to_global(0), 2);
        assert_eq!(v.to_global(1), 3);
        assert_eq!(v.to_global(2), 4);
        assert_eq!(v.to_global(3), 5);
    }

    #[test]
    fn shared_rows_ensure_and_row() {
        let st = store(1 << 20);
        let mut v = SharedRows::new(st.clone(), 0, 1, 8);
        let e = exec();
        v.ensure(&e, &[0, 2]);
        assert!(v.is_resident(0) && v.is_resident(2));
        let r = v.row(0); // instance global 0 vs [0,1,2,3]
        assert_eq!(r.len(), 4);
        assert!((r[0] - 1.0).abs() < 1e-12); // RBF self
        let direct = st.oracle().eval_pair(0, 2);
        assert!((r[2] - direct).abs() < 1e-12);
    }

    #[test]
    fn shared_rows_diag() {
        let st = store(1 << 20);
        let v = SharedRows::new(st, 0, 2, 8);
        for i in 0..4 {
            assert_eq!(v.diag(i), 1.0);
        }
    }

    #[test]
    fn repeated_ensure_uses_local_cache() {
        let st = store(1 << 20);
        let mut v = SharedRows::new(st, 0, 1, 8);
        let e = exec();
        v.ensure(&e, &[1]);
        let evals = v.stats().kernel_evals;
        v.ensure(&e, &[1]);
        assert_eq!(v.stats().kernel_evals, evals);
        assert!(v.stats().buffer_hits >= 1);
    }

    #[test]
    fn two_views_share_store_segments() {
        let st = store(1 << 20);
        let e = exec();
        let mut v01 = SharedRows::new(st.clone(), 0, 1, 8);
        let mut v02 = SharedRows::new(st.clone(), 0, 2, 8);
        v01.ensure(&e, &[0, 1]); // computes segments (0,c0),(0,c1),(1,c0),(1,c1)
        let before = st.stats().segment_hits;
        v02.ensure(&e, &[0, 1]); // reuses (0,c0),(1,c0)
        assert_eq!(st.stats().segment_hits - before, 2);
    }

    #[test]
    fn ws_eviction_fifo() {
        let st = store(1 << 20);
        let mut v = SharedRows::new(st, 0, 1, 2);
        let e = exec();
        v.ensure(&e, &[0, 1]);
        v.ensure(&e, &[2]); // evicts 0 (oldest)
        assert!(!v.is_resident(0));
        assert!(v.is_resident(1) && v.is_resident(2));
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn row_panics_when_absent() {
        let st = store(1 << 20);
        let v = SharedRows::new(st, 0, 1, 4);
        let _ = v.row(3);
    }
}
