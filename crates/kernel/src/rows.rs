//! The row-provider interface consumed by SMO solvers.

use crate::buffer::{KernelBuffer, ReplacementPolicy};
use crate::oracle::KernelOracle;
use gmp_gpusim::{Device, DeviceError, Executor};
use gmp_sparse::DenseMatrix;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Telemetry of a row provider.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RowProviderStats {
    /// Individual kernel values computed.
    pub kernel_evals: u64,
    /// Full rows computed (a row of width `n` counts once).
    pub rows_computed: u64,
    /// Rows served from the buffer without recomputation.
    pub buffer_hits: u64,
    /// Rows that had to be computed because they were absent.
    pub buffer_misses: u64,
    /// Rows evicted from the buffer.
    pub evictions: u64,
}

/// Supplies full kernel-matrix rows for a (binary) training problem of `n`
/// instances. Rows are indexed by the problem's local instance index.
pub trait KernelRows {
    /// Problem size (rows are `n` values wide).
    fn n(&self) -> usize;

    /// `K(x_i, x_i)` for local instance `i`.
    fn diag(&self, i: usize) -> f64;

    /// Make the rows for `ids` resident, computing the missing ones in one
    /// batched launch charged to `exec`. When `ids` fits the provider's
    /// capacity (the normal solver regime), all of them are guaranteed
    /// resident until the next `ensure` call. Oversized requests degrade
    /// gracefully: they are processed in capacity-sized sub-batches, and
    /// only the rows of the final sub-batch are guaranteed resident
    /// afterwards.
    fn ensure(&mut self, exec: &dyn Executor, ids: &[usize]);

    /// Borrow a resident row.
    ///
    /// # Panics
    /// Panics if `id` was not part of the most recent [`KernelRows::ensure`].
    fn row(&self, id: usize) -> &[f64];

    /// Whether the row for `id` is currently resident.
    fn is_resident(&self, id: usize) -> bool;

    /// Telemetry snapshot.
    fn stats(&self) -> RowProviderStats;
}

/// Row provider backed by a [`KernelOracle`] and a [`KernelBuffer`] — the
/// binary-SVM-level structure used by GMP-SVM (FIFO batch replacement) and
/// by the LibSVM-like baseline (LRU, modelling LibSVM's kernel cache).
pub struct BufferedRows {
    oracle: Arc<KernelOracle>,
    buffer: KernelBuffer,
    evals_base: u64,
    rows_computed: u64,
    // Reused per-`ensure` scratch: miss lists, the pinned set, and the
    // batched-launch output block. Once grown to working-set size, the
    // steady-state ensure path performs no heap allocation.
    missing: Vec<u32>,
    pinned: Vec<u32>,
    miss_ids: Vec<usize>,
    block: DenseMatrix,
}

impl BufferedRows {
    /// A provider whose buffer holds `capacity` rows. The buffer's device
    /// memory is claimed from `device` when given.
    pub fn new(
        oracle: Arc<KernelOracle>,
        capacity: usize,
        policy: ReplacementPolicy,
        device: Option<&Device>,
    ) -> Result<Self, DeviceError> {
        let n = oracle.n();
        let buffer = KernelBuffer::new(capacity.min(n.max(1)), n, policy, device)?;
        let evals_base = oracle.eval_count();
        Ok(BufferedRows {
            oracle,
            buffer,
            evals_base,
            rows_computed: 0,
            missing: Vec::new(),
            pinned: Vec::new(),
            miss_ids: Vec::new(),
            block: DenseMatrix::zeros(0, 0),
        })
    }

    /// The underlying oracle.
    pub fn oracle(&self) -> &Arc<KernelOracle> {
        &self.oracle
    }

    /// The buffer capacity in rows.
    pub fn capacity(&self) -> usize {
        self.buffer.capacity()
    }

    /// One capacity-bounded sub-batch of [`KernelRows::ensure`].
    fn ensure_batch(&mut self, exec: &dyn Executor, ids: &[usize]) {
        debug_assert!(ids.len() <= self.buffer.capacity());
        // Classify hits/misses (counting stats through the buffer).
        self.missing.clear();
        for &id in ids {
            if self.buffer.get(id as u32).is_none() {
                self.missing.push(id as u32);
            }
        }
        if self.missing.is_empty() {
            return;
        }
        // Pin the whole requested set: evictions to make room must not
        // invalidate rows the solver is about to use.
        self.pinned.clear();
        self.pinned.extend(ids.iter().map(|&i| i as u32));
        self.buffer.insert_batch(&self.missing, &self.pinned);
        // One batched launch for all missing rows (§3.3.1).
        self.miss_ids.clear();
        self.miss_ids
            .extend(self.missing.iter().map(|&m| m as usize));
        let n = self.oracle.n();
        self.block.reset(self.miss_ids.len(), n);
        self.oracle
            .compute_rows(exec, &self.miss_ids, &mut self.block);
        for (bi, &id) in self.missing.iter().enumerate() {
            self.buffer.row_mut(id).copy_from_slice(self.block.row(bi));
        }
        self.rows_computed += self.missing.len() as u64;
    }
}

impl KernelRows for BufferedRows {
    fn n(&self) -> usize {
        self.oracle.n()
    }

    fn diag(&self, i: usize) -> f64 {
        self.oracle.diag(i)
    }

    fn ensure(&mut self, exec: &dyn Executor, ids: &[usize]) {
        let cap = self.buffer.capacity();
        if ids.len() <= cap {
            self.ensure_batch(exec, ids);
            return;
        }
        // Graceful degradation (working set wider than the buffer): split
        // into capacity-sized sub-batches. Each sub-batch pins only itself,
        // so later sub-batches may evict earlier ones — callers needing
        // simultaneous residency must request at most `capacity` rows.
        for chunk in ids.chunks(cap) {
            self.ensure_batch(exec, chunk);
        }
    }

    fn row(&self, id: usize) -> &[f64] {
        self.buffer.row(id as u32)
    }

    fn is_resident(&self, id: usize) -> bool {
        self.buffer.contains(id as u32)
    }

    fn stats(&self) -> RowProviderStats {
        let b = self.buffer.stats();
        RowProviderStats {
            kernel_evals: self.oracle.eval_count() - self.evals_base,
            rows_computed: self.rows_computed,
            buffer_hits: b.hits,
            buffer_misses: b.misses,
            evictions: b.evictions,
        }
    }
}

#[cfg(test)]
// Tests index several parallel arrays (y, alpha, f) by position.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::functions::KernelKind;
    use gmp_gpusim::CpuExecutor;
    use gmp_sparse::CsrMatrix;

    fn provider(cap: usize) -> BufferedRows {
        let data = Arc::new(CsrMatrix::from_dense(
            &[
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
                vec![2.0, 1.0],
                vec![0.5, 0.5],
            ],
            2,
        ));
        let oracle = Arc::new(KernelOracle::new(data, KernelKind::Rbf { gamma: 0.5 }));
        BufferedRows::new(oracle, cap, ReplacementPolicy::FifoBatch, None).unwrap()
    }

    fn exec() -> CpuExecutor {
        CpuExecutor::xeon(1)
    }

    #[test]
    fn ensure_then_row() {
        let mut p = provider(4);
        let e = exec();
        p.ensure(&e, &[0, 2]);
        assert!(p.is_resident(0) && p.is_resident(2));
        let r0 = p.row(0);
        assert_eq!(r0.len(), 5);
        assert_eq!(r0[0], 1.0); // RBF diagonal
    }

    #[test]
    fn second_ensure_hits_buffer() {
        let mut p = provider(4);
        let e = exec();
        p.ensure(&e, &[0, 1]);
        let computed_before = p.stats().rows_computed;
        p.ensure(&e, &[0, 1]);
        let s = p.stats();
        assert_eq!(s.rows_computed, computed_before);
        assert!(s.buffer_hits >= 2);
    }

    #[test]
    fn partial_hit_computes_only_missing() {
        let mut p = provider(4);
        let e = exec();
        p.ensure(&e, &[0, 1]);
        p.ensure(&e, &[1, 2]);
        let s = p.stats();
        assert_eq!(s.rows_computed, 3); // 0,1 then only 2
    }

    #[test]
    fn eviction_and_recompute() {
        let mut p = provider(2);
        let e = exec();
        p.ensure(&e, &[0, 1]);
        p.ensure(&e, &[2, 3]); // evicts 0,1
        assert!(!p.is_resident(0));
        p.ensure(&e, &[0, 1]); // recompute
        assert_eq!(p.stats().rows_computed, 6);
        assert!(p.stats().evictions >= 2);
    }

    #[test]
    fn rows_match_oracle_values() {
        let mut p = provider(5);
        let e = exec();
        p.ensure(&e, &[3]);
        let row = p.row(3);
        for j in 0..5 {
            let direct = p.oracle().eval_pair(3, j);
            assert!((row[j] - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn diag_passthrough() {
        let p = provider(4);
        assert_eq!(p.diag(2), 1.0);
    }

    #[test]
    fn oversized_working_set_degrades_to_sub_batches() {
        let mut p = provider(2);
        let e = exec();
        p.ensure(&e, &[0, 1, 2]);
        // The final sub-batch ([2]) is guaranteed resident.
        assert!(p.is_resident(2));
        let row = p.row(2);
        for j in 0..5 {
            let direct = p.oracle().eval_pair(2, j);
            assert!((row[j] - direct).abs() < 1e-12);
        }
        // Every requested row was computed exactly once.
        assert_eq!(p.stats().rows_computed, 3);
    }

    #[test]
    fn kernel_evals_counted_per_provider() {
        let mut p = provider(5);
        let e = exec();
        p.ensure(&e, &[0, 1]);
        assert_eq!(p.stats().kernel_evals, 10); // 2 rows x width 5
    }
}
