//! The kernel-value oracle: computes rows (and row segments) of the kernel
//! matrix on demand, counting every evaluation.

use crate::functions::KernelKind;
use gmp_backend::{ComputeBackend, ComputeBackendKind, KernelContext};
use gmp_gpusim::Executor;
use gmp_sparse::{CsrMatrix, DenseMatrix};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Computes kernel values over a fixed dataset.
///
/// Row `i` of the kernel matrix is `K(x_i, x_j)` for all `j`; the oracle
/// computes batches of rows as one "launch" (one [`Executor::charge`]) —
/// the cuSPARSE-style batched product of §3.3.1. The numeric loops and the
/// launch accounting live behind a pluggable [`ComputeBackend`]; the oracle
/// owns the monotone `kernel_evals` counter — the hardware-independent
/// ground truth behind every speedup claim — and reconciles it against the
/// owner-attributed counts each backend call returns (exactly
/// `rows × width`, audited under `debug-invariants`).
pub struct KernelOracle {
    data: Arc<CsrMatrix>,
    kind: KernelKind,
    norms: Vec<f64>,
    diag: Vec<f64>,
    host_threads: usize,
    backend: Arc<dyn ComputeBackend>,
    kernel_evals: AtomicU64,
}

impl KernelOracle {
    /// Build an oracle over `data` (norms and diagonal precomputed). The
    /// compute backend defaults to the `GMP_BACKEND` selection.
    pub fn new(data: Arc<CsrMatrix>, kind: KernelKind) -> Self {
        let norms = data.row_norms_sq();
        let diag = norms.iter().map(|&n2| kind.self_eval(n2)).collect();
        KernelOracle {
            data,
            kind,
            norms,
            diag,
            host_threads: 1,
            backend: ComputeBackendKind::from_env().instance(),
            kernel_evals: AtomicU64::new(0),
        }
    }

    /// Use `threads` host threads for the actual numeric work (the CPU
    /// backends' real parallelism; accounting is unaffected).
    pub fn with_host_threads(mut self, threads: usize) -> Self {
        self.host_threads = threads.max(1);
        self
    }

    /// Execute the numeric hot ops on the given compute backend.
    pub fn with_backend(mut self, backend: Arc<dyn ComputeBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The compute backend executing this oracle's hot ops.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Number of instances.
    pub fn n(&self) -> usize {
        self.data.nrows()
    }

    /// The dataset the oracle evaluates over.
    pub fn data(&self) -> &Arc<CsrMatrix> {
        &self.data
    }

    /// The kernel function.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// `K(x_i, x_i)`.
    #[inline]
    pub fn diag(&self, i: usize) -> f64 {
        self.diag[i]
    }

    /// Squared norm of instance `i`.
    #[inline]
    pub fn norm_sq(&self, i: usize) -> f64 {
        self.norms[i]
    }

    /// Total kernel values computed so far.
    pub fn eval_count(&self) -> u64 {
        self.kernel_evals.load(Ordering::Relaxed)
    }

    /// The backend view of this oracle's dataset.
    fn ctx(&self) -> KernelContext<'_> {
        KernelContext {
            data: &self.data,
            norms: &self.norms,
            kind: self.kind,
            host_threads: self.host_threads,
        }
    }

    /// One kernel value (used by tests and the classic solver's eta terms
    /// when rows are unavailable). Counted.
    pub fn eval_pair(&self, i: usize, j: usize) -> f64 {
        self.kernel_evals.fetch_add(1, Ordering::Relaxed);
        let dot = self.data.row(i).dot_sparse(&self.data.row(j));
        self.kind.eval(dot, self.norms[i], self.norms[j])
    }

    /// Compute full kernel rows for `row_ids` into `out` (shape
    /// `row_ids.len() x n`), charged to `exec` as **one** batched launch.
    /// Returns the kernel values computed.
    pub fn compute_rows(
        &self,
        exec: &dyn Executor,
        row_ids: &[usize],
        out: &mut DenseMatrix,
    ) -> u64 {
        self.compute_rows_range(exec, row_ids, 0..self.n(), out)
    }

    /// Compute the kernel segment `K(x_r, x_j)` for `r` in `row_ids`,
    /// `j` in `cols`, into `out` (shape `row_ids.len() x cols.len()`).
    /// Returns the kernel values computed (`row_ids.len() * cols.len()`).
    ///
    /// This is the class-segment primitive of the shared store (Fig. 3).
    pub fn compute_rows_range(
        &self,
        exec: &dyn Executor,
        row_ids: &[usize],
        cols: std::ops::Range<usize>,
        out: &mut DenseMatrix,
    ) -> u64 {
        let expected = (row_ids.len() * cols.len()) as u64;
        let evals = self
            .backend
            .batch_kernel_rows(&self.ctx(), exec, row_ids, cols, out);
        gmp_sync::audit!(assert_eq!(
            evals,
            expected,
            "backend {} misreported batch eval count",
            self.backend.name()
        ));
        self.kernel_evals.fetch_add(evals, Ordering::Relaxed);
        evals
    }

    /// Kernel values of rows of `other` against every instance of this
    /// oracle's dataset (prediction: test instances x support vectors).
    /// Charged as one batched launch; returns the kernel values computed.
    ///
    /// Squared norms of the requested rows are computed once up front; use
    /// [`KernelOracle::compute_cross_with_norms`] to amortize them across
    /// calls (prediction chunks, per-binary sweeps).
    pub fn compute_cross(
        &self,
        exec: &dyn Executor,
        other: &CsrMatrix,
        other_rows: &[usize],
        out: &mut DenseMatrix,
    ) -> u64 {
        // Norms of the requested rows only, indexed by global row id.
        let mut other_norms = vec![0.0; other.nrows()];
        for &r in other_rows {
            other_norms[r] = other.row(r).norm_sq();
        }
        self.compute_cross_with_norms(exec, other, other_rows, &other_norms, out)
    }

    /// [`KernelOracle::compute_cross`] with the squared norms of `other`'s
    /// rows precomputed by the caller (`other_norms[r]` for every `r` in
    /// `other_rows`) — callers that sweep many chunks or many binary SVMs
    /// over the same test set compute the norms exactly once instead of
    /// once per call. Returns the kernel values computed
    /// (`other_rows.len() * n`).
    pub fn compute_cross_with_norms(
        &self,
        exec: &dyn Executor,
        other: &CsrMatrix,
        other_rows: &[usize],
        other_norms: &[f64],
        out: &mut DenseMatrix,
    ) -> u64 {
        let expected = (other_rows.len() * self.n()) as u64;
        let evals =
            self.backend
                .test_sv_matrix(&self.ctx(), exec, other, other_rows, other_norms, out);
        gmp_sync::audit!(assert_eq!(
            evals,
            expected,
            "backend {} misreported cross eval count",
            self.backend.name()
        ));
        self.kernel_evals.fetch_add(evals, Ordering::Relaxed);
        evals
    }

    /// Decision values gathered from a computed kernel block — see
    /// [`ComputeBackend::score_rows`]. Routed through the oracle so
    /// prediction paths use the same backend instance as row computation.
    pub fn score_rows(
        &self,
        exec: &dyn Executor,
        block: &DenseMatrix,
        scorers: &[gmp_backend::RowScorer<'_>],
        out: &mut [Vec<f64>],
    ) {
        self.backend
            .score_rows(exec, block, scorers, self.host_threads, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_backend::BlockedBackend;
    use gmp_gpusim::CpuExecutor;

    fn exec() -> CpuExecutor {
        CpuExecutor::xeon(1)
    }

    fn toy_data() -> Arc<CsrMatrix> {
        Arc::new(CsrMatrix::from_dense(
            &[
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
                vec![2.0, 0.0],
            ],
            2,
        ))
    }

    #[test]
    fn rbf_row_matches_pairwise() {
        let o = KernelOracle::new(toy_data(), KernelKind::Rbf { gamma: 0.5 });
        let e = exec();
        let mut out = DenseMatrix::zeros(1, 4);
        o.compute_rows(&e, &[0], &mut out);
        for j in 0..4 {
            let brute = o.kind().eval(
                toy_data().row(0).dot_sparse(&toy_data().row(j)),
                o.norm_sq(0),
                o.norm_sq(j),
            );
            assert!((out.get(0, j) - brute).abs() < 1e-12);
        }
        assert_eq!(out.get(0, 0), 1.0); // RBF self
    }

    #[test]
    fn batch_rows_match_single_rows() {
        let o = KernelOracle::new(toy_data(), KernelKind::Linear);
        let e = exec();
        let mut batch = DenseMatrix::zeros(3, 4);
        o.compute_rows(&e, &[0, 2, 3], &mut batch);
        for (bi, &r) in [0usize, 2, 3].iter().enumerate() {
            let mut single = DenseMatrix::zeros(1, 4);
            o.compute_rows(&e, &[r], &mut single);
            assert_eq!(batch.row(bi), single.row(0));
        }
    }

    #[test]
    fn range_is_slice_of_full_row() {
        let o = KernelOracle::new(toy_data(), KernelKind::Rbf { gamma: 1.0 });
        let e = exec();
        let mut full = DenseMatrix::zeros(1, 4);
        o.compute_rows(&e, &[2], &mut full);
        let mut part = DenseMatrix::zeros(1, 2);
        o.compute_rows_range(&e, &[2], 1..3, &mut part);
        assert_eq!(part.get(0, 0), full.get(0, 1));
        assert_eq!(part.get(0, 1), full.get(0, 2));
    }

    #[test]
    fn eval_counter_tracks_values() {
        let o = KernelOracle::new(toy_data(), KernelKind::Linear);
        let e = exec();
        let mut out = DenseMatrix::zeros(2, 4);
        let evals = o.compute_rows(&e, &[0, 1], &mut out);
        assert_eq!(evals, 8);
        assert_eq!(o.eval_count(), 8);
        o.eval_pair(0, 1);
        assert_eq!(o.eval_count(), 9);
    }

    #[test]
    fn diag_matches_self_eval() {
        let o = KernelOracle::new(toy_data(), KernelKind::Rbf { gamma: 0.3 });
        for i in 0..4 {
            assert_eq!(o.diag(i), 1.0);
        }
        let lin = KernelOracle::new(toy_data(), KernelKind::Linear);
        assert_eq!(lin.diag(3), 4.0);
    }

    #[test]
    fn cross_matches_within_dataset() {
        let data = toy_data();
        let o = KernelOracle::new(data.clone(), KernelKind::Rbf { gamma: 0.7 });
        let e = exec();
        // Cross of the same matrix row 1 must equal compute_rows of row 1.
        let mut cross = DenseMatrix::zeros(1, 4);
        let evals = o.compute_cross(&e, &data, &[1], &mut cross);
        assert_eq!(evals, 4);
        let mut direct = DenseMatrix::zeros(1, 4);
        o.compute_rows(&e, &[1], &mut direct);
        for j in 0..4 {
            assert!((cross.get(0, j) - direct.get(0, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn multithreaded_matches_single_threaded() {
        let o1 = KernelOracle::new(toy_data(), KernelKind::Rbf { gamma: 0.5 });
        let o4 = KernelOracle::new(toy_data(), KernelKind::Rbf { gamma: 0.5 }).with_host_threads(4);
        let e = exec();
        let mut a = DenseMatrix::zeros(4, 4);
        let mut b = DenseMatrix::zeros(4, 4);
        o1.compute_rows(&e, &[0, 1, 2, 3], &mut a);
        o4.compute_rows(&e, &[0, 1, 2, 3], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn blocked_backend_is_bit_identical_through_the_oracle() {
        let scalar = KernelOracle::new(toy_data(), KernelKind::Rbf { gamma: 0.5 });
        let blocked = KernelOracle::new(toy_data(), KernelKind::Rbf { gamma: 0.5 })
            .with_backend(Arc::new(BlockedBackend));
        assert_eq!(blocked.backend_name(), "blocked");
        let (ea, eb) = (exec(), exec());
        let mut a = DenseMatrix::zeros(4, 4);
        let mut b = DenseMatrix::zeros(4, 4);
        scalar.compute_rows(&ea, &[0, 1, 2, 3], &mut a);
        blocked.compute_rows(&eb, &[0, 1, 2, 3], &mut b);
        assert_eq!(a, b);
        assert_eq!(scalar.eval_count(), blocked.eval_count());
        // Identical simulated cost: the cost model describes the modeled
        // device, not the backend's host loop structure.
        assert_eq!(ea.elapsed().to_bits(), eb.elapsed().to_bits());
    }

    #[test]
    fn batched_launch_cheaper_than_singles_on_gpu() {
        use gmp_gpusim::{Device, DeviceConfig, Stream};
        let o = KernelOracle::new(toy_data(), KernelKind::Linear);
        let dev = Device::new(DeviceConfig::tesla_p100());
        let s_batch = Stream::new(dev.clone(), 1.0);
        let s_single = Stream::new(dev, 1.0);
        let mut out = DenseMatrix::zeros(4, 4);
        o.compute_rows(&s_batch, &[0, 1, 2, 3], &mut out);
        for r in 0..4 {
            let mut one = DenseMatrix::zeros(1, 4);
            o.compute_rows(&s_single, &[r], &mut one);
        }
        assert!(s_batch.elapsed() < s_single.elapsed());
    }
}
