//! The kernel-value oracle: computes rows (and row segments) of the kernel
//! matrix on demand, counting every evaluation.

use crate::functions::KernelKind;
use gmp_gpusim::cost::KernelCost;
use gmp_gpusim::pool::parallel_for_chunks;
use gmp_gpusim::Executor;
use gmp_sparse::{CsrMatrix, DenseMatrix};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Computes kernel values over a fixed dataset.
///
/// Row `i` of the kernel matrix is `K(x_i, x_j)` for all `j`; the oracle
/// computes batches of rows as one "launch" (one [`Executor::charge`]) —
/// the cuSPARSE-style batched product of §3.3.1. The `kernel_evals` counter
/// is the hardware-independent ground truth behind every speedup claim.
pub struct KernelOracle {
    data: Arc<CsrMatrix>,
    kind: KernelKind,
    norms: Vec<f64>,
    diag: Vec<f64>,
    host_threads: usize,
    kernel_evals: AtomicU64,
}

impl KernelOracle {
    /// Build an oracle over `data` (norms and diagonal precomputed).
    pub fn new(data: Arc<CsrMatrix>, kind: KernelKind) -> Self {
        let norms = data.row_norms_sq();
        let diag = norms.iter().map(|&n2| kind.self_eval(n2)).collect();
        KernelOracle {
            data,
            kind,
            norms,
            diag,
            host_threads: 1,
            kernel_evals: AtomicU64::new(0),
        }
    }

    /// Use `threads` host threads for the actual numeric work (the CPU
    /// backends' real parallelism; accounting is unaffected).
    pub fn with_host_threads(mut self, threads: usize) -> Self {
        self.host_threads = threads.max(1);
        self
    }

    /// Number of instances.
    pub fn n(&self) -> usize {
        self.data.nrows()
    }

    /// The dataset the oracle evaluates over.
    pub fn data(&self) -> &Arc<CsrMatrix> {
        &self.data
    }

    /// The kernel function.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// `K(x_i, x_i)`.
    #[inline]
    pub fn diag(&self, i: usize) -> f64 {
        self.diag[i]
    }

    /// Squared norm of instance `i`.
    #[inline]
    pub fn norm_sq(&self, i: usize) -> f64 {
        self.norms[i]
    }

    /// Total kernel values computed so far.
    pub fn eval_count(&self) -> u64 {
        self.kernel_evals.load(Ordering::Relaxed)
    }

    /// One kernel value (used by tests and the classic solver's eta terms
    /// when rows are unavailable). Counted.
    pub fn eval_pair(&self, i: usize, j: usize) -> f64 {
        self.kernel_evals.fetch_add(1, Ordering::Relaxed);
        let dot = self.data.row(i).dot_sparse(&self.data.row(j));
        self.kind.eval(dot, self.norms[i], self.norms[j])
    }

    /// Compute full kernel rows for `row_ids` into `out` (shape
    /// `row_ids.len() x n`), charged to `exec` as **one** batched launch.
    pub fn compute_rows(&self, exec: &dyn Executor, row_ids: &[usize], out: &mut DenseMatrix) {
        self.compute_rows_range(exec, row_ids, 0..self.n(), out);
    }

    /// Compute the kernel segment `K(x_r, x_j)` for `r` in `row_ids`,
    /// `j` in `cols`, into `out` (shape `row_ids.len() x cols.len()`).
    ///
    /// This is the class-segment primitive of the shared store (Fig. 3).
    pub fn compute_rows_range(
        &self,
        exec: &dyn Executor,
        row_ids: &[usize],
        cols: std::ops::Range<usize>,
        out: &mut DenseMatrix,
    ) {
        // `>=` so callers can reuse an over-sized persistent scratch block
        // (the allocation-free ensure hot path); only the first
        // `row_ids.len()` rows are written.
        assert!(out.nrows() >= row_ids.len(), "output row mismatch");
        assert_eq!(out.ncols(), cols.len(), "output col mismatch");
        if row_ids.is_empty() || cols.is_empty() {
            return;
        }
        self.charge_batch(exec, row_ids, cols.len() as u64);
        let data = &*self.data;
        let kind = self.kind;
        let norms = &self.norms;
        let ncols = data.ncols();
        // Each batch row is independent: scatter the source row once, then
        // gather-dot every target row in the range and apply the kernel map.
        if self.host_threads == 1 {
            // Allocation-free path: thread-local scatter scratch, direct
            // `row_mut` writes (no pointer table needed).
            with_scatter_scratch(ncols, |scratch| {
                for (bi, &r) in row_ids.iter().enumerate() {
                    let src = data.row(r);
                    src.scatter(scratch);
                    let norm_r = norms[r];
                    for (o, j) in out.row_mut(bi).iter_mut().zip(cols.clone()) {
                        let dot = data.row(j).dot_dense(scratch);
                        *o = kind.eval(dot, norm_r, norms[j]);
                    }
                    src.clear_scatter(scratch);
                }
            });
            return;
        }
        let rows_slices = split_rows(out, row_ids.len());
        parallel_for_chunks(self.host_threads, row_ids.len(), |chunk| {
            let mut scratch = vec![0.0; ncols];
            for bi in chunk {
                let r = row_ids[bi];
                let src = data.row(r);
                src.scatter(&mut scratch);
                let norm_r = norms[r];
                // SAFETY: chunks partition the index range, so each `bi`
                // is dereferenced by exactly one worker thread.
                let out_row = unsafe { rows_slices.row(bi) };
                for (o, j) in out_row.iter_mut().zip(cols.clone()) {
                    let dot = data.row(j).dot_dense(&scratch);
                    *o = kind.eval(dot, norm_r, norms[j]);
                }
                src.clear_scatter(&mut scratch);
            }
        });
    }

    /// Kernel values of rows of `other` against every instance of this
    /// oracle's dataset (prediction: test instances x support vectors).
    /// Charged as one batched launch.
    ///
    /// Squared norms of the requested rows are computed once up front; use
    /// [`KernelOracle::compute_cross_with_norms`] to amortize them across
    /// calls (prediction chunks, per-binary sweeps).
    pub fn compute_cross(
        &self,
        exec: &dyn Executor,
        other: &CsrMatrix,
        other_rows: &[usize],
        out: &mut DenseMatrix,
    ) {
        // Norms of the requested rows only, indexed by global row id.
        let mut other_norms = vec![0.0; other.nrows()];
        for &r in other_rows {
            other_norms[r] = other.row(r).norm_sq();
        }
        self.compute_cross_with_norms(exec, other, other_rows, &other_norms, out);
    }

    /// [`KernelOracle::compute_cross`] with the squared norms of `other`'s
    /// rows precomputed by the caller (`other_norms[r]` for every `r` in
    /// `other_rows`) — callers that sweep many chunks or many binary SVMs
    /// over the same test set compute the norms exactly once instead of
    /// once per call.
    pub fn compute_cross_with_norms(
        &self,
        exec: &dyn Executor,
        other: &CsrMatrix,
        other_rows: &[usize],
        other_norms: &[f64],
        out: &mut DenseMatrix,
    ) {
        assert!(out.nrows() >= other_rows.len());
        assert_eq!(out.ncols(), self.n());
        assert_eq!(other.ncols(), self.data.ncols(), "dimension mismatch");
        assert_eq!(
            other_norms.len(),
            other.nrows(),
            "norms must cover all rows"
        );
        if other_rows.is_empty() || self.n() == 0 {
            return;
        }
        let values = (other_rows.len() * self.n()) as u64;
        self.kernel_evals.fetch_add(values, Ordering::Relaxed);
        let dot_flops = 2 * self.data.nnz() as u64 * other_rows.len() as u64;
        let batch_bytes: u64 = other_rows
            .iter()
            .map(|&r| 12 * other.row(r).nnz() as u64)
            .sum();
        exec.charge(KernelCost::row_batch(
            other_rows.len() as u64,
            self.n() as u64,
            dot_flops + values * self.kind.map_flops(),
            batch_bytes,
            self.data.mem_bytes() as u64,
        ));
        let data = &*self.data;
        let kind = self.kind;
        let norms = &self.norms;
        let ncols = data.ncols();
        if self.host_threads == 1 {
            with_scatter_scratch(ncols, |scratch| {
                for (bi, &r) in other_rows.iter().enumerate() {
                    let src = other.row(r);
                    src.scatter(scratch);
                    let norm_r = other_norms[r];
                    for (j, o) in out.row_mut(bi).iter_mut().enumerate() {
                        let dot = data.row(j).dot_dense(scratch);
                        *o = kind.eval(dot, norm_r, norms[j]);
                    }
                    src.clear_scatter(scratch);
                }
            });
            return;
        }
        let rows_slices = split_rows(out, other_rows.len());
        parallel_for_chunks(self.host_threads, other_rows.len(), |chunk| {
            let mut scratch = vec![0.0; ncols];
            for bi in chunk {
                let r = other_rows[bi];
                let src = other.row(r);
                src.scatter(&mut scratch);
                let norm_r = other_norms[r];
                // SAFETY: chunks partition the index range, so each `bi`
                // is dereferenced by exactly one worker thread.
                let out_row = unsafe { rows_slices.row(bi) };
                for (j, o) in out_row.iter_mut().enumerate() {
                    let dot = data.row(j).dot_dense(&scratch);
                    *o = kind.eval(dot, norm_r, norms[j]);
                }
                src.clear_scatter(&mut scratch);
            }
        });
    }

    fn charge_batch(&self, exec: &dyn Executor, row_ids: &[usize], width: u64) {
        let q = row_ids.len() as u64;
        let values = q * width;
        self.kernel_evals.fetch_add(values, Ordering::Relaxed);
        // Dot-product flops: proportional to data nnz per batch row
        // (scatter-gather touches every stored entry of the target range;
        // we approximate with the full-matrix density).
        let avg_nnz = self.data.nnz() as f64 / self.data.nrows().max(1) as f64;
        let dot_flops = (2.0 * avg_nnz * values as f64) as u64;
        let batch_bytes: u64 = row_ids
            .iter()
            .map(|&r| 12 * self.data.row(r).nnz() as u64)
            .sum();
        // The whole target range of the data matrix is streamed once per
        // *batch* — the §3.3.1 amortization.
        let data_bytes =
            (self.data.mem_bytes() as f64 * width as f64 / self.n().max(1) as f64) as u64;
        exec.charge(KernelCost::row_batch(
            q,
            width,
            dot_flops + values * self.kind.map_flops(),
            batch_bytes,
            data_bytes,
        ));
    }
}

/// Concurrent disjoint access to the first `nrows` rows of a dense matrix,
/// so worker threads can fill rows in parallel. Row slices are derived on
/// demand from a single base pointer (one `&mut` borrow of the whole
/// buffer), and the `'a` lifetime pins the matrix's exclusive borrow for as
/// long as any `RowPtrs` value exists — handing the matrix out again while
/// workers hold row slices is a compile error, not UB.
struct RowPtrs<'a> {
    base: *mut f64,
    ncols: usize,
    nrows: usize,
    /// `debug-invariants` audit ledger: which rows have been handed out
    /// (empty and untouched when the feature is off).
    handed: gmp_sync::Mutex<Vec<bool>>,
    _borrow: std::marker::PhantomData<&'a mut [f64]>,
}

// SAFETY: `RowPtrs` is a partition handle over a buffer exclusively
// borrowed for `'a` (no other reference to it can exist while the value
// lives). The raw base pointer is only read through `row`, whose contract
// makes the handed-out `&mut` slices disjoint, so moving or sharing the
// handle across threads cannot create aliasing that the single-threaded
// use would not have.
unsafe impl Send for RowPtrs<'_> {}
// SAFETY: as above — `&RowPtrs` only exposes `row`, and the disjointness
// contract of `row` (each index dereferenced by at most one thread) is
// exactly the condition under which concurrent calls are sound.
unsafe impl Sync for RowPtrs<'_> {}

impl RowPtrs<'_> {
    /// Exclusive slice of row `i`.
    ///
    /// # Safety
    /// Each index must be dereferenced by at most one thread over the
    /// handle's lifetime (`parallel_for_chunks` guarantees this: chunks
    /// partition the index range). Under `debug-invariants` a handout
    /// ledger asserts the disjointness at runtime.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row(&self, i: usize) -> &mut [f64] {
        assert!(i < self.nrows, "row {i} out of split range {}", self.nrows);
        gmp_sync::audit!({
            let mut handed = self.handed.lock();
            assert!(
                !std::mem::replace(&mut handed[i], true),
                "row {i} handed out twice — aliased concurrent write"
            );
        });
        // SAFETY: `base` points at the live row-major buffer (the `'a`
        // borrow keeps it alive and exclusive); row `i < nrows` spans
        // `[i*ncols, (i+1)*ncols)`, in bounds because the source matrix
        // has at least `nrows` rows (asserted in `split_rows`). Distinct
        // `i` give non-overlapping ranges, and the caller contract makes
        // every handed-out slice unique, so no `&mut` aliasing arises.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(i * self.ncols), self.ncols) }
    }
}

/// Partition the first `nrows` rows of `m` for concurrent filling. All row
/// pointers derive from one `as_mut_slice` borrow — collecting
/// `m.row_mut(i) as *mut _` per row instead would invalidate each earlier
/// pointer under Stacked Borrows (every `row_mut` reborrows the whole
/// buffer), which Miri rejects.
fn split_rows(m: &mut DenseMatrix, nrows: usize) -> RowPtrs<'_> {
    assert!(nrows <= m.nrows(), "cannot split more rows than exist");
    let ncols = m.ncols();
    let handed = gmp_sync::Mutex::new(if gmp_sync::AUDIT {
        vec![false; nrows]
    } else {
        Vec::new()
    });
    RowPtrs {
        base: m.as_mut_slice().as_mut_ptr(),
        ncols,
        nrows,
        handed,
        _borrow: std::marker::PhantomData,
    }
}

/// Run `f` with a zeroed scatter scratch of at least `ncols` values,
/// reusing a thread-local buffer so steady-state callers never allocate.
fn with_scatter_scratch<R>(ncols: usize, f: impl FnOnce(&mut Vec<f64>) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        if scratch.len() < ncols {
            scratch.resize(ncols, 0.0);
        }
        f(&mut scratch)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_gpusim::{CpuExecutor, HostConfig};

    fn exec() -> CpuExecutor {
        CpuExecutor::new(HostConfig::xeon_e5_2640_v4(1))
    }

    fn toy_data() -> Arc<CsrMatrix> {
        Arc::new(CsrMatrix::from_dense(
            &[
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
                vec![2.0, 0.0],
            ],
            2,
        ))
    }

    #[test]
    fn rbf_row_matches_pairwise() {
        let o = KernelOracle::new(toy_data(), KernelKind::Rbf { gamma: 0.5 });
        let e = exec();
        let mut out = DenseMatrix::zeros(1, 4);
        o.compute_rows(&e, &[0], &mut out);
        for j in 0..4 {
            let brute = o.kind().eval(
                toy_data().row(0).dot_sparse(&toy_data().row(j)),
                o.norm_sq(0),
                o.norm_sq(j),
            );
            assert!((out.get(0, j) - brute).abs() < 1e-12);
        }
        assert_eq!(out.get(0, 0), 1.0); // RBF self
    }

    #[test]
    fn batch_rows_match_single_rows() {
        let o = KernelOracle::new(toy_data(), KernelKind::Linear);
        let e = exec();
        let mut batch = DenseMatrix::zeros(3, 4);
        o.compute_rows(&e, &[0, 2, 3], &mut batch);
        for (bi, &r) in [0usize, 2, 3].iter().enumerate() {
            let mut single = DenseMatrix::zeros(1, 4);
            o.compute_rows(&e, &[r], &mut single);
            assert_eq!(batch.row(bi), single.row(0));
        }
    }

    #[test]
    fn range_is_slice_of_full_row() {
        let o = KernelOracle::new(toy_data(), KernelKind::Rbf { gamma: 1.0 });
        let e = exec();
        let mut full = DenseMatrix::zeros(1, 4);
        o.compute_rows(&e, &[2], &mut full);
        let mut part = DenseMatrix::zeros(1, 2);
        o.compute_rows_range(&e, &[2], 1..3, &mut part);
        assert_eq!(part.get(0, 0), full.get(0, 1));
        assert_eq!(part.get(0, 1), full.get(0, 2));
    }

    #[test]
    fn eval_counter_tracks_values() {
        let o = KernelOracle::new(toy_data(), KernelKind::Linear);
        let e = exec();
        let mut out = DenseMatrix::zeros(2, 4);
        o.compute_rows(&e, &[0, 1], &mut out);
        assert_eq!(o.eval_count(), 8);
        o.eval_pair(0, 1);
        assert_eq!(o.eval_count(), 9);
    }

    #[test]
    fn diag_matches_self_eval() {
        let o = KernelOracle::new(toy_data(), KernelKind::Rbf { gamma: 0.3 });
        for i in 0..4 {
            assert_eq!(o.diag(i), 1.0);
        }
        let lin = KernelOracle::new(toy_data(), KernelKind::Linear);
        assert_eq!(lin.diag(3), 4.0);
    }

    #[test]
    fn cross_matches_within_dataset() {
        let data = toy_data();
        let o = KernelOracle::new(data.clone(), KernelKind::Rbf { gamma: 0.7 });
        let e = exec();
        // Cross of the same matrix row 1 must equal compute_rows of row 1.
        let mut cross = DenseMatrix::zeros(1, 4);
        o.compute_cross(&e, &data, &[1], &mut cross);
        let mut direct = DenseMatrix::zeros(1, 4);
        o.compute_rows(&e, &[1], &mut direct);
        for j in 0..4 {
            assert!((cross.get(0, j) - direct.get(0, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn multithreaded_matches_single_threaded() {
        let o1 = KernelOracle::new(toy_data(), KernelKind::Rbf { gamma: 0.5 });
        let o4 = KernelOracle::new(toy_data(), KernelKind::Rbf { gamma: 0.5 }).with_host_threads(4);
        let e = exec();
        let mut a = DenseMatrix::zeros(4, 4);
        let mut b = DenseMatrix::zeros(4, 4);
        o1.compute_rows(&e, &[0, 1, 2, 3], &mut a);
        o4.compute_rows(&e, &[0, 1, 2, 3], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn batched_launch_cheaper_than_singles_on_gpu() {
        use gmp_gpusim::{Device, DeviceConfig, Stream};
        let o = KernelOracle::new(toy_data(), KernelKind::Linear);
        let dev = Device::new(DeviceConfig::tesla_p100());
        let s_batch = Stream::new(dev.clone(), 1.0);
        let s_single = Stream::new(dev, 1.0);
        let mut out = DenseMatrix::zeros(4, 4);
        o.compute_rows(&s_batch, &[0, 1, 2, 3], &mut out);
        for r in 0..4 {
            let mut one = DenseMatrix::zeros(1, 4);
            o.compute_rows(&s_single, &[r], &mut one);
        }
        assert!(s_batch.elapsed() < s_single.elapsed());
    }
}
