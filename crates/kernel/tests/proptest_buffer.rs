//! Model-based property tests for the kernel buffer: compare against a
//! simple reference implementation under random operation sequences.

use gmp_kernel::{KernelBuffer, ReplacementPolicy};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Insert a batch of fresh ids (deduplicated, not resident).
    InsertBatch(Vec<u32>),
    /// Look up an id.
    Get(u32),
    /// Fill a resident row with a marker value.
    Fill(u32, f64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(0u32..40, 1..4).prop_map(Op::InsertBatch),
            (0u32..40).prop_map(Op::Get),
            (0u32..40, -5.0..5.0f64).prop_map(|(i, v)| Op::Fill(i, v)),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn buffer_matches_reference_model(ops in ops(), fifo in proptest::bool::ANY) {
        let capacity = 8usize;
        let width = 4usize;
        let policy = if fifo { ReplacementPolicy::FifoBatch } else { ReplacementPolicy::Lru };
        let mut buf = KernelBuffer::new(capacity, width, policy, None).unwrap();
        // Reference: resident id -> filled value (None = uninitialized).
        let mut model: HashMap<u32, Option<f64>> = HashMap::new();

        for op in ops {
            match op {
                Op::InsertBatch(mut ids) => {
                    ids.sort_unstable();
                    ids.dedup();
                    ids.retain(|id| !buf.contains(*id));
                    if ids.is_empty() || ids.len() > capacity {
                        continue;
                    }
                    buf.insert_batch(&ids, &[]);
                    for &id in &ids {
                        model.insert(id, None);
                    }
                    // The model doesn't predict *which* rows evict (that is
                    // the policy's business); it prunes to what the buffer
                    // actually kept, then checks the invariants below.
                    model.retain(|id, _| buf.contains(*id));
                    // All newly inserted ids must be resident.
                    for &id in &ids {
                        prop_assert!(buf.contains(id), "fresh id {} evicted immediately", id);
                    }
                }
                Op::Get(id) => {
                    let got = buf.get(id).map(|r| r.to_vec());
                    let expected_resident = model.contains_key(&id);
                    prop_assert_eq!(got.is_some(), expected_resident, "get({}) residency mismatch", id);
                    if let (Some(row), Some(Some(v))) = (got, model.get(&id)) {
                        prop_assert!(row.iter().all(|x| x == v), "row content lost for {}", id);
                    }
                }
                Op::Fill(id, v) => {
                    if buf.contains(id) {
                        buf.row_mut(id).fill(v);
                        model.insert(id, Some(v));
                    }
                }
            }
            // Global invariants after every operation.
            prop_assert!(buf.len() <= capacity);
            prop_assert_eq!(buf.len(), model.len());
        }
    }

    #[test]
    fn pinned_rows_survive_any_pressure(
        pin in proptest::collection::vec(0u32..20, 1..4),
        churn in proptest::collection::vec(20u32..200, 4..30),
    ) {
        let mut pin = pin;
        pin.sort_unstable();
        pin.dedup();
        let capacity = pin.len() + 2;
        let mut buf = KernelBuffer::new(capacity, 2, ReplacementPolicy::FifoBatch, None).unwrap();
        buf.insert_batch(&pin, &[]);
        for (i, &id) in churn.iter().enumerate() {
            if buf.contains(id) {
                continue;
            }
            buf.insert_batch(&[id], &pin);
            for &p in &pin {
                prop_assert!(buf.contains(p), "pinned {} evicted at step {}", p, i);
            }
        }
    }

    #[test]
    fn stats_accounting_is_consistent(gets in proptest::collection::vec(0u32..16, 1..50)) {
        let mut buf = KernelBuffer::new(4, 2, ReplacementPolicy::Lru, None).unwrap();
        buf.insert_batch(&[0, 1, 2, 3], &[]);
        let mut hits = 0u64;
        let mut misses = 0u64;
        for &g in &gets {
            if buf.get(g).is_some() {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        let s = buf.stats();
        prop_assert_eq!(s.hits, hits);
        prop_assert_eq!(s.misses, misses);
        prop_assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
    }
}
