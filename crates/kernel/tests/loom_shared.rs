//! Loom model-check of the `SharedKernelStore` single-flight protocol.
//!
//! Run with: `cargo test -p gmp-kernel --features loom --test loom_shared`
//!
//! Every lock/condvar the store takes goes through `gmp-sync`, so inside
//! `loom::model` the scheduler exhaustively interleaves two fetching
//! threads (preemption-bounded). The model proves, over every explored
//! schedule:
//!
//! - **no double compute**: with ample capacity, each segment is computed
//!   exactly once no matter how the threads race (the oracle's eval count
//!   equals the sequential count);
//! - **no torn reads**: every value a fetch returns equals the direct
//!   kernel evaluation, including values obtained by waiting on another
//!   thread's `Pending` computation;
//! - **exact owner attribution**: per-call `FetchOutcome.evals` sum to the
//!   oracle's total — a value is charged to exactly one caller;
//! - **no lost wakeups / deadlocks**: a schedule where a `Pending` waiter
//!   never wakes shows up as a model deadlock.
//!
//! The second model starves the byte budget so the un-publish path (budget
//! full of protected segments) and the waiter's recompute-uncached path
//! are also explored.
#![cfg(feature = "loom")]

use gmp_gpusim::CpuExecutor;
use gmp_kernel::shared::FetchOutcome;
use gmp_kernel::{ClassLayout, KernelKind, KernelOracle, SharedKernelStore};
use gmp_sparse::{CsrMatrix, DenseMatrix};
use std::sync::Arc;

/// Two instances, one per class: x0 = (1,0) in class 0, x1 = (0,1) in
/// class 1. RBF(γ=1): K(i,i) = 1, K(0,1) = exp(-2).
fn tiny_store(capacity_bytes: u64) -> Arc<SharedKernelStore> {
    let data = Arc::new(CsrMatrix::from_dense(&[vec![1.0, 0.0], vec![0.0, 1.0]], 2));
    let oracle = Arc::new(KernelOracle::new(data, KernelKind::Rbf { gamma: 1.0 }));
    Arc::new(
        SharedKernelStore::new(
            oracle,
            ClassLayout::new(vec![0, 1, 2]),
            capacity_bytes,
            None,
        )
        .expect("host-only store"),
    )
}

/// Fetch both rows of pair (0,1) and check every value against the closed
/// form — a torn or misplaced segment fails here.
fn fetch_and_check(st: &SharedKernelStore) -> FetchOutcome {
    let e = CpuExecutor::xeon(1);
    let mut out = DenseMatrix::zeros(2, 2);
    let outcome = st.fetch_pair_rows(&e, &[0, 1], 0, 1, &mut out);
    let off = (-2.0f64).exp();
    for ri in 0..2 {
        for col in 0..2 {
            let expect = if ri == col { 1.0 } else { off };
            assert!(
                (out.get(ri, col) - expect).abs() < 1e-12,
                "row {ri} col {col}: got {} want {expect}",
                out.get(ri, col)
            );
        }
    }
    outcome
}

#[test]
fn single_flight_computes_each_segment_once() {
    loom::model(|| {
        // Ample capacity: all 4 width-1 segments fit.
        let st = tiny_store(1 << 10);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let st = Arc::clone(&st);
                loom::thread::spawn(move || fetch_and_check(&st))
            })
            .collect();
        let outcomes: Vec<FetchOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("fetch thread panicked"))
            .collect();

        // No double compute: 4 segments of width 1, each exactly once.
        assert_eq!(st.oracle().eval_count(), 4, "a segment was recomputed");
        let stats = st.stats();
        assert_eq!(stats.segments_computed, 4);
        // 8 requests total = 4 computed + 4 hits (ready or waited).
        assert_eq!(stats.segment_hits, 4);
        assert_eq!(stats.evals_saved, 4);
        // Owner attribution: per-call charges sum to the oracle total,
        // and every request resolved as exactly one of computed/hit.
        let evals: u64 = outcomes.iter().map(|o| o.evals).sum();
        let computed: u64 = outcomes.iter().map(|o| o.computed).sum();
        let hits: u64 = outcomes.iter().map(|o| o.hits).sum();
        assert_eq!(evals, st.oracle().eval_count());
        assert_eq!(computed, 4);
        assert_eq!(hits, 4);
    });
}

#[test]
fn eviction_pressure_keeps_accounting_exact() {
    loom::model(|| {
        // Budget of one 8-byte segment while both fetched instances are
        // eviction-protected: inserts fail, published segments un-publish,
        // and Pending waiters fall into the recompute-uncached path.
        let st = tiny_store(8);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let st = Arc::clone(&st);
                loom::thread::spawn(move || fetch_and_check(&st))
            })
            .collect();
        let outcomes: Vec<FetchOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("fetch thread panicked"))
            .collect();

        // Under pressure segments may be recomputed (the cache cannot hold
        // them), but attribution must stay exact and every request must
        // resolve.
        let evals: u64 = outcomes.iter().map(|o| o.evals).sum();
        let computed: u64 = outcomes.iter().map(|o| o.computed).sum();
        let hits: u64 = outcomes.iter().map(|o| o.hits).sum();
        assert_eq!(
            evals,
            st.oracle().eval_count(),
            "owner attribution drifted from the oracle total"
        );
        assert_eq!(computed + hits, 8, "a segment request was lost");
        assert!(computed >= 4, "four distinct segments must be computed");
        let stats = st.stats();
        assert_eq!(stats.segments_computed, computed);
        assert_eq!(stats.segment_hits, hits);
        // The budget is never exceeded.
        assert!(st.used_bytes() <= 8);
    });
}
