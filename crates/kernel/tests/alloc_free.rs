//! Steady-state allocation audit of the solver's row hot path.
//!
//! `BufferedRows::ensure` runs once per working-set round, thousands of
//! times per training run; after warm-up it must never touch the heap.
//! A counting global allocator proves it: cycles that miss, evict, and
//! recompute rows perform zero allocations once every scratch structure
//! has grown to its steady-state size.
//!
//! This is its own integration-test binary because `#[global_allocator]`
//! is process-global: it must not interfere with the unit-test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gmp_gpusim::CpuExecutor;
use gmp_kernel::{BufferedRows, KernelKind, KernelOracle, KernelRows, ReplacementPolicy};
use gmp_sparse::CsrMatrix;

struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a counter bump; layout
// contracts are forwarded unchanged, so `System`'s guarantees carry over.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller was required to make valid.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller was required to make valid.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout`/`new_size` are forwarded verbatim from
        // the caller, who owns their validity.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by this allocator (which delegates
        // to `System`) with the same `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_ensure_does_not_allocate() {
    if gmp_sync::AUDIT {
        // The debug-invariants row-handout ledger (`split_rows`) allocates
        // by design; the zero-allocation guarantee is about production
        // builds, which CI checks in a separate no-feature run.
        return;
    }
    // 8 instances, buffer capacity 4: each cycle below misses, evicts and
    // recomputes, exercising the full miss + insert + eviction machinery.
    let rows_dense: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            (0..6)
                .map(|j| ((i * 7 + j * 3) % 11) as f64 * 0.25)
                .collect()
        })
        .collect();
    let data = Arc::new(CsrMatrix::from_dense(&rows_dense, 6));
    let oracle = Arc::new(KernelOracle::new(data, KernelKind::Rbf { gamma: 0.5 }));
    let mut provider = BufferedRows::new(oracle, 4, ReplacementPolicy::FifoBatch, None).unwrap();
    let exec = CpuExecutor::xeon(1);

    let cycle = |p: &mut BufferedRows, e: &CpuExecutor| {
        p.ensure(e, &[0, 1, 2, 3]);
        let _ = p.row(0)[5];
        p.ensure(e, &[4, 5, 6, 7]); // evicts 0..4
        let _ = p.row(7)[0];
        p.ensure(e, &[0, 1]); // partial recompute
        let _ = p.row(1)[3];
    };

    // Warm-up: grow every scratch structure (miss lists, pinned set,
    // batch-Vec pool, dense block, thread-local scatter buffer) to its
    // steady-state footprint.
    for _ in 0..3 {
        cycle(&mut provider, &exec);
    }

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..5 {
        cycle(&mut provider, &exec);
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state ensure cycles allocated {} times",
        after - before
    );
    // The cycles above really did work: rows were recomputed each round.
    assert!(provider.stats().rows_computed >= 3 * 10);
}
