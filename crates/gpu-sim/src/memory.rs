//! Device-memory accounting: a capacity-limited allocator.
//!
//! The simulator does not own the backing storage (host `Vec`s do); it owns
//! the *budget*. Every byte a component claims to keep resident on the
//! device is registered here, and the allocator rejects requests beyond the
//! configured capacity — reproducing the constraint that shapes the whole
//! GMP-SVM design (§3.1.1 challenge ii).

use crate::config::DeviceConfig;
use crate::cost::pcie_time;
use crate::stats::{DeviceStats, StatsCell};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Errors raised by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The allocation would exceed the device memory capacity.
    OutOfMemory {
        /// Bytes requested by the failed allocation.
        requested: u64,
        /// Bytes still available at the time of the request.
        available: u64,
        /// Total device capacity.
        capacity: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                available,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B, available {available} B of {capacity} B"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

#[derive(Debug, Default)]
struct MemState {
    used: u64,
    peak: u64,
}

/// A simulated GPU. Cheap to clone (all state behind `Arc`).
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

struct DeviceInner {
    config: DeviceConfig,
    mem: Mutex<MemState>,
    stats: StatsCell,
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("config", &self.inner.config.name)
            .field("mem_used", &self.mem_used())
            .finish()
    }
}

impl Device {
    /// Create a device from a hardware description.
    pub fn new(config: DeviceConfig) -> Self {
        Device {
            inner: Arc::new(DeviceInner {
                config,
                mem: Mutex::new(MemState::default()),
                stats: StatsCell::default(),
            }),
        }
    }

    /// The hardware description.
    pub fn config(&self) -> &DeviceConfig {
        &self.inner.config
    }

    /// Bytes currently allocated.
    pub fn mem_used(&self) -> u64 {
        self.inner.mem.lock().used
    }

    /// High-water mark of allocated bytes.
    pub fn mem_peak(&self) -> u64 {
        self.inner.mem.lock().peak
    }

    /// Bytes still available.
    pub fn mem_available(&self) -> u64 {
        let m = self.inner.mem.lock();
        self.inner.config.global_mem_bytes - m.used
    }

    /// Claim `bytes` of device memory; freed when the returned guard drops.
    pub fn alloc(&self, bytes: u64) -> Result<DeviceAlloc, DeviceError> {
        let mut m = self.inner.mem.lock();
        let capacity = self.inner.config.global_mem_bytes;
        if m.used + bytes > capacity {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                available: capacity - m.used,
                capacity,
            });
        }
        m.used += bytes;
        m.peak = m.peak.max(m.used);
        Ok(DeviceAlloc {
            device: self.clone(),
            bytes,
        })
    }

    /// Would an allocation of `bytes` succeed right now?
    pub fn can_alloc(&self, bytes: u64) -> bool {
        self.mem_available() >= bytes
    }

    /// Record a host->device (or device->host) transfer of `bytes` and
    /// return its simulated duration in seconds.
    pub fn transfer(&self, bytes: u64) -> f64 {
        let t = pcie_time(&self.inner.config, bytes);
        self.inner.stats.record_transfer(bytes, t);
        t
    }

    pub(crate) fn stats_cell(&self) -> &StatsCell {
        &self.inner.stats
    }

    /// Snapshot cumulative device statistics.
    pub fn stats(&self) -> DeviceStats {
        self.inner.stats.snapshot()
    }

    /// Reset statistics (not memory accounting).
    pub fn reset_stats(&self) {
        self.inner.stats.reset();
    }

    fn free(&self, bytes: u64) {
        let mut m = self.inner.mem.lock();
        debug_assert!(m.used >= bytes, "double free in device accounting");
        m.used -= bytes;
    }
}

/// RAII guard for a device-memory claim.
#[derive(Debug)]
pub struct DeviceAlloc {
    device: Device,
    bytes: u64,
}

impl DeviceAlloc {
    /// Size of this allocation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Grow or shrink this allocation in place (e.g. a buffer that learns
    /// its final row width late). Fails without changing anything if growth
    /// would exceed capacity.
    pub fn resize(&mut self, new_bytes: u64) -> Result<(), DeviceError> {
        if new_bytes > self.bytes {
            let extra = self.device.alloc(new_bytes - self.bytes)?;
            // Merge: forget the temporary guard, keep the accounting.
            std::mem::forget(extra);
        } else {
            self.device.free(self.bytes - new_bytes);
        }
        self.bytes = new_bytes;
        Ok(())
    }
}

impl Drop for DeviceAlloc {
    fn drop(&mut self) {
        self.device.free(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(bytes: u64) -> Device {
        Device::new(DeviceConfig::tiny_test(bytes))
    }

    #[test]
    fn alloc_and_free() {
        let d = dev(1000);
        let a = d.alloc(600).unwrap();
        assert_eq!(d.mem_used(), 600);
        assert_eq!(d.mem_available(), 400);
        drop(a);
        assert_eq!(d.mem_used(), 0);
        assert_eq!(d.mem_peak(), 600);
    }

    #[test]
    fn oom_is_reported_with_details() {
        let d = dev(1000);
        let _a = d.alloc(900).unwrap();
        let err = d.alloc(200).unwrap_err();
        assert_eq!(
            err,
            DeviceError::OutOfMemory {
                requested: 200,
                available: 100,
                capacity: 1000
            }
        );
    }

    #[test]
    fn failed_alloc_does_not_leak() {
        let d = dev(100);
        assert!(d.alloc(200).is_err());
        assert_eq!(d.mem_used(), 0);
        assert!(d.alloc(100).is_ok());
    }

    #[test]
    fn can_alloc_reflects_state() {
        let d = dev(100);
        assert!(d.can_alloc(100));
        let _a = d.alloc(60).unwrap();
        assert!(d.can_alloc(40));
        assert!(!d.can_alloc(41));
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let d = dev(1000);
        let mut a = d.alloc(100).unwrap();
        a.resize(500).unwrap();
        assert_eq!(d.mem_used(), 500);
        a.resize(50).unwrap();
        assert_eq!(d.mem_used(), 50);
        // Growth beyond capacity fails and preserves accounting.
        let _b = d.alloc(900).unwrap();
        assert!(a.resize(200).is_err());
        assert_eq!(a.bytes(), 50);
        assert_eq!(d.mem_used(), 950);
    }

    #[test]
    fn transfer_charges_pcie() {
        let d = dev(1000);
        let t = d.transfer(1 << 20);
        assert!(t > 0.0);
        let s = d.stats();
        assert_eq!(s.bytes_pcie, 1 << 20);
        assert!(s.sim_transfer_s > 0.0);
    }

    #[test]
    fn peak_tracks_high_water() {
        let d = dev(1000);
        {
            let _a = d.alloc(700).unwrap();
        }
        let _b = d.alloc(100).unwrap();
        assert_eq!(d.mem_peak(), 700);
        assert_eq!(d.mem_used(), 100);
    }

    #[test]
    fn clones_share_state() {
        let d = dev(1000);
        let d2 = d.clone();
        let _a = d.alloc(500).unwrap();
        assert_eq!(d2.mem_used(), 500);
    }

    #[test]
    fn concurrent_alloc_free_never_leaks_or_overshoots() {
        // 8 threads churn allocations sized so that all can be live at
        // once: no request may fail, the budget may never be exceeded, and
        // everything must be returned at the end.
        let d = dev(8 * 10);
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let d = &d;
                s.spawn(move |_| {
                    for _ in 0..200 {
                        let a = d.alloc(10).expect("within per-thread budget");
                        assert!(d.mem_used() <= 80, "budget exceeded");
                        drop(a);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(d.mem_used(), 0);
        assert!(d.mem_peak() <= 80);
        assert!(d.mem_peak() >= 10);
    }
}
