//! Cumulative device statistics.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free accumulator for device activity. Times are stored as
/// nanoseconds in atomics; snapshot with [`StatsCell::snapshot`].
#[derive(Debug, Default)]
pub struct StatsCell {
    launches: AtomicU64,
    flops: AtomicU64,
    bytes_global: AtomicU64,
    bytes_pcie: AtomicU64,
    sim_compute_ns: AtomicU64,
    sim_transfer_ns: AtomicU64,
}

/// A point-in-time snapshot of device activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Number of kernel launches.
    pub launches: u64,
    /// Total FLOPs executed.
    pub flops: u64,
    /// Total bytes moved through global memory.
    pub bytes_global: u64,
    /// Total bytes moved over PCIe.
    pub bytes_pcie: u64,
    /// Total simulated kernel time (seconds), summed over all launches
    /// regardless of stream concurrency.
    pub sim_compute_s: f64,
    /// Total simulated transfer time (seconds).
    pub sim_transfer_s: f64,
}

impl StatsCell {
    /// Record one launch.
    pub fn record_launch(&self, flops: u64, bytes: u64, sim_s: f64) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.flops.fetch_add(flops, Ordering::Relaxed);
        self.bytes_global.fetch_add(bytes, Ordering::Relaxed);
        self.sim_compute_ns
            .fetch_add((sim_s * 1e9) as u64, Ordering::Relaxed);
    }

    /// Record one PCIe transfer.
    pub fn record_transfer(&self, bytes: u64, sim_s: f64) {
        self.bytes_pcie.fetch_add(bytes, Ordering::Relaxed);
        self.sim_transfer_ns
            .fetch_add((sim_s * 1e9) as u64, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> DeviceStats {
        DeviceStats {
            launches: self.launches.load(Ordering::Relaxed),
            flops: self.flops.load(Ordering::Relaxed),
            bytes_global: self.bytes_global.load(Ordering::Relaxed),
            bytes_pcie: self.bytes_pcie.load(Ordering::Relaxed),
            sim_compute_s: self.sim_compute_ns.load(Ordering::Relaxed) as f64 / 1e9,
            sim_transfer_s: self.sim_transfer_ns.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.launches.store(0, Ordering::Relaxed);
        self.flops.store(0, Ordering::Relaxed);
        self.bytes_global.store(0, Ordering::Relaxed);
        self.bytes_pcie.store(0, Ordering::Relaxed);
        self.sim_compute_ns.store(0, Ordering::Relaxed);
        self.sim_transfer_ns.store(0, Ordering::Relaxed);
    }
}

impl DeviceStats {
    /// Total simulated device-side time.
    pub fn sim_total_s(&self) -> f64 {
        self.sim_compute_s + self.sim_transfer_s
    }

    /// Difference `self - earlier` (for phase attribution).
    pub fn since(&self, earlier: &DeviceStats) -> DeviceStats {
        DeviceStats {
            launches: self.launches - earlier.launches,
            flops: self.flops - earlier.flops,
            bytes_global: self.bytes_global - earlier.bytes_global,
            bytes_pcie: self.bytes_pcie - earlier.bytes_pcie,
            sim_compute_s: self.sim_compute_s - earlier.sim_compute_s,
            sim_transfer_s: self.sim_transfer_s - earlier.sim_transfer_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let c = StatsCell::default();
        c.record_launch(100, 64, 1e-6);
        c.record_launch(50, 32, 2e-6);
        c.record_transfer(1024, 5e-6);
        let s = c.snapshot();
        assert_eq!(s.launches, 2);
        assert_eq!(s.flops, 150);
        assert_eq!(s.bytes_global, 96);
        assert_eq!(s.bytes_pcie, 1024);
        assert!((s.sim_compute_s - 3e-6).abs() < 1e-9);
        assert!((s.sim_total_s() - 8e-6).abs() < 1e-9);
    }

    #[test]
    fn since_subtracts() {
        let c = StatsCell::default();
        c.record_launch(10, 10, 1e-6);
        let a = c.snapshot();
        c.record_launch(5, 5, 1e-6);
        let b = c.snapshot();
        let d = b.since(&a);
        assert_eq!(d.launches, 1);
        assert_eq!(d.flops, 5);
    }

    #[test]
    fn reset_zeroes() {
        let c = StatsCell::default();
        c.record_launch(10, 10, 1e-6);
        c.reset();
        assert_eq!(c.snapshot(), DeviceStats::default());
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let c = StatsCell::default();
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let c = &c;
                s.spawn(move |_| {
                    for _ in 0..250 {
                        c.record_launch(3, 2, 1.0);
                        c.record_transfer(5, 1.0);
                    }
                });
            }
        })
        .unwrap();
        let snap = c.snapshot();
        assert_eq!(snap.launches, 1000);
        assert_eq!(snap.flops, 3000);
        assert_eq!(snap.bytes_global, 2000);
        assert_eq!(snap.bytes_pcie, 5000);
        assert_eq!(snap.sim_compute_s, 1000.0);
        assert_eq!(snap.sim_transfer_s, 1000.0);
    }
}
