//! Analytic launch cost model.

use crate::config::{DeviceConfig, HostConfig};
use serde::{Deserialize, Serialize};

/// Description of one kernel launch (or one parallel region on the host).
///
/// The simulator never inspects *what* the kernel computed — callers declare
/// the work: how many logical GPU threads, total FLOPs, and bytes moved
/// through global memory. Constructors for the common patterns keep call
/// sites honest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Logical thread count (parallelism exposed by the launch).
    pub threads: u64,
    /// Total double-precision FLOPs across all threads.
    pub flops: u64,
    /// Bytes read from global memory.
    pub bytes_read: u64,
    /// Bytes written to global memory.
    pub bytes_written: u64,
}

impl KernelCost {
    /// An element-wise map over `n` items: one thread per item.
    pub fn map(n: u64, flops_per_item: u64, bytes_per_item: u64) -> Self {
        KernelCost {
            threads: n,
            flops: n * flops_per_item,
            bytes_read: n * bytes_per_item,
            bytes_written: n * 8,
        }
    }

    /// A tree reduction over `n` f64 values (min/max/argmin/sum): reads the
    /// input once, ~2 FLOPs (compare+select or add) per element.
    pub fn reduction(n: u64) -> Self {
        KernelCost {
            threads: n.div_ceil(2).max(1),
            flops: 2 * n,
            bytes_read: 8 * n,
            bytes_written: 8,
        }
    }

    /// A batched kernel-row product: `batch_rows` rows against `n` columns
    /// with `total_flops` multiply-adds. The batch operand (`batch_bytes`)
    /// is staged once — this is the §3.3.1 amortization: the data matrix
    /// (`data_bytes`) is streamed once *per batch*, not once per row.
    pub fn row_batch(
        batch_rows: u64,
        n: u64,
        total_flops: u64,
        batch_bytes: u64,
        data_bytes: u64,
    ) -> Self {
        KernelCost {
            threads: batch_rows * n,
            flops: total_flops,
            bytes_read: batch_bytes + data_bytes,
            bytes_written: batch_rows * n * 8,
        }
    }

    /// Total global-memory traffic.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Time in seconds this launch takes on `cfg` when granted `sm_fraction` of
/// the device (0 < sm_fraction <= 1).
///
/// `launch_overhead + max(compute, memory)` where compute throughput
/// saturates at `total_cores * sm_fraction` concurrent threads. A launch
/// whose `threads` count is below the granted width wastes the remainder —
/// the underutilization the paper's concurrent multi-SVM training recovers.
pub fn gpu_launch_time(cfg: &DeviceConfig, cost: &KernelCost, sm_fraction: f64) -> f64 {
    assert!(sm_fraction > 0.0 && sm_fraction <= 1.0, "bad sm_fraction");
    if cost.threads == 0 {
        return cfg.launch_overhead_us * 1e-6;
    }
    let width = (cfg.total_cores() as f64 * sm_fraction).max(1.0);
    let flops_per_thread = cost.flops as f64 / cost.threads as f64;
    // Waves of execution: ceil(threads/width) rounds of flops_per_thread.
    let waves = (cost.threads as f64 / width).ceil();
    let compute_s = waves * flops_per_thread / (cfg.clock_ghz * 1e9);
    let mem_s = cost.bytes_total() as f64 / (cfg.mem_bandwidth_gbps * sm_fraction * 1e9);
    cfg.launch_overhead_us * 1e-6 + compute_s.max(mem_s)
}

/// Time in seconds for a host<->device transfer of `bytes` over PCIe.
pub fn pcie_time(cfg: &DeviceConfig, bytes: u64) -> f64 {
    // ~10 µs per transfer call plus bandwidth-limited payload.
    10e-6 + bytes as f64 / (cfg.pcie_gbps * 1e9)
}

/// Time in seconds for the same work on the host CPU model.
///
/// A multi-threaded host runs each region either serially (no fork/join
/// overhead) or in parallel (overhead + threads-wide throughput) —
/// whichever is cheaper, like an OpenMP `if` clause. Small regions
/// therefore never regress when threads are added.
pub fn cpu_region_time(cfg: &HostConfig, cost: &KernelCost) -> f64 {
    let mem_s = cost.bytes_total() as f64 / (cfg.mem_bandwidth_gbps * 1e9);
    let serial_compute_s = cost.flops as f64 / (cfg.clock_ghz * 1e9 * cfg.flops_per_cycle);
    let serial = serial_compute_s.max(mem_s);
    if cfg.cores <= 1 {
        return serial;
    }
    let parallel =
        cfg.parallel_overhead_us * 1e-6 + (cost.flops as f64 / cfg.peak_flops()).max(mem_s);
    parallel.min(serial)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p100() -> DeviceConfig {
        DeviceConfig::tesla_p100()
    }

    #[test]
    fn zero_thread_launch_costs_overhead_only() {
        let t = gpu_launch_time(
            &p100(),
            &KernelCost {
                threads: 0,
                flops: 0,
                bytes_read: 0,
                bytes_written: 0,
            },
            1.0,
        );
        assert!((t - 5e-6).abs() < 1e-12);
    }

    #[test]
    fn batching_amortizes_launch_overhead() {
        // 64 separate 1-row launches vs one 64-row launch over n=10_000.
        let cfg = p100();
        let n = 10_000u64;
        let flops_per_row = 2 * n * 100; // ~100 nnz per column row
        let one_row = KernelCost::row_batch(1, n, flops_per_row, 1_000, 8 * n * 100);
        let batched = KernelCost::row_batch(64, n, 64 * flops_per_row, 64_000, 8 * n * 100);
        let t_separate = 64.0 * gpu_launch_time(&cfg, &one_row, 1.0);
        let t_batched = gpu_launch_time(&cfg, &batched, 1.0);
        assert!(
            t_batched < t_separate / 5.0,
            "batched {t_batched} vs separate {t_separate}"
        );
    }

    #[test]
    fn small_launch_underutilizes_so_fraction_is_free() {
        // A launch with fewer threads than half the device costs the same
        // at sm_fraction=0.5 (compute-bound case) — concurrency is free.
        let cfg = p100();
        let cost = KernelCost {
            threads: 256, // much less than 1792 cores
            flops: 256 * 1000,
            bytes_read: 0,
            bytes_written: 0,
        };
        let full = gpu_launch_time(&cfg, &cost, 1.0);
        let half = gpu_launch_time(&cfg, &cost, 0.5);
        assert!((full - half).abs() / full < 1e-9);
    }

    #[test]
    fn big_launch_slows_down_with_smaller_fraction() {
        let cfg = p100();
        let cost = KernelCost {
            threads: 1_000_000,
            flops: 1_000_000 * 100,
            bytes_read: 0,
            bytes_written: 0,
        };
        let full = gpu_launch_time(&cfg, &cost, 1.0);
        let half = gpu_launch_time(&cfg, &cost, 0.5);
        assert!(half > 1.8 * full && half < 2.2 * full, "{half} vs {full}");
    }

    #[test]
    fn memory_bound_launch_uses_bandwidth() {
        let cfg = p100();
        // Huge traffic, trivial compute.
        let cost = KernelCost {
            threads: 1000,
            flops: 1000,
            bytes_read: 10 * (1 << 30),
            bytes_written: 0,
        };
        let t = gpu_launch_time(&cfg, &cost, 1.0);
        let expect = 10.0 * (1u64 << 30) as f64 / (549.0 * 1e9);
        assert!((t - 5e-6 - expect).abs() / expect < 0.01);
    }

    #[test]
    fn pcie_slower_than_global_memory() {
        let cfg = p100();
        let bytes = 1u64 << 30;
        let pcie = pcie_time(&cfg, bytes);
        let mem = gpu_launch_time(
            &cfg,
            &KernelCost {
                threads: 1,
                flops: 0,
                bytes_read: bytes,
                bytes_written: 0,
            },
            1.0,
        );
        assert!(pcie > 10.0 * mem, "pcie {pcie} vs mem {mem}");
    }

    #[test]
    fn cpu_region_scales_with_threads() {
        let cost = KernelCost::map(1_000_000, 50, 16);
        let t1 = cpu_region_time(&HostConfig::xeon_e5_2640_v4(1), &cost);
        let t40 = cpu_region_time(&HostConfig::xeon_e5_2640_v4(40), &cost);
        assert!(t1 / t40 > 4.0, "t1={t1} t40={t40}");
    }

    #[test]
    fn reduction_cost_shape() {
        let c = KernelCost::reduction(1024);
        assert_eq!(c.flops, 2048);
        assert_eq!(c.bytes_read, 8192);
        assert_eq!(c.threads, 512);
        // Never zero threads even for n = 1.
        assert_eq!(KernelCost::reduction(1).threads, 1);
    }

    #[test]
    #[should_panic(expected = "bad sm_fraction")]
    fn rejects_zero_fraction() {
        gpu_launch_time(&p100(), &KernelCost::reduction(8), 0.0);
    }
}
