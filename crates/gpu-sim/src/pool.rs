//! Host-side parallel execution helpers.
//!
//! The simulator charges *modeled* time, but the numeric work is real and
//! can genuinely run on several host threads (CMP-SVM, LibSVM-with-OpenMP
//! equivalents, and the batched kernel-row products). These helpers give a
//! deterministic fork/join over index ranges built on `crossbeam` scoped
//! threads — results are merged in chunk order, so output never depends on
//! scheduling.

/// Split `0..len` into at most `threads` contiguous chunks and run `work`
/// on each (in parallel when `threads > 1`), passing the chunk range.
///
/// `work` must be safe to run concurrently on disjoint ranges.
pub fn parallel_for_chunks<F>(threads: usize, len: usize, work: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || len <= 1 {
        work(0..len);
        return;
    }
    let nchunks = threads.min(len);
    let chunk = len.div_ceil(nchunks);
    crossbeam::thread::scope(|s| {
        for c in 0..nchunks {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(len);
            let work = &work;
            s.spawn(move |_| work(start..end));
        }
    })
    // gmp:allow-panic — propagating a worker-thread panic; swallowing it would hide the original failure
    .expect("worker thread panicked");
}

/// Parallel map-reduce over `0..len`: each chunk folds with `fold`, chunk
/// results are combined in chunk order with `combine`. Deterministic for
/// non-associative floating-point reductions as long as the thread count is
/// fixed.
pub fn parallel_fold<T, F, C>(threads: usize, len: usize, init: T, fold: F, combine: C) -> T
where
    T: Send + Clone,
    F: Fn(T, std::ops::Range<usize>) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let threads = threads.max(1);
    if threads == 1 || len <= 1 {
        return fold(init, 0..len);
    }
    let nchunks = threads.min(len);
    let chunk = len.div_ceil(nchunks);
    let mut partials: Vec<Option<T>> = vec![None; nchunks];
    crossbeam::thread::scope(|s| {
        for (c, slot) in partials.iter_mut().enumerate() {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(len);
            let fold = &fold;
            let seed = init.clone();
            s.spawn(move |_| {
                *slot = Some(fold(seed, start..end));
            });
        }
    })
    // gmp:allow-panic — propagating a worker-thread panic; swallowing it would hide the original failure
    .expect("worker thread panicked");
    let mut acc = init;
    for p in partials.into_iter().flatten() {
        acc = combine(acc, p);
    }
    acc
}

/// Fill `out[i] = f(i)` for all `i`, in parallel chunks.
///
/// # Safety-free parallel writes
/// Each chunk receives a disjoint `&mut` sub-slice, so no synchronization
/// is needed.
pub fn parallel_fill<T, F>(threads: usize, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1);
    let len = out.len();
    if threads == 1 || len <= 1 {
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(i);
        }
        return;
    }
    let nchunks = threads.min(len);
    let chunk = len.div_ceil(nchunks);
    crossbeam::thread::scope(|s| {
        let mut rest = out;
        let mut offset = 0usize;
        for _ in 0..nchunks {
            let take = chunk.min(rest.len());
            if take == 0 {
                break;
            }
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let f = &f;
            let base = offset;
            s.spawn(move |_| {
                for (i, o) in head.iter_mut().enumerate() {
                    *o = f(base + i);
                }
            });
            offset += take;
        }
    })
    // gmp:allow-panic — propagating a worker-thread panic; swallowing it would hide the original failure
    .expect("worker thread panicked");
}

/// Update `out[i]` in place via `f(i, &mut out[i])`, in parallel chunks.
/// Unlike [`parallel_fill`], existing element state is preserved, so
/// callers can write a subset of each element (e.g. one column of a
/// decision-value row) without rebuilding the rest.
pub fn parallel_update<T, F>(threads: usize, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = threads.max(1);
    let len = out.len();
    if threads == 1 || len <= 1 {
        for (i, o) in out.iter_mut().enumerate() {
            f(i, o);
        }
        return;
    }
    let nchunks = threads.min(len);
    let chunk = len.div_ceil(nchunks);
    crossbeam::thread::scope(|s| {
        let mut rest = out;
        let mut offset = 0usize;
        for _ in 0..nchunks {
            let take = chunk.min(rest.len());
            if take == 0 {
                break;
            }
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let f = &f;
            let base = offset;
            s.spawn(move |_| {
                for (i, o) in head.iter_mut().enumerate() {
                    f(base + i, o);
                }
            });
            offset += take;
        }
    })
    // gmp:allow-panic — propagating a worker-thread panic; swallowing it would hide the original failure
    .expect("worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_range_exactly_once() {
        for threads in [1usize, 2, 3, 7] {
            for len in [0usize, 1, 5, 100] {
                let seen = (0..len).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
                parallel_for_chunks(threads, len, |r| {
                    for i in r {
                        seen[i].fetch_add(1, Ordering::SeqCst);
                    }
                });
                assert!(
                    seen.iter().all(|c| c.load(Ordering::SeqCst) == 1),
                    "threads={threads} len={len}"
                );
            }
        }
    }

    #[test]
    fn fold_matches_serial_sum() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        let serial: f64 = data.iter().sum();
        for threads in [1usize, 2, 4] {
            let got = parallel_fold(
                threads,
                data.len(),
                0.0f64,
                |acc, r| acc + data[r].iter().sum::<f64>(),
                |a, b| a + b,
            );
            assert!((got - serial).abs() < 1e-9);
        }
    }

    #[test]
    fn fold_is_deterministic_per_thread_count() {
        let data: Vec<f64> = (0..997).map(|i| (i as f64).sin()).collect();
        let once = parallel_fold(
            3,
            data.len(),
            0.0,
            |a, r| a + data[r].iter().sum::<f64>(),
            |a, b| a + b,
        );
        for _ in 0..5 {
            let again = parallel_fold(
                3,
                data.len(),
                0.0,
                |a, r| a + data[r].iter().sum::<f64>(),
                |a, b| a + b,
            );
            assert_eq!(once.to_bits(), again.to_bits());
        }
    }

    #[test]
    fn fill_writes_every_slot() {
        for threads in [1usize, 2, 5] {
            let mut out = vec![0usize; 37];
            parallel_fill(threads, &mut out, |i| i * 2);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
        }
    }

    #[test]
    fn fill_empty_is_noop() {
        let mut out: Vec<u8> = vec![];
        parallel_fill(4, &mut out, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let mut out = vec![0; 2];
        parallel_fill(16, &mut out, |i| i + 1);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn update_preserves_untouched_state() {
        for threads in [1usize, 3, 8] {
            let mut out: Vec<(usize, usize)> = (0..23).map(|i| (i, 7)).collect();
            parallel_update(threads, &mut out, |i, o| o.0 = i * 3);
            assert!(
                out.iter().enumerate().all(|(i, &v)| v == (i * 3, 7)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn update_empty_is_noop() {
        let mut out: Vec<u8> = vec![];
        parallel_update(4, &mut out, |_, _| unreachable!());
        assert!(out.is_empty());
    }
}
