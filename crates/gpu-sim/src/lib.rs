//! Software GPU device simulator.
//!
//! The paper runs on an NVIDIA Tesla P100 (CUDA-C + cuSPARSE). This crate is
//! the substitution mandated by the reproduction plan (see `DESIGN.md` §2):
//! a software device that preserves the two properties the paper's design
//! actually depends on:
//!
//! 1. **A hard device-memory capacity.** Allocations go through
//!    [`Device::alloc`] and fail with [`DeviceError::OutOfMemory`] when the
//!    budget is exceeded. This is what forces the GPU baseline to train one
//!    binary SVM at a time and what the kernel-value / support-vector
//!    sharing techniques relieve.
//! 2. **A massively-parallel execution cost model.** Work is submitted as
//!    kernel launches ([`Stream::launch`]) described by thread count, FLOPs
//!    and bytes touched; the model charges
//!    `launch_overhead + max(compute_time, memory_time)` with compute
//!    throughput proportional to the granted SM fraction and saturating at
//!    the device width. Small launches underutilize the device — which is
//!    exactly why batching `q` kernel rows into one launch (§3.3.1) and
//!    running several binary SVMs concurrently (§3.3.2) win.
//!
//! The numeric work itself executes on the host (optionally via the
//! [`pool::ThreadPool`]) and is bit-identical regardless of the executor, so
//! classifier-equivalence results (Table 4) are independent of the cost
//! model. Simulated time is reported *alongside* wall time and raw
//! operation counters, never instead of them.

pub mod config;
pub mod cost;
pub mod exec;
pub mod memory;
pub mod pool;
pub mod reduce;
pub mod stats;

pub use config::{DeviceConfig, HostConfig};
pub use cost::KernelCost;
pub use exec::{CpuExecutor, Executor, Stream};
pub use memory::{Device, DeviceAlloc, DeviceError};
pub use stats::DeviceStats;
