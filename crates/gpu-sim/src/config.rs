//! Hardware descriptions for the analytic cost models.

use serde::{Deserialize, Serialize};

/// Description of a simulated GPU.
///
/// Defaults mirror the paper's testbed (Tesla P100, 12 GB variant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name (reports only).
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// FP64 cores per SM (the solver works in double precision, like the
    /// LibSVM reference it is compared against).
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Global memory capacity in bytes — the hard budget every allocation
    /// is charged against.
    pub global_mem_bytes: u64,
    /// Global memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Host<->device (PCIe) bandwidth in GB/s — one order of magnitude
    /// below global-memory bandwidth, per §2.3 of the paper.
    pub pcie_gbps: f64,
    /// Fixed kernel-launch overhead in microseconds. This is what batching
    /// q rows into one launch amortizes.
    pub launch_overhead_us: f64,
}

impl DeviceConfig {
    /// The paper's GPU: Tesla P100 with 12 GB of global memory.
    ///
    /// 56 SMs x 32 FP64 cores @ 1.33 GHz ≈ 4.7 TFLOP/s double precision,
    /// 549 GB/s memory bandwidth (12 GB variant), ~12 GB/s effective PCIe
    /// 3.0 x16, ~5 µs launch overhead.
    pub fn tesla_p100() -> Self {
        DeviceConfig {
            name: "Tesla P100 (simulated)".to_string(),
            num_sms: 56,
            cores_per_sm: 32,
            clock_ghz: 1.328,
            global_mem_bytes: 12 * (1 << 30),
            mem_bandwidth_gbps: 549.0,
            pcie_gbps: 12.0,
            launch_overhead_us: 5.0,
        }
    }

    /// Tesla V100 (16 GB): the "better GPU" of the paper's forward-looking
    /// claim in §4.1 — "Better GPUs such as V100 should further improve
    /// the efficiency of GMP-SVM, due to higher memory bandwidth and more
    /// cores." 80 SMs x 32 FP64 cores @ 1.53 GHz ≈ 7.8 TFLOP/s, 900 GB/s.
    pub fn tesla_v100() -> Self {
        DeviceConfig {
            name: "Tesla V100 (simulated)".to_string(),
            num_sms: 80,
            cores_per_sm: 32,
            clock_ghz: 1.53,
            global_mem_bytes: 16 * (1 << 30),
            mem_bandwidth_gbps: 900.0,
            pcie_gbps: 13.0,
            launch_overhead_us: 4.0,
        }
    }

    /// A deliberately tiny device for unit tests: 2 SMs, 64 KiB of memory,
    /// so out-of-memory paths and scheduling decisions are easy to trigger.
    pub fn tiny_test(mem_bytes: u64) -> Self {
        DeviceConfig {
            name: "tiny-test".to_string(),
            num_sms: 2,
            cores_per_sm: 4,
            clock_ghz: 1.0,
            global_mem_bytes: mem_bytes,
            mem_bandwidth_gbps: 10.0,
            pcie_gbps: 1.0,
            launch_overhead_us: 1.0,
        }
    }

    /// Total FP64 core count.
    pub fn total_cores(&self) -> u64 {
        self.num_sms as u64 * self.cores_per_sm as u64
    }

    /// Peak FLOP/s (1 FLOP per core per cycle).
    pub fn peak_flops(&self) -> f64 {
        self.total_cores() as f64 * self.clock_ghz * 1e9
    }
}

/// Description of a host CPU for the CPU-side cost model (LibSVM with and
/// without OpenMP, and CMP-SVM).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Human-readable name.
    pub name: String,
    /// Physical core count available to the run.
    pub cores: u32,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Sustained double-precision FLOPs per cycle per core for this kind of
    /// irregular sparse workload (well below the AVX2 peak on purpose).
    pub flops_per_cycle: f64,
    /// Memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Fork/join overhead of a parallel region in microseconds (OpenMP-like).
    pub parallel_overhead_us: f64,
}

impl HostConfig {
    /// The paper's workstation: two Xeon E5-2640 v4 (2x10 cores @ 2.4 GHz,
    /// 256 GB RAM). `cores` here is the number of *threads the run uses*.
    pub fn xeon_e5_2640_v4(threads: u32) -> Self {
        HostConfig {
            name: format!("2x Xeon E5-2640 v4 ({threads} threads, simulated)"),
            cores: threads,
            clock_ghz: 2.4,
            // Sparse gather/scatter dot products sustain roughly 2 DP
            // flops/cycle on this microarchitecture — far from the FMA peak.
            flops_per_cycle: 2.0,
            mem_bandwidth_gbps: 136.0,
            parallel_overhead_us: 2.0,
        }
    }

    /// Peak sustained FLOP/s for the configured thread count.
    pub fn peak_flops(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * 1e9 * self.flops_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_shape() {
        let c = DeviceConfig::tesla_p100();
        assert_eq!(c.total_cores(), 56 * 32);
        assert!(c.peak_flops() > 2e12);
        assert_eq!(c.global_mem_bytes, 12 * 1024 * 1024 * 1024);
    }

    #[test]
    fn gpu_much_faster_than_cpu() {
        // The simulated hardware ratio that drives the paper's CPU-vs-GPU
        // comparisons: P100 should be several times the 40-thread host.
        let gpu = DeviceConfig::tesla_p100();
        let cpu = HostConfig::xeon_e5_2640_v4(40);
        let ratio = gpu.peak_flops() / cpu.peak_flops();
        assert!(ratio > 5.0 && ratio < 50.0, "ratio {ratio}");
    }

    #[test]
    fn single_thread_scales_down() {
        let one = HostConfig::xeon_e5_2640_v4(1);
        let forty = HostConfig::xeon_e5_2640_v4(40);
        assert!((forty.peak_flops() / one.peak_flops() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_device_budget() {
        let c = DeviceConfig::tiny_test(1024);
        assert_eq!(c.global_mem_bytes, 1024);
        assert_eq!(c.total_cores(), 8);
    }
}
