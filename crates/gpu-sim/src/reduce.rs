//! Data-parallel reduction primitives with cost accounting.
//!
//! §3.2 of the paper: working-set selection (Step 1 of SMO) is a parallel
//! reduction on the GPU — "each thread compares two elements and discards
//! the larger/smaller one until only one element is left". These helpers
//! perform the reduction on the host and charge the equivalent
//! tree-reduction launch to the supplied executor.

use crate::cost::KernelCost;
use crate::exec::Executor;

/// Index and value of an extremum found by a reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArgExtreme {
    /// Position in the scanned slice (caller maps it back to instance ids).
    pub index: usize,
    /// Value at that position.
    pub value: f64,
}

/// Argmin over `values[i]` restricted to `i` where `mask(i)` is true.
/// Returns `None` if no index passes the mask. Ties resolve to the lowest
/// index, matching a deterministic GPU reduction.
pub fn argmin_masked<M>(exec: &dyn Executor, values: &[f64], mask: M) -> Option<ArgExtreme>
where
    M: Fn(usize) -> bool,
{
    exec.charge(KernelCost::reduction(values.len() as u64));
    let mut best: Option<ArgExtreme> = None;
    for (i, &v) in values.iter().enumerate() {
        if !mask(i) {
            continue;
        }
        match best {
            Some(b) if b.value <= v => {}
            _ => best = Some(ArgExtreme { index: i, value: v }),
        }
    }
    best
}

/// Argmax over `values[i]` restricted to `mask`. Ties resolve to the lowest
/// index.
pub fn argmax_masked<M>(exec: &dyn Executor, values: &[f64], mask: M) -> Option<ArgExtreme>
where
    M: Fn(usize) -> bool,
{
    exec.charge(KernelCost::reduction(values.len() as u64));
    let mut best: Option<ArgExtreme> = None;
    for (i, &v) in values.iter().enumerate() {
        if !mask(i) {
            continue;
        }
        match best {
            Some(b) if b.value >= v => {}
            _ => best = Some(ArgExtreme { index: i, value: v }),
        }
    }
    best
}

/// Sum of a slice, charged as one reduction launch.
pub fn sum(exec: &dyn Executor, values: &[f64]) -> f64 {
    exec.charge(KernelCost::reduction(values.len() as u64));
    values.iter().sum()
}

/// Argmax of a *keyed* reduction: maximize `key(i)` over indices passing
/// `mask`, used for the second-order working-set selection (Equation 5 of
/// the paper, maximizing `(f_u - f_i)^2 / eta_i`).
pub fn argmax_by_key<M, K>(exec: &dyn Executor, n: usize, mask: M, key: K) -> Option<ArgExtreme>
where
    M: Fn(usize) -> bool,
    K: Fn(usize) -> f64,
{
    // Keyed reductions evaluate the key per element: charge a map+reduce.
    exec.charge(KernelCost::map(n as u64, 6, 16));
    exec.charge(KernelCost::reduction(n as u64));
    let mut best: Option<ArgExtreme> = None;
    for i in 0..n {
        if !mask(i) {
            continue;
        }
        let v = key(i);
        match best {
            Some(b) if b.value >= v => {}
            _ => best = Some(ArgExtreme { index: i, value: v }),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::CpuExecutor;

    fn exec() -> CpuExecutor {
        CpuExecutor::xeon(1)
    }

    #[test]
    fn argmin_unmasked() {
        let e = exec();
        let r = argmin_masked(&e, &[3.0, 1.0, 2.0], |_| true).unwrap();
        assert_eq!(r.index, 1);
        assert_eq!(r.value, 1.0);
        assert!(e.elapsed() > 0.0);
    }

    #[test]
    fn argmin_respects_mask() {
        let e = exec();
        let r = argmin_masked(&e, &[3.0, 1.0, 2.0], |i| i != 1).unwrap();
        assert_eq!(r.index, 2);
    }

    #[test]
    fn empty_mask_returns_none() {
        let e = exec();
        assert!(argmin_masked(&e, &[1.0, 2.0], |_| false).is_none());
        assert!(argmax_masked(&e, &[1.0, 2.0], |_| false).is_none());
    }

    #[test]
    fn argmax_ties_pick_first() {
        let e = exec();
        let r = argmax_masked(&e, &[5.0, 5.0, 1.0], |_| true).unwrap();
        assert_eq!(r.index, 0);
    }

    #[test]
    fn sum_matches_serial() {
        let e = exec();
        assert_eq!(sum(&e, &[1.0, 2.0, 3.5]), 6.5);
    }

    #[test]
    fn keyed_argmax() {
        let e = exec();
        // maximize -(i as f64 - 2)^2 -> i = 2
        let r = argmax_by_key(&e, 5, |_| true, |i| -((i as f64 - 2.0).powi(2))).unwrap();
        assert_eq!(r.index, 2);
    }

    #[test]
    fn reductions_charge_time() {
        let e = exec();
        let before = e.elapsed();
        let _ = sum(&e, &vec![1.0; 100_000]);
        assert!(e.elapsed() > before);
    }
}
