//! Executors: where simulated time is charged.
//!
//! The solvers perform their numeric work on the host and *declare* each
//! data-parallel step to an [`Executor`], which accumulates simulated time
//! according to its hardware model:
//!
//! * [`Stream`] — a CUDA-stream-like timeline on a [`Device`]. Concurrent
//!   binary SVMs each get a stream with an SM fraction; the multi-class
//!   trainer combines stream clocks with `max` at synchronization points.
//! * [`CpuExecutor`] — the host model used for LibSVM(-OpenMP) and CMP-SVM.
//!
//! Keeping computation and accounting separate guarantees that every
//! backend produces bit-identical classifiers (Table 4) while their costs
//! diverge the way the paper reports.

use crate::config::HostConfig;
use crate::cost::{cpu_region_time, gpu_launch_time, KernelCost};
use crate::memory::Device;
use parking_lot::Mutex;
use std::sync::Arc;

/// A sink for declared parallel work.
pub trait Executor: Send + Sync {
    /// Short name for reports ("gpu-stream", "cpu-40t", ...).
    fn name(&self) -> String;

    /// Charge one kernel launch / parallel region.
    fn charge(&self, cost: KernelCost);

    /// Charge a host<->device transfer (no-op on CPU executors).
    fn charge_transfer(&self, bytes: u64);

    /// Simulated seconds elapsed on this executor's timeline.
    fn elapsed(&self) -> f64;

    /// Advance the timeline without other accounting (used to model
    /// serialized host-side steps such as the two-variable update of SMO,
    /// which the paper notes cannot be parallelized).
    fn advance(&self, seconds: f64);
}

/// A stream of work on a simulated GPU with a dedicated SM fraction.
#[derive(Clone)]
pub struct Stream {
    device: Device,
    sm_fraction: f64,
    clock_s: Arc<Mutex<f64>>,
}

impl Stream {
    /// A stream granted `sm_fraction` of the device's SMs (§3.3.2 limits
    /// the SMs per binary SVM to allow concurrent training).
    pub fn new(device: Device, sm_fraction: f64) -> Self {
        assert!(
            sm_fraction > 0.0 && sm_fraction <= 1.0,
            "sm_fraction must be in (0, 1]"
        );
        Stream {
            device,
            sm_fraction,
            clock_s: Arc::new(Mutex::new(0.0)),
        }
    }

    /// The device this stream runs on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The SM fraction granted to this stream.
    pub fn sm_fraction(&self) -> f64 {
        self.sm_fraction
    }
}

impl Executor for Stream {
    fn name(&self) -> String {
        format!("gpu-stream(x{:.2})", self.sm_fraction)
    }

    fn charge(&self, cost: KernelCost) {
        let t = gpu_launch_time(self.device.config(), &cost, self.sm_fraction);
        self.device
            .stats_cell()
            .record_launch(cost.flops, cost.bytes_total(), t);
        *self.clock_s.lock() += t;
    }

    fn charge_transfer(&self, bytes: u64) {
        let t = self.device.transfer(bytes);
        *self.clock_s.lock() += t;
    }

    fn elapsed(&self) -> f64 {
        *self.clock_s.lock()
    }

    fn advance(&self, seconds: f64) {
        *self.clock_s.lock() += seconds;
    }
}

/// Host CPU executor with a fixed thread count.
#[derive(Clone)]
pub struct CpuExecutor {
    config: HostConfig,
    clock_s: Arc<Mutex<f64>>,
}

impl CpuExecutor {
    /// An executor over the given host model.
    pub fn new(config: HostConfig) -> Self {
        CpuExecutor {
            config,
            clock_s: Arc::new(Mutex::new(0.0)),
        }
    }

    /// An executor over the paper's testbed host (the Xeon E5-2640 v4 model)
    /// with the given thread count — the one host configuration every
    /// backend, test, and bench in the workspace uses.
    pub fn xeon(threads: u32) -> Self {
        CpuExecutor::new(HostConfig::xeon_e5_2640_v4(threads))
    }

    /// The host description.
    pub fn config(&self) -> &HostConfig {
        &self.config
    }
}

impl Executor for CpuExecutor {
    fn name(&self) -> String {
        format!("cpu-{}t", self.config.cores)
    }

    fn charge(&self, cost: KernelCost) {
        *self.clock_s.lock() += cpu_region_time(&self.config, &cost);
    }

    fn charge_transfer(&self, _bytes: u64) {
        // Data is already in host memory: no PCIe on the CPU path.
    }

    fn elapsed(&self) -> f64 {
        *self.clock_s.lock()
    }

    fn advance(&self, seconds: f64) {
        *self.clock_s.lock() += seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    #[test]
    fn stream_accumulates_time_and_stats() {
        let dev = Device::new(DeviceConfig::tesla_p100());
        let s = Stream::new(dev.clone(), 1.0);
        assert_eq!(s.elapsed(), 0.0);
        s.charge(KernelCost::reduction(1 << 20));
        s.charge(KernelCost::reduction(1 << 20));
        assert!(s.elapsed() > 0.0);
        assert_eq!(dev.stats().launches, 2);
    }

    #[test]
    fn transfer_advances_stream_clock() {
        let dev = Device::new(DeviceConfig::tesla_p100());
        let s = Stream::new(dev.clone(), 1.0);
        s.charge_transfer(1 << 20);
        assert!(s.elapsed() > 0.0);
        assert_eq!(dev.stats().bytes_pcie, 1 << 20);
    }

    #[test]
    fn streams_are_independent_timelines() {
        let dev = Device::new(DeviceConfig::tesla_p100());
        let a = Stream::new(dev.clone(), 0.5);
        let b = Stream::new(dev, 0.5);
        a.charge(KernelCost::reduction(1 << 22));
        assert!(a.elapsed() > 0.0);
        assert_eq!(b.elapsed(), 0.0);
    }

    #[test]
    fn cpu_more_threads_is_faster() {
        let cost = KernelCost::map(10_000_000, 20, 16);
        let slow = CpuExecutor::xeon(1);
        let fast = CpuExecutor::xeon(40);
        slow.charge(cost);
        fast.charge(cost);
        assert!(slow.elapsed() > fast.elapsed() * 3.0);
    }

    #[test]
    fn advance_moves_clock() {
        let c = CpuExecutor::xeon(1);
        c.advance(0.5);
        assert!((c.elapsed() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sm_fraction")]
    fn stream_rejects_bad_fraction() {
        let dev = Device::new(DeviceConfig::tesla_p100());
        let _ = Stream::new(dev, 1.5);
    }

    #[test]
    fn names_identify_executors() {
        let dev = Device::new(DeviceConfig::tesla_p100());
        assert!(Stream::new(dev, 0.25).name().contains("0.25"));
        assert_eq!(CpuExecutor::xeon(40).name(), "cpu-40t");
    }

    #[test]
    fn executors_are_shareable_across_threads() {
        // Compile-time guarantee the trainer's wave workers rely on.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Stream>();
        assert_send_sync::<CpuExecutor>();
        assert_send_sync::<Device>();
    }

    #[test]
    fn concurrent_charges_sum_exactly() {
        // 4 threads x 50 identical charges on one shared stream must land
        // on the clock exactly like 200 sequential charges: every increment
        // adds the same value, so the final sum is order-independent.
        let dev = Device::new(DeviceConfig::tesla_p100());
        let shared = Stream::new(dev.clone(), 0.5);
        let reference = Stream::new(dev.clone(), 0.5);
        for _ in 0..200 {
            reference.charge(KernelCost::reduction(1 << 12));
        }
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let shared = &shared;
                s.spawn(move |_| {
                    for _ in 0..50 {
                        shared.charge(KernelCost::reduction(1 << 12));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(shared.elapsed().to_bits(), reference.elapsed().to_bits());
        assert_eq!(dev.stats().launches, 400);
    }
}
