//! Shared fixtures and hashing helpers for the repository-root
//! integration tests (see the `[[test]]` entries in `Cargo.toml`).
//!
//! The bit-exactness tests pin results as FNV-1a 64 hashes of the raw
//! IEEE-754 bits, so "bit-identical" means exactly that — any change to a
//! summation order, a charge, or the model text shows up as a hash
//! mismatch, not a tolerance failure.

use gmp_datasets::{BlobSpec, Dataset};
use gmp_svm::predict::PredictOutcome;
use gmp_svm::{Backend, SvmParams};

/// FNV-1a 64-bit over a byte stream.
pub fn fnv64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a 64 over the exact bits of a stream of `f64`s (little-endian,
/// iteration order).
pub fn fnv64_f64s<'a>(vals: impl IntoIterator<Item = &'a f64>) -> u64 {
    fnv64(vals.into_iter().flat_map(|v| v.to_bits().to_le_bytes()))
}

/// FNV-1a 64 over `u32` labels (little-endian).
pub fn fnv64_u32s<'a>(vals: impl IntoIterator<Item = &'a u32>) -> u64 {
    fnv64(vals.into_iter().flat_map(|v| v.to_le_bytes()))
}

/// Row-major hashes of a prediction outcome: (decision values,
/// probabilities, labels).
pub fn predict_hashes(p: &PredictOutcome) -> (u64, u64, u64) {
    (
        fnv64_f64s(p.decision_values.iter().flatten()),
        fnv64_f64s(p.probabilities.iter().flatten()),
        fnv64_u32s(p.labels.iter()),
    )
}

/// The pinned end-to-end scenario: a 3-class blob problem small enough to
/// train in milliseconds but large enough to exercise working-set rounds,
/// the shared store, sigmoid fitting, and coupling.
pub fn golden_dataset() -> Dataset {
    BlobSpec {
        n: 90,
        dim: 2,
        classes: 3,
        spread: 0.15,
        seed: 9,
    }
    .generate()
}

/// Parameters of the pinned scenario (deterministic given one host
/// thread).
pub fn golden_params() -> SvmParams {
    SvmParams::default()
        .with_c(2.0)
        .with_rbf(1.0)
        .with_working_set(32, 16)
}

/// The pinned scenario's execution backend.
pub fn golden_backend() -> Backend {
    Backend::gmp_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Known FNV-1a 64 values.
        assert_eq!(fnv64([]), 0xcbf29ce484222325);
        assert_eq!(fnv64(*b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(*b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hash_helpers_are_order_sensitive() {
        let a = [1.0f64, 2.0];
        let b = [2.0f64, 1.0];
        assert_ne!(fnv64_f64s(a.iter()), fnv64_f64s(b.iter()));
        assert_ne!(fnv64_u32s([1u32, 2].iter()), fnv64_u32s([2u32, 1].iter()));
    }
}
