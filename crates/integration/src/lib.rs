//! Host crate for the repository-root integration tests (see Cargo.toml [[test]] entries).
