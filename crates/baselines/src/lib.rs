//! Behavioural re-implementations of the third-party GPU SVM systems the
//! paper compares against in §4.3 (Figs. 8–10).
//!
//! The original binaries are CUDA programs we cannot run here; each
//! comparator below reduces the system to the property the paper credits
//! or blames for its performance (DESIGN.md §2):
//!
//! * [`GpuSvmLike`] (Catanzaro et al. 2008) — binary SVMs only, **dense**
//!   data representation (the reason it loses badly on sparse datasets
//!   like RCV1 in Fig. 10), first-order working-set selection.
//! * [`OhdSvmLike`] (Vaněk et al. 2017) — binary SVMs only, hierarchical
//!   two-level working sets, but no cross-round kernel-row reuse.
//! * [`GtSvmLike`] (Cotter et al. 2011) — multi-class (one-vs-one) without
//!   probability output, sparse CSR data, small working sets, no kernel
//!   value sharing across binary SVMs.

pub mod comparators;
pub mod uncached;

pub use comparators::{ComparatorReport, GpuSvmLike, GtSvmLike, OhdSvmLike};
pub use uncached::UncachedRows;
