//! The three third-party comparator systems (§4.3).

use crate::uncached::UncachedRows;
use gmp_datasets::Dataset;
use gmp_gpusim::{Device, DeviceConfig, DeviceError, Executor, Stream};
use gmp_kernel::{BufferedRows, KernelKind, KernelOracle, ReplacementPolicy};
use gmp_smo::{BatchedParams, BatchedSmoSolver, ClassicSmoSolver, SmoParams};
use gmp_sparse::{CsrBuilder, CsrMatrix};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Result of training one comparator on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparatorReport {
    /// System name.
    pub name: String,
    /// Simulated seconds on the modeled device.
    pub sim_s: f64,
    /// Wall-clock seconds on this host.
    pub wall_s: f64,
    /// Kernel values computed.
    pub kernel_evals: u64,
    /// Total SMO iterations.
    pub iterations: u64,
    /// All binary problems converged?
    pub converged: bool,
}

fn binary_labels(data: &Dataset) -> Vec<f64> {
    assert_eq!(
        data.n_classes(),
        2,
        "binary comparator needs a 2-class dataset"
    );
    data.y
        .iter()
        .map(|&c| if c == 0 { 1.0 } else { -1.0 })
        .collect()
}

/// Store every value of the matrix explicitly (zeros included) — the dense
/// data representation of GPUSVM; `nnz == n x d` makes its kernel products
/// pay for the full dimensionality on sparse data.
fn densify(x: &CsrMatrix) -> CsrMatrix {
    let mut b = CsrBuilder::new(x.ncols());
    b.reserve(x.nrows() * x.ncols());
    let mut scratch = vec![0.0; x.ncols()];
    for i in 0..x.nrows() {
        x.row(i).scatter(&mut scratch);
        b.start_row();
        for (c, &v) in scratch.iter().enumerate() {
            // Exact zeros are stored too: use push on every column.
            b.push(c as u32, v);
        }
        x.row(i).clear_scatter(&mut scratch);
    }
    b.finish()
}

/// GPUSVM (Catanzaro et al. 2008): binary SVM training with dense data.
#[derive(Debug, Clone)]
pub struct GpuSvmLike {
    /// Penalty parameter.
    pub c: f64,
    /// Kernel function.
    pub kernel: KernelKind,
    /// Stopping tolerance.
    pub eps: f64,
    /// Simulated device.
    pub device: DeviceConfig,
}

impl GpuSvmLike {
    /// Train on a binary dataset.
    pub fn train(&self, data: &Dataset) -> Result<ComparatorReport, DeviceError> {
        let wall = Instant::now();
        let y = binary_labels(data);
        let dense = Arc::new(densify(&data.x));
        let device = Device::new(self.device.clone());
        let stream = Stream::new(device.clone(), 1.0);
        // Dense data resident on device (the memory penalty of the design).
        let _mem = device.alloc(dense.mem_bytes() as u64)?;
        stream.charge_transfer(dense.mem_bytes() as u64);
        let oracle = Arc::new(KernelOracle::new(dense, self.kernel));
        let mut rows = BufferedRows::new(
            oracle.clone(),
            512.min(data.n().max(1)),
            ReplacementPolicy::Lru,
            Some(&device),
        )?;
        let result = ClassicSmoSolver::new(SmoParams {
            c: self.c,
            eps: self.eps,
            max_iter: 10_000_000,
            shrinking: false,
        })
        .solve(&y, &mut rows, &stream);
        Ok(ComparatorReport {
            name: "GPUSVM".to_string(),
            sim_s: stream.elapsed(),
            wall_s: wall.elapsed().as_secs_f64(),
            kernel_evals: oracle.eval_count(),
            iterations: result.iterations,
            converged: result.converged,
        })
    }
}

/// OHD-SVM (Vaněk et al. 2017): binary SVMs, hierarchical (two-level)
/// working sets, sparse data, no cross-round row reuse.
#[derive(Debug, Clone)]
pub struct OhdSvmLike {
    /// Penalty parameter.
    pub c: f64,
    /// Kernel function.
    pub kernel: KernelKind,
    /// Stopping tolerance.
    pub eps: f64,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Working-set size of the outer level (their default is on the order
    /// of a few hundred).
    pub ws_size: usize,
}

impl OhdSvmLike {
    /// Train on a binary dataset.
    pub fn train(&self, data: &Dataset) -> Result<ComparatorReport, DeviceError> {
        let wall = Instant::now();
        let y = binary_labels(data);
        let device = Device::new(self.device.clone());
        let stream = Stream::new(device.clone(), 1.0);
        let _mem = device.alloc(data.x.mem_bytes() as u64)?;
        stream.charge_transfer(data.x.mem_bytes() as u64);
        let oracle = Arc::new(KernelOracle::new(Arc::new(data.x.clone()), self.kernel));
        // No retained kernel rows across rounds: every working-set refresh
        // recomputes its rows (their hierarchical scheme keeps rows only
        // within the inner level).
        let mut rows = UncachedRows::new(oracle.clone());
        let params = BatchedParams {
            base: SmoParams {
                c: self.c,
                eps: self.eps,
                max_iter: 10_000_000,
                shrinking: false,
            },
            ws_size: self.ws_size,
            q: (self.ws_size / 2).max(2),
            inner_relax: 0.1,
            max_inner: self.ws_size * 4,
        };
        let result = BatchedSmoSolver::new(params).solve(&y, &mut rows, &stream);
        Ok(ComparatorReport {
            name: "OHD-SVM".to_string(),
            sim_s: stream.elapsed(),
            wall_s: wall.elapsed().as_secs_f64(),
            kernel_evals: oracle.eval_count(),
            iterations: result.iterations,
            converged: result.converged,
        })
    }
}

/// GTSVM (Cotter et al. 2011): one-vs-one multi-class SVMs (no probability
/// support), sparse CSR data, small working sets, sequential binary
/// training without kernel sharing.
#[derive(Debug, Clone)]
pub struct GtSvmLike {
    /// Penalty parameter.
    pub c: f64,
    /// Kernel function.
    pub kernel: KernelKind,
    /// Stopping tolerance.
    pub eps: f64,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Their small fixed working set (16 in the original system).
    pub ws_size: usize,
}

impl GtSvmLike {
    /// Train one-vs-one multi-class SVMs on `data`.
    pub fn train(&self, data: &Dataset) -> Result<ComparatorReport, DeviceError> {
        let wall = Instant::now();
        let k = data.n_classes();
        assert!(k >= 2, "need at least two classes");
        let device = Device::new(self.device.clone());
        let mut sim_s = 0.0;
        let mut kernel_evals = 0u64;
        let mut iterations = 0u64;
        let mut converged = true;
        for s in 0..k as u32 {
            for t in s + 1..k as u32 {
                // Materialize the pair's sub-dataset (no sharing).
                let mut idx = data.class_indices(s);
                let n_s = idx.len();
                idx.extend(data.class_indices(t));
                let sub = Arc::new(data.x.select_rows(&idx));
                let y: Vec<f64> = (0..idx.len())
                    .map(|i| if i < n_s { 1.0 } else { -1.0 })
                    .collect();
                let stream = Stream::new(device.clone(), 1.0);
                let _mem = device.alloc(sub.mem_bytes() as u64)?;
                stream.charge_transfer(sub.mem_bytes() as u64);
                let oracle = Arc::new(KernelOracle::new(sub, self.kernel));
                let mut rows = UncachedRows::new(oracle.clone());
                let params = BatchedParams {
                    base: SmoParams {
                        c: self.c,
                        eps: self.eps,
                        max_iter: 10_000_000,
                        shrinking: false,
                    },
                    ws_size: self.ws_size,
                    q: (self.ws_size / 2).max(2),
                    inner_relax: 0.0,
                    max_inner: self.ws_size * 4,
                };
                let result = BatchedSmoSolver::new(params).solve(&y, &mut rows, &stream);
                sim_s += stream.elapsed();
                kernel_evals += oracle.eval_count();
                iterations += result.iterations;
                converged &= result.converged;
            }
        }
        Ok(ComparatorReport {
            name: "GTSVM".to_string(),
            sim_s,
            wall_s: wall.elapsed().as_secs_f64(),
            kernel_evals,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_datasets::BlobSpec;

    fn binary_data() -> Dataset {
        BlobSpec {
            n: 80,
            dim: 4,
            classes: 2,
            spread: 0.2,
            seed: 13,
        }
        .generate()
    }

    fn multi_data() -> Dataset {
        BlobSpec {
            n: 90,
            dim: 3,
            classes: 3,
            spread: 0.18,
            seed: 14,
        }
        .generate()
    }

    #[test]
    fn densify_stores_zeros() {
        let x = CsrMatrix::from_dense(&[vec![1.0, 0.0, 2.0]], 3);
        let d = densify(&x);
        assert_eq!(d.nnz(), 3);
        assert_eq!(d.row(0).values, &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn gpusvm_trains_binary() {
        let r = GpuSvmLike {
            c: 1.0,
            kernel: KernelKind::Rbf { gamma: 1.0 },
            eps: 1e-3,
            device: DeviceConfig::tesla_p100(),
        }
        .train(&binary_data())
        .unwrap();
        assert!(r.converged);
        assert!(r.sim_s > 0.0);
        assert!(r.kernel_evals > 0);
    }

    #[test]
    #[should_panic(expected = "2-class")]
    fn gpusvm_rejects_multiclass() {
        let _ = GpuSvmLike {
            c: 1.0,
            kernel: KernelKind::Linear,
            eps: 1e-3,
            device: DeviceConfig::tesla_p100(),
        }
        .train(&multi_data());
    }

    #[test]
    fn ohdsvm_trains_binary() {
        let r = OhdSvmLike {
            c: 1.0,
            kernel: KernelKind::Rbf { gamma: 1.0 },
            eps: 1e-3,
            device: DeviceConfig::tesla_p100(),
            ws_size: 16,
        }
        .train(&binary_data())
        .unwrap();
        assert!(r.converged);
        assert!(r.iterations > 0);
    }

    #[test]
    fn gtsvm_trains_multiclass() {
        let r = GtSvmLike {
            c: 1.0,
            kernel: KernelKind::Rbf { gamma: 1.0 },
            eps: 1e-3,
            device: DeviceConfig::tesla_p100(),
            ws_size: 16,
        }
        .train(&multi_data())
        .unwrap();
        assert!(r.converged);
        assert!(r.kernel_evals > 0);
    }

    #[test]
    fn dense_representation_costs_more_evals_work() {
        // On sparse data, the dense comparator's kernel work (flops) blows
        // up even with the same algorithm: compare simulated time against
        // a sparse-path classic solve.
        let sparse_data = gmp_datasets::SynthSpec {
            n: 60,
            dim: 2000,
            classes: 2,
            density: 0.01,
            class_sep: 0.8,
            label_noise: 0.0,
            scale: 1.0,
            seed: 3,
        }
        .generate();
        let dense_report = GpuSvmLike {
            c: 1.0,
            kernel: KernelKind::Rbf { gamma: 0.5 },
            eps: 1e-3,
            device: DeviceConfig::tesla_p100(),
        }
        .train(&sparse_data)
        .unwrap();
        // Sparse path with the same solver.
        let y = binary_labels(&sparse_data);
        let device = Device::new(DeviceConfig::tesla_p100());
        let stream = Stream::new(device.clone(), 1.0);
        let oracle = Arc::new(KernelOracle::new(
            Arc::new(sparse_data.x.clone()),
            KernelKind::Rbf { gamma: 0.5 },
        ));
        let mut rows =
            BufferedRows::new(oracle, 512, ReplacementPolicy::Lru, Some(&device)).unwrap();
        let _ = ClassicSmoSolver::new(SmoParams::with_c(1.0)).solve(&y, &mut rows, &stream);
        assert!(
            dense_report.sim_s > stream.elapsed(),
            "dense {} vs sparse {}",
            dense_report.sim_s,
            stream.elapsed()
        );
    }
}
