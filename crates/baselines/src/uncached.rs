//! A row provider without cross-call reuse: every `ensure` recomputes all
//! requested rows. Models comparators whose caching strategy does not
//! carry kernel rows across working-set rounds.

use gmp_gpusim::Executor;
use gmp_kernel::{KernelOracle, KernelRows, RowProviderStats};
use gmp_sparse::DenseMatrix;
use std::collections::HashMap;
use std::sync::Arc;

/// Recompute-always row provider.
pub struct UncachedRows {
    oracle: Arc<KernelOracle>,
    resident: HashMap<usize, usize>,
    block: DenseMatrix,
    evals_base: u64,
    rows_computed: u64,
    misses: u64,
}

impl UncachedRows {
    /// A provider over `oracle` with no retained state between `ensure`s.
    pub fn new(oracle: Arc<KernelOracle>) -> Self {
        let evals_base = oracle.eval_count();
        UncachedRows {
            oracle,
            resident: HashMap::new(),
            block: DenseMatrix::zeros(0, 0),
            evals_base,
            rows_computed: 0,
            misses: 0,
        }
    }
}

impl KernelRows for UncachedRows {
    fn n(&self) -> usize {
        self.oracle.n()
    }

    fn diag(&self, i: usize) -> f64 {
        self.oracle.diag(i)
    }

    fn ensure(&mut self, exec: &dyn Executor, ids: &[usize]) {
        self.resident.clear();
        self.block = DenseMatrix::zeros(ids.len(), self.n());
        self.oracle.compute_rows(exec, ids, &mut self.block);
        for (slot, &id) in ids.iter().enumerate() {
            self.resident.insert(id, slot);
        }
        self.rows_computed += ids.len() as u64;
        self.misses += ids.len() as u64;
    }

    fn row(&self, id: usize) -> &[f64] {
        let slot = *self
            .resident
            .get(&id)
            // gmp:allow-panic — row residency is guaranteed by the preceding ensure(); absence is a solver bug, not caller input
            .unwrap_or_else(|| panic!("row {id} not in last ensure"));
        self.block.row(slot)
    }

    fn is_resident(&self, id: usize) -> bool {
        self.resident.contains_key(&id)
    }

    fn stats(&self) -> RowProviderStats {
        RowProviderStats {
            kernel_evals: self.oracle.eval_count() - self.evals_base,
            rows_computed: self.rows_computed,
            buffer_hits: 0,
            buffer_misses: self.misses,
            evictions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_gpusim::CpuExecutor;
    use gmp_kernel::KernelKind;
    use gmp_sparse::CsrMatrix;

    fn provider() -> UncachedRows {
        let data = Arc::new(CsrMatrix::from_dense(
            &[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
            2,
        ));
        UncachedRows::new(Arc::new(KernelOracle::new(data, KernelKind::Linear)))
    }

    fn exec() -> CpuExecutor {
        CpuExecutor::xeon(1)
    }

    #[test]
    fn recomputes_every_time() {
        let mut p = provider();
        let e = exec();
        p.ensure(&e, &[0, 1]);
        p.ensure(&e, &[0, 1]);
        assert_eq!(p.stats().rows_computed, 4);
        assert_eq!(p.stats().buffer_hits, 0);
    }

    #[test]
    fn rows_correct() {
        let mut p = provider();
        let e = exec();
        p.ensure(&e, &[2]);
        assert!(p.is_resident(2));
        assert!(!p.is_resident(0));
        assert_eq!(p.row(2), &[1.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "not in last ensure")]
    fn stale_rows_unavailable() {
        let mut p = provider();
        let e = exec();
        p.ensure(&e, &[0]);
        p.ensure(&e, &[1]);
        let _ = p.row(0);
    }
}
