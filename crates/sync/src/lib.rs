//! Synchronization shim for the workspace's concurrency core.
//!
//! Every lock, condvar, atomic, channel, and thread spawn used by code that
//! the loom model checker needs to see goes through this crate. Two
//! backends, switched by the `loom` cargo feature:
//!
//! - **default**: thin std-backed primitives (poison-recovering,
//!   parking_lot-style `lock() -> guard` API) with zero abstraction cost;
//! - **`--features loom`**: the vendored loom stand-in, whose scheduler
//!   serializes threads and exhaustively explores interleavings inside
//!   `loom::model(..)` runs (and degrades to std behavior outside them).
//!
//! The crate also hosts the [`AUDIT`] switch for the `debug-invariants`
//! feature: [`audit!`] blocks compile to nothing when the feature is off
//! (the condition is `const`, so the optimizer deletes the block), letting
//! hot paths carry heavyweight invariant checks at zero release cost.
//!
//! Timed waits ([`Condvar::wait_timeout`], [`channel::Receiver::recv_timeout`])
//! deserve a note: under the loom backend *inside a model run* they never
//! block — the timeout "elapses immediately" across a scheduling point.
//! Model tests therefore exercise wakeup delivery through untimed waits,
//! and timed waits only contribute their timeout branch; code must stay
//! correct when every timed wait times out, which is exactly the storm the
//! model explores.

#[cfg(not(feature = "loom"))]
mod imp {
    use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
    use std::time::Duration;

    /// Mutual exclusion with a parking_lot-style API: `lock()` returns the
    /// guard directly. A panic while the lock is held does not poison it —
    /// the next locker sees the data as the panicking thread left it, which
    /// is what every use in this workspace wants (counters, queues with
    /// their own ledgers).
    pub struct Mutex<T> {
        inner: StdMutex<T>,
    }

    /// RAII guard of [`Mutex::lock`]; releases on drop.
    pub struct MutexGuard<'a, T> {
        // `Option` so `Condvar::wait` can hand the std guard to the OS wait
        // and reinstall the reacquired one; never `None` outside `wait`.
        inner: Option<StdMutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        pub const fn new(t: T) -> Self {
            Mutex {
                inner: StdMutex::new(t),
            }
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: Some(self.inner.lock().unwrap_or_else(|p| p.into_inner())),
            }
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // gmp:allow-panic — `inner` is only `None` transiently inside
            // `Condvar::wait*`, which holds the guard by `&mut`.
            self.inner.as_ref().expect("guard holds the lock")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // gmp:allow-panic — see `Deref`.
            self.inner.as_mut().expect("guard holds the lock")
        }
    }

    /// Condition variable taking guards by `&mut` (parking_lot-style).
    pub struct Condvar {
        inner: StdCondvar,
    }

    impl Condvar {
        pub const fn new() -> Self {
            Condvar {
                inner: StdCondvar::new(),
            }
        }

        /// Block until notified, releasing the guarded mutex while waiting.
        /// Subject to spurious wakeups: always re-check the predicate.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            // gmp:allow-panic — guard invariant, see `MutexGuard::deref`.
            let inner = guard.inner.take().expect("guard holds the lock");
            guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|p| p.into_inner()));
        }

        /// [`Condvar::wait`] bounded by `dur`; returns whether it timed out.
        pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, dur: Duration) -> bool {
            // gmp:allow-panic — guard invariant, see `MutexGuard::deref`.
            let inner = guard.inner.take().expect("guard holds the lock");
            let (inner, res) = self
                .inner
                .wait_timeout(inner, dur)
                .unwrap_or_else(|p| p.into_inner());
            guard.inner = Some(inner);
            res.timed_out()
        }

        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }
}

#[cfg(feature = "loom")]
mod imp {
    pub use loom::sync::{Condvar, Mutex, MutexGuard};
}

pub use imp::{Condvar, Mutex, MutexGuard};

pub mod atomic {
    //! Atomics routed through the active backend. Orderings are honored by
    //! the std backend and collapsed to `SeqCst` by the loom backend (the
    //! model explores interleavings, not weak memory).
    #[cfg(feature = "loom")]
    pub use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
    #[cfg(not(feature = "loom"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    pub use std::sync::atomic::Ordering;
}

pub mod thread {
    //! Thread spawn/join routed through the active backend. Threads that
    //! touch shim primitives inside a `loom::model` run **must** be spawned
    //! through here, or the model's scheduler cannot see them.
    #[cfg(feature = "loom")]
    pub use loom::thread::{spawn, yield_now, JoinHandle};
    #[cfg(not(feature = "loom"))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    /// Spawn a named thread. Under the loom backend the name is ignored
    /// (the model names controlled threads itself) and spawning is
    /// infallible; the `Result` shape is kept so call sites handle the
    /// std-mode OS failure without panicking.
    pub fn spawn_named<F, T>(name: &str, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        #[cfg(feature = "loom")]
        {
            let _ = name;
            Ok(spawn(f))
        }
        #[cfg(not(feature = "loom"))]
        {
            std::thread::Builder::new().name(name.to_string()).spawn(f)
        }
    }
}

pub mod channel;

/// `true` iff the `debug-invariants` feature is enabled. `const`, so
/// `if AUDIT { .. }` blocks vanish entirely from release builds.
pub const AUDIT: bool = cfg!(feature = "debug-invariants");

/// Run an invariant audit only under `--features debug-invariants`.
///
/// The body is always type-checked but const-folded away when the feature
/// is off, so audits can be arbitrarily expensive without taxing release
/// hot paths. Audits report violations by panicking — they guard internal
/// invariants, not user input.
///
/// ```
/// let xs = [1.0, 2.0];
/// gmp_sync::audit!({
///     assert!(xs.iter().all(|v: &f64| v.is_finite()), "non-finite value");
/// });
/// ```
#[macro_export]
macro_rules! audit {
    ($($body:tt)*) => {
        if $crate::AUDIT {
            $($body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Mutex::new(0usize);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 41);
        assert_eq!(m.into_inner(), 41);
    }

    #[test]
    fn wait_timeout_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_timeout(&mut g, Duration::from_millis(1)));
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = std::sync::Arc::clone(&shared);
        let waiter = thread::spawn_named("waiter", move || {
            let (m, cv) = &*s2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        })
        .expect("spawn");
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_all();
        }
        waiter.join().expect("join");
    }

    #[test]
    fn audit_const_is_feature_bound() {
        assert_eq!(AUDIT, cfg!(feature = "debug-invariants"));
        let mut ran = false;
        audit!({
            ran = true;
        });
        assert_eq!(ran, AUDIT);
    }
}
