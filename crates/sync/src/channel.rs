//! Bounded MPMC channel built on the shim's [`Mutex`]/[`Condvar`], so loom
//! can model it. API mirrors the `crossbeam::channel` subset the workspace
//! uses, plus [`Sender::close`]/[`Receiver::close`]: an explicit, idempotent
//! end-of-stream that fails further sends but lets receivers **drain** what
//! is already queued — the primitive behind the serve batcher's
//! "stop admitting, serve everything admitted" shutdown contract.
//!
//! Disconnection rules (checked in this order by every operation):
//! - closed, or peer side fully dropped → `Disconnected` for senders;
//! - receivers see `Disconnected` only once the queue is also empty, so no
//!   accepted item is ever silently lost.

use crate::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Create a bounded channel of capacity `cap` (≥ 1; rendezvous channels are
/// not supported).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "bounded channel capacity must be at least 1");
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(cap),
            cap,
            senders: 1,
            receivers: 1,
            closed: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

struct State<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
    closed: bool,
}

impl<T> State<T> {
    fn send_dead(&self) -> bool {
        self.closed || self.receivers == 0
    }

    fn recv_dead(&self) -> bool {
        self.queue.is_empty() && (self.closed || self.senders == 0)
    }
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Chan<T> {
    /// Mark the stream over: senders fail fast, receivers drain then stop.
    fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Sending half; cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half; cloneable.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The channel is closed or all receivers are gone.
    Disconnected(T),
}

#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Sender<T> {
    /// Non-blocking send: [`TrySendError::Full`] is the backpressure signal.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.chan.state.lock();
        if st.send_dead() {
            return Err(TrySendError::Disconnected(value));
        }
        if st.queue.len() >= st.cap {
            return Err(TrySendError::Full(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Blocking send; fails only when the channel dies.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.state.lock();
        loop {
            if st.send_dead() {
                return Err(SendError(value));
            }
            if st.queue.len() < st.cap {
                st.queue.push_back(value);
                drop(st);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            self.chan.not_full.wait(&mut st);
        }
    }

    /// Queued item count.
    pub fn len(&self) -> usize {
        self.chan.state.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the channel: concurrent and future sends fail with
    /// `Disconnected`, receivers drain the queue and then disconnect.
    /// Idempotent.
    pub fn close(&self) {
        self.chan.close();
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; `Err` only when the channel is dead **and**
    /// drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.recv_dead() {
                return Err(RecvError);
            }
            self.chan.not_empty.wait(&mut st);
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.state.lock();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if st.recv_dead() {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// [`Receiver::recv`] bounded by `timeout`. Under the loom backend the
    /// timeout elapses immediately (see the crate docs), so model code only
    /// exercises the `Timeout` branch here.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.chan.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.recv_dead() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            if self.chan.not_empty.wait_timeout(&mut st, remaining) {
                // Timed out: one final look at the queue, then give up.
                // (The backend's word is authoritative — re-looping on the
                // wall clock would spin forever under the loom backend.)
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.recv_dead() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Queued item count.
    pub fn len(&self) -> usize {
        self.chan.state.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// See [`Sender::close`].
    pub fn close(&self) {
        self.chan.close();
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Blocked receivers must wake to observe the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock();
        st.receivers -= 1;
        let last = st.receivers == 0;
        drop(st);
        if last {
            // Blocked senders must wake to observe the disconnect.
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_send_full_and_drain() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn close_fails_sends_but_drains_receives() {
        let (tx, rx) = bounded(4);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        tx.close();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn sender_drop_disconnects_after_drain() {
        let (tx, rx) = bounded(4);
        tx.try_send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn receiver_drop_disconnects_senders() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        assert!(matches!(tx.send(2), Err(SendError(2))));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.try_send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(9));
    }

    #[test]
    fn blocking_send_recv_across_threads() {
        let (tx, rx) = bounded(1);
        let producer = crate::thread::spawn_named("producer", move || {
            for i in 0..64 {
                tx.send(i).expect("receiver alive");
            }
        })
        .expect("spawn");
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        producer.join().expect("join");
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn cloned_endpoints_share_counts() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        drop(tx);
        tx2.try_send(1).unwrap();
        assert_eq!(rx.len(), 1);
        let rx2 = rx.clone();
        drop(rx);
        assert_eq!(rx2.recv(), Ok(1));
        drop(tx2);
        assert_eq!(rx2.recv(), Err(RecvError));
    }
}
