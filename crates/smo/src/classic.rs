//! The classic two-instance SMO solver (Algorithm 1 of the paper).

use crate::common::{
    compute_objective, compute_rho_capped, in_lower, in_upper, pair_update_capped, PhaseTimes,
    SmoParams, SolverResult, SolverTelemetry, TAU,
};
use gmp_gpusim::cost::KernelCost;
use gmp_gpusim::reduce::{argmax_by_key, argmax_masked, argmin_masked};
use gmp_gpusim::Executor;
use gmp_kernel::KernelRows;
use std::time::Instant;

/// LibSVM-style SMO: per iteration, select `u` by Equation (4), `l` by the
/// second-order heuristic of Equation (5), update the pair (Equations 6–7),
/// and refresh every optimality indicator (Equation 8) until Constraint (9)
/// holds within ε.
///
/// The row provider's policy decides what this models: an LRU-buffered
/// provider reproduces LibSVM's kernel cache; the same solver run on a GPU
/// stream is the per-SVM algorithm of the paper's GPU baseline.
#[derive(Debug, Clone, Default)]
pub struct ClassicSmoSolver {
    params: SmoParams,
}

impl ClassicSmoSolver {
    /// A solver with the given parameters.
    pub fn new(params: SmoParams) -> Self {
        ClassicSmoSolver { params }
    }

    /// Train on labels `y` (±1) with kernel rows from `rows`, charging all
    /// data-parallel work to `exec`.
    ///
    /// # Panics
    /// Panics if `y.len() != rows.n()` or `y` contains values other than ±1.
    pub fn solve(&self, y: &[f64], rows: &mut dyn KernelRows, exec: &dyn Executor) -> SolverResult {
        let caps = vec![self.params.c; rows.n()];
        self.solve_weighted(y, rows, exec, &caps)
    }

    /// [`ClassicSmoSolver::solve`] with per-instance box caps
    /// `0 <= α_i <= caps[i]` (weighted classes, LibSVM's `-wi`).
    pub fn solve_weighted(
        &self,
        y: &[f64],
        rows: &mut dyn KernelRows,
        exec: &dyn Executor,
        caps: &[f64],
    ) -> SolverResult {
        // f_i = Σ α_j y_j K_ij - y_i starts at -y_i (Algorithm 1 line 2).
        let f_init: Vec<f64> = y.iter().map(|&yi| -yi).collect();
        self.solve_with_init(y, rows, exec, caps, &f_init)
    }

    /// Fully general form: solve `min ½βᵀQβ + pᵀβ` over `0 ≤ β ≤ caps`,
    /// `Σ y β = 0`, where the linear term enters through the initial
    /// indicators `f_init[i] = y_i p_i`. Classification uses `p = -1`
    /// (so `f_init = -y`); ε-SVR maps its 2n-variable dual here.
    pub fn solve_with_init(
        &self,
        y: &[f64],
        rows: &mut dyn KernelRows,
        exec: &dyn Executor,
        caps: &[f64],
        f_init: &[f64],
    ) -> SolverResult {
        let n = rows.n();
        assert_eq!(y.len(), n, "label/instance count mismatch");
        assert_eq!(caps.len(), n, "cap/instance count mismatch");
        assert_eq!(f_init.len(), n, "f_init/instance count mismatch");
        assert!(
            y.iter().all(|&v| v == 1.0 || v == -1.0),
            "labels must be ±1"
        );
        assert!(caps.iter().all(|&c| c > 0.0), "caps must be positive");
        let eps = self.params.eps;

        let mut alpha = vec![0.0f64; n];
        let mut f: Vec<f64> = f_init.to_vec();

        let mut iterations = 0u64;
        let mut converged = false;
        let mut wall = PhaseTimes::default();
        let mut sim = PhaseTimes::default();

        // Shrinking state (LibSVM heuristic): instances confidently stuck
        // at a bound leave the active set; their indicators go stale and
        // are reconstructed before convergence is declared.
        let mut active = vec![true; n];
        let mut n_shrunk = 0usize;
        let shrink_interval = n.clamp(1, 1000) as u64;
        let mut next_shrink = shrink_interval;

        loop {
            // --- Step 1a: u = argmin f over I_u (one parallel reduction).
            let t0 = Instant::now();
            let s0 = exec.elapsed();
            let u_ext = argmin_masked(exec, &f, |i| active[i] && in_upper(y[i], alpha[i], caps[i]));
            let f_max = argmax_masked(exec, &f, |i| active[i] && in_lower(y[i], alpha[i], caps[i]));
            let locally_done = match (&u_ext, &f_max) {
                (Some(u), Some(m)) => m.value - u.value < eps,
                _ => true,
            };
            if locally_done {
                wall.other_s += t0.elapsed().as_secs_f64();
                sim.other_s += exec.elapsed() - s0;
                if n_shrunk == 0 {
                    converged = true;
                    break;
                }
                // Optimal on the active set: reconstruct the stale
                // indicators, reactivate everyone, and re-check globally.
                let tk = Instant::now();
                let sk = exec.elapsed();
                Self::reconstruct_f(y, f_init, &alpha, &mut f, &active, rows, exec);
                active.fill(true);
                n_shrunk = 0;
                next_shrink = iterations + shrink_interval;
                wall.kernel_s += tk.elapsed().as_secs_f64();
                sim.kernel_s += exec.elapsed() - sk;
                continue;
            }
            // gmp:allow-panic — guarded: the None case continues the loop above
            let u_ext = u_ext.expect("checked above");
            // gmp:allow-panic — guarded: the None case continues the loop above
            let f_max = f_max.expect("checked above");
            let u = u_ext.index;
            let f_u = u_ext.value;

            // --- Periodic shrinking pass.
            if self.params.shrinking && iterations >= next_shrink {
                next_shrink = iterations + shrink_interval;
                exec.charge(KernelCost::map(n as u64, 2, 16));
                for i in 0..n {
                    if !active[i] || (alpha[i] > 0.0 && alpha[i] < caps[i]) {
                        continue; // free SVs stay active
                    }
                    let up_only =
                        in_upper(y[i], alpha[i], caps[i]) && !in_lower(y[i], alpha[i], caps[i]);
                    let low_only =
                        in_lower(y[i], alpha[i], caps[i]) && !in_upper(y[i], alpha[i], caps[i]);
                    if (up_only && f[i] > f_max.value) || (low_only && f[i] < f_u) {
                        active[i] = false;
                        n_shrunk += 1;
                    }
                }
            }
            wall.other_s += t0.elapsed().as_secs_f64();
            sim.other_s += exec.elapsed() - s0;

            // --- Kernel row for u (Algorithm 1 line 5).
            let tk = Instant::now();
            let sk = exec.elapsed();
            rows.ensure(exec, &[u]);
            wall.kernel_s += tk.elapsed().as_secs_f64();
            sim.kernel_s += exec.elapsed() - sk;

            // --- Step 1b: l by the second-order heuristic (Equation 5).
            let t1 = Instant::now();
            let s1 = exec.elapsed();
            let diag_u = rows.diag(u);
            let l_ext = {
                let k_u = rows.row(u);
                argmax_by_key(
                    exec,
                    n,
                    |i| active[i] && in_lower(y[i], alpha[i], caps[i]) && f[i] > f_u,
                    |i| {
                        let eta = (diag_u + rows.diag(i) - 2.0 * k_u[i]).max(TAU);
                        let d = f_u - f[i];
                        d * d / eta
                    },
                )
            };
            wall.other_s += t1.elapsed().as_secs_f64();
            sim.other_s += exec.elapsed() - s1;
            let Some(l_ext) = l_ext else {
                // No violating partner: optimal for this ε.
                converged = true;
                break;
            };
            let l = l_ext.index;

            // --- Kernel row for l (Algorithm 1 line 7). Pin both rows.
            let tk2 = Instant::now();
            let sk2 = exec.elapsed();
            rows.ensure(exec, &[u, l]);
            wall.kernel_s += tk2.elapsed().as_secs_f64();
            sim.kernel_s += exec.elapsed() - sk2;

            // --- Steps 2 & 3: pair update + indicator refresh.
            let t2 = Instant::now();
            let s2 = exec.elapsed();
            let (lambda, u_row_l);
            {
                let k_u = rows.row(u);
                u_row_l = k_u[l];
            }
            let eta = rows.diag(u) + rows.diag(l) - 2.0 * u_row_l;
            lambda = pair_update_capped(y, &mut alpha, caps[u], caps[l], u, l, f_u, f[l], eta);
            // The pair update itself is the serial two-variable step the
            // paper notes "cannot be parallelized" — charge a token cost.
            exec.charge(KernelCost {
                threads: 1,
                flops: 16,
                bytes_read: 64,
                bytes_written: 16,
            });
            {
                let k_u = rows.row(u);
                let k_l = rows.row(l);
                for i in 0..n {
                    if active[i] {
                        f[i] += lambda * (k_u[i] - k_l[i]);
                    }
                }
            }
            exec.charge(KernelCost::map((n - n_shrunk) as u64, 4, 24));
            wall.subproblem_s += t2.elapsed().as_secs_f64();
            sim.subproblem_s += exec.elapsed() - s2;

            iterations += 1;
            if iterations >= self.params.max_iter {
                break;
            }
        }

        if n_shrunk > 0 {
            // Hit the iteration cap with instances still shrunk: make the
            // returned indicators consistent anyway.
            Self::reconstruct_f(y, f_init, &alpha, &mut f, &active, rows, exec);
        }
        let rho = compute_rho_capped(y, &alpha, &f, caps);
        let objective = compute_objective(y, &alpha, &f);
        SolverResult {
            rho,
            objective,
            iterations,
            outer_rounds: iterations,
            converged,
            telemetry: SolverTelemetry {
                rows: rows.stats(),
                sim_phases: sim,
                wall_phases: wall,
            },
            alpha,
            f,
        }
    }

    /// Recompute `f_i = Σ_j α_j y_j K_ij + f_init_i` for every inactive
    /// `i` from the support vectors (LibSVM's `reconstruct_gradient`).
    fn reconstruct_f(
        y: &[f64],
        f_init: &[f64],
        alpha: &[f64],
        f: &mut [f64],
        active: &[bool],
        rows: &mut dyn KernelRows,
        exec: &dyn Executor,
    ) {
        let n = y.len();
        let stale = active.iter().filter(|a| !**a).count();
        if stale == 0 {
            return;
        }
        for (i, fi) in f.iter_mut().enumerate() {
            if !active[i] {
                *fi = f_init[i];
            }
        }
        for j in 0..n {
            if alpha[j] <= 0.0 {
                continue;
            }
            rows.ensure(exec, &[j]);
            let k_j = rows.row(j);
            let w = alpha[j] * y[j];
            for i in 0..n {
                if !active[i] {
                    f[i] += w * k_j[i];
                }
            }
            exec.charge(KernelCost::map(stale as u64, 2, 16));
        }
    }
}

#[cfg(test)]
// Tests index several parallel arrays (y, alpha, f) by position.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use gmp_gpusim::CpuExecutor;
    use gmp_kernel::{BufferedRows, KernelKind, KernelOracle, ReplacementPolicy};
    use gmp_sparse::CsrMatrix;
    use std::sync::Arc;

    pub(crate) fn exec() -> CpuExecutor {
        CpuExecutor::xeon(1)
    }

    pub(crate) fn rows_for(
        data: &[Vec<f64>],
        ncols: usize,
        kind: KernelKind,
        cap: usize,
    ) -> BufferedRows {
        let m = Arc::new(CsrMatrix::from_dense(data, ncols));
        let oracle = Arc::new(KernelOracle::new(m, kind));
        BufferedRows::new(oracle, cap, ReplacementPolicy::Lru, None).unwrap()
    }

    /// Trivially separable 1-D points: -2, -1 vs 1, 2.
    fn separable() -> (Vec<Vec<f64>>, Vec<f64>) {
        (
            vec![vec![-2.0], vec![-1.0], vec![1.0], vec![2.0]],
            vec![-1.0, -1.0, 1.0, 1.0],
        )
    }

    #[test]
    fn solves_separable_linear() {
        let (x, y) = separable();
        let mut rows = rows_for(&x, 1, KernelKind::Linear, 4);
        let r = ClassicSmoSolver::new(SmoParams::with_c(10.0)).solve(&y, &mut rows, &exec());
        assert!(r.converged);
        // Decision at training points: v_i = f_i + y_i - rho must classify.
        for i in 0..4 {
            let v = r.f[i] + y[i] - r.rho;
            assert!(v * y[i] > 0.0, "point {i}: v={v}");
        }
        // Margin SVs are the inner points.
        assert!(r.alpha[1] > 0.0 && r.alpha[2] > 0.0);
        assert!(
            (r.rho).abs() < 1e-6,
            "symmetric problem has rho ~ 0, got {}",
            r.rho
        );
    }

    #[test]
    fn respects_box_constraint() {
        let (x, y) = separable();
        let mut rows = rows_for(&x, 1, KernelKind::Linear, 4);
        let c = 0.3;
        let r = ClassicSmoSolver::new(SmoParams::with_c(c)).solve(&y, &mut rows, &exec());
        assert!(r.alpha.iter().all(|&a| (0.0..=c).contains(&a)));
    }

    #[test]
    fn equality_constraint_holds() {
        let (x, y) = separable();
        let mut rows = rows_for(&x, 1, KernelKind::Rbf { gamma: 0.5 }, 4);
        let r = ClassicSmoSolver::new(SmoParams::with_c(1.0)).solve(&y, &mut rows, &exec());
        let sum: f64 = r.alpha.iter().zip(&y).map(|(a, yi)| a * yi).sum();
        assert!(sum.abs() < 1e-9, "Σ y α = {sum}");
    }

    #[test]
    fn kkt_satisfied_at_convergence() {
        let (x, y) = separable();
        let mut rows = rows_for(&x, 1, KernelKind::Rbf { gamma: 1.0 }, 4);
        let p = SmoParams::with_c(5.0);
        let r = ClassicSmoSolver::new(p).solve(&y, &mut rows, &exec());
        let mut f_u = f64::INFINITY;
        let mut f_max = f64::NEG_INFINITY;
        for i in 0..4 {
            if in_upper(y[i], r.alpha[i], p.c) {
                f_u = f_u.min(r.f[i]);
            }
            if in_lower(y[i], r.alpha[i], p.c) {
                f_max = f_max.max(r.f[i]);
            }
        }
        assert!(f_max - f_u < p.eps, "violation {}", f_max - f_u);
    }

    #[test]
    fn nonseparable_xor_with_rbf() {
        // XOR: not linearly separable, RBF handles it.
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let y = vec![1.0, 1.0, -1.0, -1.0];
        let mut rows = rows_for(&x, 2, KernelKind::Rbf { gamma: 2.0 }, 4);
        let r = ClassicSmoSolver::new(SmoParams::with_c(10.0)).solve(&y, &mut rows, &exec());
        assert!(r.converged);
        for i in 0..4 {
            let v = r.f[i] + y[i] - r.rho;
            assert!(v * y[i] > 0.0, "XOR point {i} misclassified");
        }
    }

    #[test]
    fn objective_decreases_with_larger_c_margin_violations() {
        // Overlapping classes: larger C penalizes slack more, objective
        // (minimized form) is monotone non-increasing in feasible region
        // size; just sanity check the solver returns finite values.
        let x = vec![
            vec![-1.0],
            vec![-0.4],
            vec![0.4],
            vec![1.0],
            vec![-0.1],
            vec![0.1],
        ];
        let y = vec![-1.0, -1.0, 1.0, 1.0, 1.0, -1.0];
        let mut rows = rows_for(&x, 1, KernelKind::Rbf { gamma: 1.0 }, 6);
        let r = ClassicSmoSolver::new(SmoParams::with_c(1.0)).solve(&y, &mut rows, &exec());
        assert!(r.objective.is_finite());
        assert!(
            r.objective < 0.0,
            "non-trivial problem has negative min-form objective"
        );
    }

    #[test]
    fn telemetry_counts_work() {
        let (x, y) = separable();
        let mut rows = rows_for(&x, 1, KernelKind::Linear, 4);
        let r = ClassicSmoSolver::new(SmoParams::with_c(10.0)).solve(&y, &mut rows, &exec());
        assert!(r.iterations > 0);
        assert!(r.telemetry.rows.rows_computed > 0);
        assert!(r.telemetry.sim_phases.total() > 0.0);
    }

    #[test]
    fn iteration_cap_reports_unconverged() {
        let x = vec![vec![-1.0], vec![-0.5], vec![0.5], vec![1.0]];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let mut rows = rows_for(&x, 1, KernelKind::Rbf { gamma: 0.5 }, 4);
        let p = SmoParams {
            c: 100.0,
            eps: 1e-9,
            max_iter: 1,
            shrinking: false,
        };
        let r = ClassicSmoSolver::new(p).solve(&y, &mut rows, &exec());
        assert!(!r.converged);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn shrinking_preserves_the_optimum() {
        // Shrinking must never change what is learned, only what it costs.
        let x: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let t = i as f64 / 120.0;
                let side = if i % 2 == 0 { -1.0 } else { 1.0 };
                let jitter = ((i * 2654435761_usize) % 89) as f64 / 89.0 - 0.5;
                vec![side * (0.4 + 0.4 * jitter), t]
            })
            .collect();
        let y: Vec<f64> = (0..120)
            .map(|i| if i % 2 == 0 { -1.0 } else { 1.0 })
            .collect();
        let kind = KernelKind::Rbf { gamma: 1.5 };
        let base = SmoParams::with_c(5.0);
        let shrunk_params = SmoParams {
            shrinking: true,
            ..base
        };
        let mut rows_a = rows_for(&x, 2, kind, 64);
        let a = ClassicSmoSolver::new(base).solve(&y, &mut rows_a, &exec());
        let mut rows_b = rows_for(&x, 2, kind, 64);
        let b = ClassicSmoSolver::new(shrunk_params).solve(&y, &mut rows_b, &exec());
        assert!(a.converged && b.converged);
        assert!(
            (a.objective - b.objective).abs() < 1e-6 * a.objective.abs().max(1.0),
            "objective {} vs {}",
            a.objective,
            b.objective
        );
        assert!((a.rho - b.rho).abs() < 1e-6, "rho {} vs {}", a.rho, b.rho);
        // Final indicators are reconstructed: consistent within tolerance.
        for i in 0..y.len() {
            assert!(
                (a.f[i] - b.f[i]).abs() < 1e-6,
                "f[{i}] {} vs {}",
                a.f[i],
                b.f[i]
            );
        }
    }

    #[test]
    fn shrinking_converges_on_hard_problem() {
        // Many bound SVs (small C, heavy overlap): the main shrinking
        // opportunity. Must still satisfy global KKT at the end.
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let jitter = ((i * 40503_usize) % 97) as f64 / 97.0 - 0.5;
                vec![jitter, ((i * 7919) % 83) as f64 / 83.0]
            })
            .collect();
        let y: Vec<f64> = (0..100)
            .map(|i| if (i / 3) % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let p = SmoParams {
            c: 0.5,
            shrinking: true,
            ..Default::default()
        };
        let mut rows = rows_for(&x, 2, KernelKind::Rbf { gamma: 0.8 }, 32);
        let r = ClassicSmoSolver::new(p).solve(&y, &mut rows, &exec());
        assert!(r.converged);
        let mut f_u = f64::INFINITY;
        let mut f_max = f64::NEG_INFINITY;
        for i in 0..y.len() {
            if in_upper(y[i], r.alpha[i], p.c) {
                f_u = f_u.min(r.f[i]);
            }
            if in_lower(y[i], r.alpha[i], p.c) {
                f_max = f_max.max(r.f[i]);
            }
        }
        assert!(f_max - f_u < p.eps, "violation {}", f_max - f_u);
    }

    #[test]
    fn single_class_degenerate_converges_immediately() {
        // All +1 labels: I_l is empty at α=0 ⇒ immediately optimal, α=0.
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![1.0, 1.0];
        let mut rows = rows_for(&x, 1, KernelKind::Linear, 2);
        let r = ClassicSmoSolver::new(SmoParams::with_c(1.0)).solve(&y, &mut rows, &exec());
        assert!(r.converged);
        assert!(r.alpha.iter().all(|&a| a == 0.0));
    }
}
