//! Decision values (Equation 11 of the paper).

use gmp_gpusim::cost::KernelCost;
use gmp_gpusim::Executor;
use gmp_kernel::KernelOracle;
use gmp_sparse::{CsrMatrix, DenseMatrix};

/// Training-set decision values straight from the final optimality
/// indicators: `v_i = f_i + y_i - rho`.
///
/// This is free — no kernel evaluation — and is how GMP-SVM feeds the
/// sigmoid fit (`Algorithm 2`, line 13) without re-predicting the training
/// set.
pub fn decision_values_from_f(f: &[f64], y: &[f64], rho: f64) -> Vec<f64> {
    assert_eq!(f.len(), y.len());
    f.iter().zip(y).map(|(&fi, &yi)| fi + yi - rho).collect()
}

/// Decision values of external instances:
/// `v = Σ_j y_j α_j K(x_j, x) - rho` over the support vectors.
///
/// `oracle` serves the training data; `test` holds the instances to score.
/// One batched cross-kernel launch is charged, then one fused
/// multiply-reduce per instance.
pub fn decision_values_for(
    exec: &dyn Executor,
    oracle: &KernelOracle,
    y: &[f64],
    alpha: &[f64],
    rho: f64,
    test: &CsrMatrix,
) -> Vec<f64> {
    let n = oracle.n();
    assert_eq!(y.len(), n);
    assert_eq!(alpha.len(), n);
    let m = test.nrows();
    if m == 0 {
        return Vec::new();
    }
    let test_rows: Vec<usize> = (0..m).collect();
    let mut kmat = DenseMatrix::zeros(m, n);
    oracle.compute_cross(exec, test, &test_rows, &mut kmat);
    // Weighted reduction per test instance.
    exec.charge(KernelCost::map((m * n) as u64, 2, 16));
    (0..m)
        .map(|t| {
            let row = kmat.row(t);
            let mut v = 0.0;
            for j in 0..n {
                if alpha[j] > 0.0 {
                    v += y[j] * alpha[j] * row[j];
                }
            }
            v - rho
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_gpusim::CpuExecutor;
    use gmp_kernel::KernelKind;
    use std::sync::Arc;

    fn exec() -> CpuExecutor {
        CpuExecutor::xeon(1)
    }

    #[test]
    fn from_f_identity() {
        let f = vec![-0.5, 0.5];
        let y = vec![1.0, -1.0];
        let v = decision_values_from_f(&f, &y, 0.25);
        assert!((v[0] - 0.25).abs() < 1e-12);
        assert!((v[1] - (-0.75)).abs() < 1e-12);
    }

    #[test]
    fn external_matches_training_identity() {
        // Score the training set itself through the kernel path and check
        // it agrees with the f-based identity.
        let data = Arc::new(CsrMatrix::from_dense(
            &[vec![-1.0], vec![-0.5], vec![0.5], vec![1.0]],
            1,
        ));
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let oracle = Arc::new(KernelOracle::new(
            data.clone(),
            KernelKind::Rbf { gamma: 1.0 },
        ));
        // Train a tiny SVM first.
        let mut rows = gmp_kernel::BufferedRows::new(
            oracle.clone(),
            4,
            gmp_kernel::ReplacementPolicy::FifoBatch,
            None,
        )
        .unwrap();
        let r = crate::classic::ClassicSmoSolver::new(crate::common::SmoParams::with_c(10.0))
            .solve(&y, &mut rows, &exec());
        let via_f = decision_values_from_f(&r.f, &y, r.rho);
        let via_kernel = decision_values_for(&exec(), &oracle, &y, &r.alpha, r.rho, &data);
        for i in 0..4 {
            assert!(
                (via_f[i] - via_kernel[i]).abs() < 1e-9,
                "i={i}: {} vs {}",
                via_f[i],
                via_kernel[i]
            );
        }
    }

    #[test]
    fn empty_test_set() {
        let data = Arc::new(CsrMatrix::from_dense(&[vec![1.0]], 1));
        let oracle = KernelOracle::new(data, KernelKind::Linear);
        let empty = CsrMatrix::empty(1);
        let v = decision_values_for(&exec(), &oracle, &[1.0], &[0.0], 0.0, &empty);
        assert!(v.is_empty());
    }
}
